"""Setuptools shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 517 editable installs are unavailable; this file
enables the legacy path::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
