"""Figure 9: useful work on memcached scales linearly with the cluster size.

Paper result: for fixed wall-clock budgets (4/6/8/10 minutes), the total
number of useful (non-replay) instructions executed grows roughly linearly
with the number of workers, and the useful work per worker stays roughly
constant.

Reproduction: fixed budgets of virtual rounds; total and per-worker useful
instructions for increasing cluster sizes on the symbolic-packet memcached
workload.
"""

from repro.cluster import ClusterConfig
from repro.targets import memcached

from conftest import print_table, run_once, worker_counts

ROUND_BUDGETS = [10, 20, 30]        # the analogue of the 4/6/8/10-minute budgets
INSTRUCTIONS_PER_ROUND = 60
PACKET_SIZE = 6
NUM_PACKETS = 2


def _useful_work(workers, rounds):
    test = memcached.make_symbolic_packets_test(
        num_packets=NUM_PACKETS, packet_size=PACKET_SIZE)
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers, instructions_per_round=INSTRUCTIONS_PER_ROUND))
    result = cluster.run(max_rounds=rounds)
    return result.total_useful_instructions


def _run_sweep():
    table = {}
    for workers in worker_counts():
        table[workers] = {budget: _useful_work(workers, budget)
                          for budget in ROUND_BUDGETS}
    return table


def test_fig9_memcached_useful_work_scaling(benchmark):
    table = run_once(benchmark, _run_sweep)

    total_rows = []
    per_worker_rows = []
    for workers, per_budget in sorted(table.items()):
        total_rows.append([workers] + [per_budget[b] for b in ROUND_BUDGETS])
        per_worker_rows.append(
            [workers] + [round(per_budget[b] / workers, 1) for b in ROUND_BUDGETS])
    headers = ["workers"] + ["%d rounds" % b for b in ROUND_BUDGETS]
    print_table("Figure 9 (top) -- total useful work on memcached "
                "[# instructions]", headers, total_rows)
    print_table("Figure 9 (bottom) -- normalized useful work "
                "[# instructions / worker]", headers, per_worker_rows)

    # Shape: for the largest budget, total useful work grows with workers and
    # the largest cluster does substantially more work than a single worker.
    budget = ROUND_BUDGETS[-1]
    workers_list = sorted(table)
    totals = [table[w][budget] for w in workers_list]
    assert totals[-1] > totals[0]
    assert all(later >= 0.8 * earlier
               for earlier, later in zip(totals, totals[1:]))
    # Per-worker useful work stays within a reasonable band (no collapse).
    per_worker = [table[w][budget] / w for w in workers_list]
    assert min(per_worker) > 0.25 * max(per_worker)
