"""Ablation: dynamic load balancing vs. static partitioning of the tree.

Section 2 of the paper rejects static partitioning ("this approach leads to
high workload imbalance among nodes, making the entire cluster proceed at the
pace of the slowest node") and §8 notes that the statically-partitioned
parallel JPF of Staats & Pasareanu can even get *slower* as workers are
added.  Figure 13 shows the dynamic side of the claim; this ablation measures
the static side directly by running the same workload to exhaustion on

* the Cloud9 cluster (dynamic partitioning + load balancing), and
* :class:`repro.cluster.StaticPartitionCluster` (one up-front split, no
  transfers),

and comparing (a) virtual rounds until the exhaustive test completes -- the
Fig. 7 metric -- and (b) the fraction of worker-rounds spent idle.  The
workload is the printf format-string test of Fig. 8, whose execution tree is
deep and skewed (parsing loops), exactly the situation in which a static
split leaves some workers starved while one grinds through a heavy subtree.
"""

from repro.api import ExplorationLimits
from repro.targets import printf

from conftest import bench_scale, print_table, run_once, worker_counts

INSTRUCTIONS_PER_ROUND = 200
BALANCE_INTERVAL = 2
ROUND_LIMIT = 5_000


def _format_length() -> int:
    return 4 if bench_scale() == "full" else 3


def _idle_fraction(result) -> float:
    """Fraction of worker-rounds in which a worker had nothing to explore."""
    total = 0
    idle = 0
    for snap in result.timeline.snapshots:
        lengths = list(snap.queue_lengths.values())
        total += len(lengths)
        idle += sum(1 for length in lengths if length == 0)
    return idle / total if total else 0.0


def _run_pair(workers: int):
    test = printf.make_symbolic_test(format_length=_format_length())
    limits = ExplorationLimits(max_rounds=ROUND_LIMIT)
    dynamic = test.run(backend="cluster", workers=workers,
                       instructions_per_round=INSTRUCTIONS_PER_ROUND,
                       balance_interval=BALANCE_INTERVAL, limits=limits)
    static = test.run(backend="static", workers=workers,
                      instructions_per_round=INSTRUCTIONS_PER_ROUND,
                      limits=limits)
    return dynamic, static


def _run_experiment():
    workers = max(w for w in worker_counts() if w > 1)
    dynamic, static = _run_pair(workers)
    rows = [
        ("dynamic (Cloud9)", dynamic.rounds_executed, dynamic.paths_completed,
         dynamic.useful_instructions,
         "%.0f%%" % (100.0 * _idle_fraction(dynamic))),
        ("static partitioning", static.rounds_executed, static.paths_completed,
         static.useful_instructions,
         "%.0f%%" % (100.0 * _idle_fraction(static))),
    ]
    return workers, dynamic, static, rows


def test_ablation_static_vs_dynamic_partitioning(benchmark):
    workers, dynamic, static, rows = run_once(benchmark, _run_experiment)
    print_table(
        "Ablation -- dynamic load balancing vs. static partitioning "
        "(printf exhaustive test, %d workers)" % workers,
        ["partitioning", "rounds to exhaustion", "paths completed",
         "useful instructions", "idle worker-rounds"],
        rows)

    # Both approaches are complete: they explore the same number of paths.
    assert dynamic.exhausted and static.exhausted
    assert dynamic.paths_completed == static.paths_completed
    # Shape (§2): the statically partitioned cluster proceeds at the pace of
    # its most loaded worker -- it needs at least as many rounds to finish and
    # leaves workers idle at least as often as the dynamically balanced one.
    assert dynamic.rounds_executed <= static.rounds_executed
    assert _idle_fraction(dynamic) <= _idle_fraction(static)
