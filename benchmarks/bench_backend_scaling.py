"""Backend scaling: wall-clock time of single vs threaded vs process workers.

The virtual-time benchmarks (Fig. 7-13) compare *rounds*; this one compares
real seconds.  The paper's architectural bet is that shipping paths to
shared-nothing workers buys wall-clock speedup on real cores (§7.2); in this
reproduction the in-process "threaded" cluster is GIL-bound, so the
multiprocess backend (:mod:`repro.distrib`) is where that bet pays off --
on a multi-core machine.  (On a single-core runner all parallel backends
degenerate to IPC overhead; the JSON baseline records ``cpu_count`` so
readers can interpret the numbers.)

Every backend runs the same spec under the same
:class:`~repro.api.limits.ExplorationLimits`.  Results (wall time, coverage,
paths, replay overhead, transfer encoding savings, solver-cache hit rates)
are printed as a table and written to ``BENCH_backend_scaling.json`` at the
repository root -- the first entry of the benchmark-baseline trajectory.

The tracing-overhead check rides along: the same cluster run with and
without ``trace_path=`` (best-of-N wall time each) must stay within a few
percent -- structured tracing is one JSONL append per round, and disabled
tracing is a single attribute check.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time

from repro.api import ExplorationLimits
from repro.distrib import specs

from conftest import print_table, run_once, worker_counts

SPEC_NAME = "printf"
SPEC_PARAMS = {"format_length": 3}
LIMITS = ExplorationLimits(max_rounds=60, max_instructions=60_000)
INSTRUCTIONS_PER_ROUND = 500

OUTPUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_backend_scaling.json")


def _row(backend: str, sweep_workers: int, result) -> dict:
    cache = result.cache_stats or {}
    return {
        "backend": backend,
        "sweep_workers": sweep_workers,
        "workers": result.num_workers,
        "wall_time": result.wall_time,
        "coverage_percent": result.coverage_percent,
        "paths_completed": result.paths_completed,
        "useful_instructions": result.useful_instructions,
        "replay_instructions": result.replay_instructions,
        "replay_overhead": result.replay_overhead,
        "exhausted": result.exhausted,
        "rounds_executed": result.rounds_executed,
        "states_transferred": result.states_transferred,
        "transfer_jobs": result.transfer_cost.jobs if result.transfer_cost else 0,
        "transfer_savings_ratio": result.transfer_savings_ratio,
        "constraint_cache_hit_rate": cache.get("constraint_cache_hit_rate", 0.0),
        "cex_cache_hit_rate": cache.get("cex_cache_hit_rate", 0.0),
    }


def _run_backend(backend: str, workers: int) -> dict:
    test = specs.resolve_test(SPEC_NAME, **SPEC_PARAMS)
    if backend == "single":
        result = test.run(backend="single", limits=LIMITS)
    else:
        result = test.run(backend=backend, workers=workers, limits=LIMITS,
                          instructions_per_round=INSTRUCTIONS_PER_ROUND)
    return _row(backend, workers, result)


def _run_sweep() -> dict:
    rows = []
    for workers in worker_counts():
        for backend in ("single", "threaded", "process"):
            rows.append(_run_backend(backend, workers))
    baseline = {
        "benchmark": "backend_scaling",
        "spec": SPEC_NAME,
        "spec_params": SPEC_PARAMS,
        "limits": LIMITS.as_dict(),
        "instructions_per_round": INSTRUCTIONS_PER_ROUND,
        "worker_counts": worker_counts(),
        "cpu_count": multiprocessing.cpu_count(),
        "rows": rows,
    }
    with open(OUTPUT_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def _print_baseline(baseline: dict) -> None:
    print_table(
        "Backend scaling -- wall time (s) under identical limits "
        "(%d CPU core(s) available)" % baseline["cpu_count"],
        ["backend", "workers", "wall s", "coverage %", "paths",
         "replay %", "xfer savings"],
        [(row["backend"], row["sweep_workers"],
          round(row["wall_time"], 3), round(row["coverage_percent"], 1),
          row["paths_completed"], round(100 * row["replay_overhead"], 1),
          round(row["transfer_savings_ratio"], 2))
         for row in baseline["rows"]])
    print("baseline written to %s" % os.path.normpath(OUTPUT_PATH))


def _measure_tracing_overhead(repeats: int = 5) -> dict:
    """Best-of-N wall time for the same cluster run, traced vs untraced."""
    def run_one(trace_path=None):
        test = specs.resolve_test(SPEC_NAME, **SPEC_PARAMS)
        started = time.perf_counter()
        test.run(backend="cluster", workers=2, limits=LIMITS,
                 instructions_per_round=INSTRUCTIONS_PER_ROUND,
                 trace_path=trace_path)
        return time.perf_counter() - started

    trace_path = os.path.join(tempfile.mkdtemp(prefix="repro-obs-bench-"),
                              "trace.jsonl")
    untraced = min(run_one() for _ in range(repeats))
    traced = min(run_one(trace_path) for _ in range(repeats))
    trace_bytes = os.path.getsize(trace_path)
    os.remove(trace_path)
    os.rmdir(os.path.dirname(trace_path))
    return {
        "untraced_wall_time": untraced,
        "traced_wall_time": traced,
        "overhead_ratio": (traced - untraced) / untraced,
        "trace_bytes": trace_bytes,
    }


def test_tracing_overhead(benchmark):
    overhead = run_once(benchmark, _measure_tracing_overhead)
    print("tracing overhead: untraced %.3fs traced %.3fs (%+.2f%%), "
          "%d trace bytes"
          % (overhead["untraced_wall_time"], overhead["traced_wall_time"],
             100 * overhead["overhead_ratio"], overhead["trace_bytes"]))
    assert overhead["trace_bytes"] > 0
    # Acceptance: tracing costs under 3% wall time (best-of-N absorbs
    # scheduler noise; one O_APPEND write per round is the whole cost).
    assert overhead["overhead_ratio"] < 0.03


def test_backend_scaling_baseline(benchmark):
    baseline = run_once(benchmark, _run_sweep)
    _print_baseline(baseline)
    rows = baseline["rows"]
    by_backend = {}
    for row in rows:
        by_backend.setdefault(row["backend"], []).append(row)
    # Every backend measured at every sweep point, wall times recorded.
    assert set(by_backend) == {"single", "threaded", "process"}
    for backend_rows in by_backend.values():
        assert len(backend_rows) == len(worker_counts())
        assert all(r["wall_time"] > 0 for r in backend_rows)
    # Parallel backends must not lose coverage against the single engine
    # under the same limits (the merged-frontier completeness claim).
    single_cov = max(r["coverage_percent"] for r in by_backend["single"])
    for backend in ("threaded", "process"):
        assert max(r["coverage_percent"]
                   for r in by_backend[backend]) >= single_cov
    assert os.path.exists(OUTPUT_PATH)


if __name__ == "__main__":
    _print_baseline(_run_sweep())
