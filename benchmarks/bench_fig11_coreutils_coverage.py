"""Figure 11: coverage improvement of a multi-worker Cloud9 over 1-worker
(KLEE) on the Coreutils suite.

Paper result: with an equal 10-minute budget per utility, a 12-worker Cloud9
covers up to 40 additional percentage points of code over the 1-worker
baseline (about +13% on average across the 96 Coreutils).

Reproduction: an equal budget of virtual rounds per utility on the
Coreutils-like suite, 1 worker vs a multi-worker cluster; the reported
quantity is additional coverage in percentage points of program size, sorted
per utility exactly like the lower plot of Fig. 11.
"""

from repro.cluster import ClusterConfig
from repro.targets import coreutils

from conftest import bench_scale, print_table, run_once, worker_counts

ROUND_BUDGET = 12
INSTRUCTIONS_PER_ROUND = 40
INPUT_SIZE = 4


def _coverage(name, workers):
    test = coreutils.make_utility_test(name, input_size=INPUT_SIZE)
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers, instructions_per_round=INSTRUCTIONS_PER_ROUND))
    result = cluster.run(max_rounds=ROUND_BUDGET)
    return result.coverage_percent


def _run_experiment():
    cluster_size = worker_counts()[-1]
    names = coreutils.utility_names()
    if bench_scale() != "full":
        names = names[:10]
    rows = []
    for name in names:
        baseline = _coverage(name, 1)
        parallel = _coverage(name, cluster_size)
        rows.append((name, round(baseline, 1), round(parallel, 1),
                     round(parallel - baseline, 1)))
    rows.sort(key=lambda r: r[3])
    return cluster_size, rows


def test_fig11_coreutils_coverage_improvement(benchmark):
    cluster_size, rows = run_once(benchmark, _run_experiment)
    print_table(
        "Figure 11 -- Coreutils coverage: 1 worker vs %d workers "
        "(equal budget of %d rounds)" % (cluster_size, ROUND_BUDGET),
        ["utility", "baseline %", "%d-worker %%" % cluster_size,
         "additional coverage (pp)"],
        rows)
    improvements = [r[3] for r in rows]
    average = sum(improvements) / len(improvements)
    print("average additional coverage: %.1f percentage points" % average)

    # Shape: the cluster never does worse than the single worker, and at
    # least one utility benefits from the extra workers.
    assert all(delta >= -0.01 for delta in improvements)
    assert max(improvements) >= 0.0
