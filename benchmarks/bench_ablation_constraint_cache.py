"""Ablation: constraint caching and its reconstruction after job transfer (§6).

KLEE's constraint caches "can significantly improve solver performance"; in
Cloud9 "states are transferred between workers without the source worker's
cache", and the paper observes that "the necessary portion of the cache is
mostly reconstructed as a side effect of path replay".

This ablation measures both statements on the printf workload:

* the same exploration budget is run with the solver caches enabled and
  disabled, comparing solver search effort;
* a path explored on one "worker" is replayed on a fresh executor (empty
  caches, as after a transfer), and the destination's cache hit rate during
  continued exploration is reported.
"""

from repro.cluster.replay import replay_path
from repro.engine import SymbolicExecutor
from repro.solver.solver import Solver, SolverConfig
from repro.targets import printf

from conftest import print_table, run_once

STEP_BUDGET = 1200
FORMAT_LENGTH = 3


def _explore(use_caches: bool):
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    solver = Solver(SolverConfig(use_constraint_cache=use_caches,
                                 use_counterexample_cache=use_caches))
    executor = SymbolicExecutor(test.program, solver=solver)
    executor.run(initial_state=lambda: executor.make_initial_state(),
                 strategy="interleaved", max_steps=STEP_BUDGET)
    return solver


def _replay_rebuilds_cache():
    """Explore on a source executor, replay one deep path on a destination."""
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    source = SymbolicExecutor(test.program)
    result = source.run(initial_state=lambda: source.make_initial_state(),
                        strategy="dfs", max_steps=400)
    # Pick the longest completed path as the "transferred job".
    fork_traces = [tc.fork_trace for tc in source.test_cases if tc.fork_trace]
    if not fork_traces:
        return 0.0, result
    path = max(fork_traces, key=len)

    destination = SymbolicExecutor(test.program)
    replay_path(destination, lambda ex: ex.make_initial_state(), list(path))
    stats = destination.solver.cache_stats
    return stats["constraint_cache_hit_rate"], result


def _run_experiment():
    with_cache = _explore(use_caches=True)
    without_cache = _explore(use_caches=False)
    replay_hit_rate, _ = _replay_rebuilds_cache()

    rows = [
        ("caches enabled: solver queries", with_cache.stats.queries),
        ("caches enabled: search steps", with_cache.stats.search_steps),
        ("caches enabled: cache hits", with_cache.stats.cache_hits),
        ("caches disabled: solver queries", without_cache.stats.queries),
        ("caches disabled: search steps", without_cache.stats.search_steps),
        ("caches disabled: cache hits", without_cache.stats.cache_hits),
        ("destination cache hit rate after replay",
         "%.1f%%" % (100.0 * replay_hit_rate)),
    ]
    return with_cache, without_cache, replay_hit_rate, rows


def test_ablation_constraint_caches(benchmark):
    with_cache, without_cache, replay_hit_rate, rows = run_once(
        benchmark, _run_experiment)
    print_table(
        "Ablation -- constraint caches on/off and cache reconstruction by replay",
        ["quantity", "value"],
        rows)

    # Shape: with caches on, the solver resolves a meaningful share of
    # queries from its caches and does no more search work than without.
    # (The recent-model fast path stays on in both configurations, so the
    # disabled run may still record some hits; the persistent caches are what
    # this ablation toggles.)
    assert with_cache.stats.cache_hits > 0
    assert with_cache.stats.search_steps <= without_cache.stats.search_steps
