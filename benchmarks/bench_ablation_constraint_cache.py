"""Solver-stack ablation: caches, independence partitioning and replay (§6).

KLEE's constraint caches "can significantly improve solver performance"; in
Cloud9 "states are transferred between workers without the source worker's
cache", and the paper observes that "the necessary portion of the cache is
mostly reconstructed as a side effect of path replay".

This module measures the whole solver stack on those claims:

* ``test_ablation_constraint_caches`` -- the original two-point ablation:
  the same exploration budget with the solver caches enabled and disabled,
  plus cache reconstruction at a fresh executor after a path replay;
* ``test_solver_stack_ablation`` -- the full grid: independence
  partitioning on/off x caches on/off x backends (``single`` and the
  virtual-time ``cluster``) on two targets.  Results are written to
  ``BENCH_solver_stack.json`` at the repository root, alongside
  ``BENCH_backend_scaling.json``.

Environment knob: ``REPRO_SOLVER_BENCH_STEPS`` scales the exploration
budget (default 1200; CI smoke uses a small value).
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from repro.api import ExplorationLimits
from repro.cluster.replay import replay_path
from repro.engine import SymbolicExecutor
from repro.solver.solver import Solver, SolverConfig
from repro.targets import printf, testcmd

from conftest import print_table, run_once

DEFAULT_STEP_BUDGET = 1200
STEP_BUDGET = int(os.environ.get("REPRO_SOLVER_BENCH_STEPS",
                                 str(DEFAULT_STEP_BUDGET)))
FORMAT_LENGTH = 3

#: Solver-stack configurations swept by the ablation grid.
SOLVER_CONFIGS = {
    "none": SolverConfig(use_constraint_cache=False,
                         use_counterexample_cache=False,
                         use_independence=False),
    "caches": SolverConfig(use_independence=False),
    "independence": SolverConfig(use_constraint_cache=False,
                                 use_counterexample_cache=False),
    "full": SolverConfig(),
}

TARGETS = {
    "printf": lambda: printf.make_symbolic_test(format_length=FORMAT_LENGTH),
    "testcmd": lambda: testcmd.make_symbolic_test(),
}

BACKENDS = ("single", "cluster")
CLUSTER_WORKERS = 2

OUTPUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_solver_stack.json")


# -- original two-point ablation (caches on/off + replay reconstruction) ------


def _explore(use_caches: bool):
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    solver = Solver(SolverConfig(use_constraint_cache=use_caches,
                                 use_counterexample_cache=use_caches))
    executor = SymbolicExecutor(test.program, solver=solver)
    executor.run(initial_state=lambda: executor.make_initial_state(),
                 strategy="interleaved", max_steps=STEP_BUDGET)
    return solver


def _replay_rebuilds_cache():
    """Explore on a source executor, replay one deep path on a destination."""
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    source = SymbolicExecutor(test.program)
    result = source.run(initial_state=lambda: source.make_initial_state(),
                        strategy="dfs", max_steps=STEP_BUDGET // 3)
    # Pick the longest completed path as the "transferred job".
    fork_traces = [tc.fork_trace for tc in source.test_cases if tc.fork_trace]
    if not fork_traces:
        return 0.0, result
    path = max(fork_traces, key=len)

    destination = SymbolicExecutor(test.program)
    replay_path(destination, lambda ex: ex.make_initial_state(), list(path))
    stats = destination.solver.cache_stats
    return stats["constraint_cache_hit_rate"], result


def _run_experiment():
    with_cache = _explore(use_caches=True)
    without_cache = _explore(use_caches=False)
    replay_hit_rate, _ = _replay_rebuilds_cache()

    rows = [
        ("caches enabled: solver queries", with_cache.stats.queries),
        ("caches enabled: search steps", with_cache.stats.search_steps),
        ("caches enabled: cache hits", with_cache.stats.cache_hits),
        ("caches disabled: solver queries", without_cache.stats.queries),
        ("caches disabled: search steps", without_cache.stats.search_steps),
        ("caches disabled: cache hits", without_cache.stats.cache_hits),
        ("destination cache hit rate after replay",
         "%.1f%%" % (100.0 * replay_hit_rate)),
    ]
    return with_cache, without_cache, replay_hit_rate, rows


def test_ablation_constraint_caches(benchmark):
    with_cache, without_cache, replay_hit_rate, rows = run_once(
        benchmark, _run_experiment)
    print_table(
        "Ablation -- constraint caches on/off and cache reconstruction by replay",
        ["quantity", "value"],
        rows)

    # Shape: with caches on, the solver resolves a meaningful share of
    # queries from its caches and does no more search work than without.
    # (The recent-model fast path stays on in both configurations, so the
    # disabled run may still record some hits; the persistent caches are what
    # this ablation toggles.)
    assert with_cache.stats.cache_hits > 0
    assert with_cache.stats.search_steps <= without_cache.stats.search_steps


# -- full solver-stack ablation grid ------------------------------------------


def _run_cell(target_name: str, backend: str, config_name: str) -> dict:
    test = TARGETS[target_name]()
    test.solver_config = replace(SOLVER_CONFIGS[config_name])
    if backend == "single":
        result = test.run(backend="single",
                          limits=ExplorationLimits(max_steps=STEP_BUDGET))
    else:
        result = test.run(
            backend="cluster", workers=CLUSTER_WORKERS,
            limits=ExplorationLimits(max_rounds=max(2, STEP_BUDGET // 100)),
            instructions_per_round=100)
    stats = result.cache_stats or {}
    return {
        "target": target_name,
        "backend": backend,
        "config": config_name,
        "independence": SOLVER_CONFIGS[config_name].use_independence,
        "caches": SOLVER_CONFIGS[config_name].use_constraint_cache,
        "wall_time": result.wall_time,
        "paths_completed": result.paths_completed,
        "coverage_percent": result.coverage_percent,
        "solver_queries": stats.get("solver_queries", 0),
        "search_steps": stats.get("solver_search_steps", 0),
        "independence_groups": stats.get("independence_groups", 0),
        "groups_solved": stats.get("groups_solved", 0),
        "independence_hits": stats.get("independence_hits", 0),
        "independence_hit_rate": stats.get("independence_hit_rate", 0.0),
        "unknown_cache_hits": stats.get("unknown_cache_hits", 0),
        "constraint_cache_hit_rate": stats.get("constraint_cache_hit_rate", 0.0),
        "cex_cache_hit_rate": stats.get("cex_cache_hit_rate", 0.0),
    }


def _run_grid() -> dict:
    rows = []
    for target_name in TARGETS:
        for backend in BACKENDS:
            for config_name in SOLVER_CONFIGS:
                rows.append(_run_cell(target_name, backend, config_name))
    baseline = {
        "benchmark": "solver_stack",
        "step_budget": STEP_BUDGET,
        "cluster_workers": CLUSTER_WORKERS,
        "targets": sorted(TARGETS),
        "backends": list(BACKENDS),
        "configs": sorted(SOLVER_CONFIGS),
        "rows": rows,
    }
    # Only the default budget refreshes the committed baseline: a smoke run
    # (CI uses REPRO_SOLVER_BENCH_STEPS=200) must not clobber it with
    # incomparable numbers.
    if STEP_BUDGET == DEFAULT_STEP_BUDGET:
        with open(OUTPUT_PATH, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return baseline


def _print_grid(baseline: dict) -> None:
    print_table(
        "Solver-stack ablation -- independence x caches x backend "
        "(step budget %d)" % baseline["step_budget"],
        ["target", "backend", "config", "queries", "search steps",
         "groups solved", "indep hit %", "wall s"],
        [(row["target"], row["backend"], row["config"],
          row["solver_queries"], row["search_steps"], row["groups_solved"],
          round(100 * row["independence_hit_rate"], 1),
          round(row["wall_time"], 3))
         for row in baseline["rows"]])
    if baseline["step_budget"] == DEFAULT_STEP_BUDGET:
        print("baseline written to %s" % os.path.normpath(OUTPUT_PATH))
    else:
        print("non-default step budget %d: committed baseline not rewritten"
              % baseline["step_budget"])


def _cell(baseline: dict, target: str, backend: str, config: str) -> dict:
    for row in baseline["rows"]:
        if (row["target"], row["backend"], row["config"]) == (
                target, backend, config):
            return row
    raise KeyError((target, backend, config))


def test_solver_stack_ablation(benchmark):
    baseline = run_once(benchmark, _run_grid)
    _print_grid(baseline)

    assert len(baseline["rows"]) == len(TARGETS) * len(BACKENDS) * len(
        SOLVER_CONFIGS)
    for target in TARGETS:
        for backend in BACKENDS:
            caches_only = _cell(baseline, target, backend, "caches")
            full = _cell(baseline, target, backend, "full")
            none = _cell(baseline, target, backend, "none")
            # The acceptance claim: adding independence partitioning on top
            # of the caches does not increase -- and on these targets
            # reduces -- backtracking-search effort for the same exploration
            # budget.
            assert full["search_steps"] <= caches_only["search_steps"]
            # And the stack as a whole beats the bare solver.
            assert full["search_steps"] <= none["search_steps"]
            # Independence bookkeeping is live exactly when enabled.
            assert full["groups_solved"] <= full["independence_groups"]
            assert caches_only["independence_groups"] <= caches_only[
                "solver_queries"]
    assert os.path.exists(OUTPUT_PATH)


if __name__ == "__main__":
    _print_grid(_run_grid())
