"""Figure 13: the effect of disabling load balancing mid-run.

Paper result: taking load balancing away at any point during the exhaustive
memcached run significantly reduces the total useful work subsequently done
(the earlier the cut-off, the worse), demonstrating that *dynamic* balancing
-- not just an initial static partitioning -- is necessary.

Reproduction: the same workload run with continuous balancing and with
balancing disabled after round 1/2/4/8; reported is the total useful work
done within a fixed budget of rounds.
"""

from repro.cluster import ClusterConfig
from repro.targets import memcached

from conftest import print_table, run_once, worker_counts

INSTRUCTIONS_PER_ROUND = 50
ROUND_BUDGET = 30
PACKET_SIZE = 6
CUTOFFS = [None, 8, 4, 2, 1]      # None = continuous load balancing


def _useful_work_with_cutoff(workers, cutoff):
    test = memcached.make_symbolic_packets_test(num_packets=2,
                                                packet_size=PACKET_SIZE)
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers,
        instructions_per_round=INSTRUCTIONS_PER_ROUND,
        disable_balancing_after_round=cutoff))
    result = cluster.run(max_rounds=ROUND_BUDGET)
    return result.total_useful_instructions


def _run_experiment():
    workers = worker_counts()[-1]
    rows = []
    for cutoff in CUTOFFS:
        label = "continuous LB" if cutoff is None else "LB stops after round %d" % cutoff
        rows.append((label, _useful_work_with_cutoff(workers, cutoff)))
    return workers, rows


def test_fig13_load_balancing_ablation(benchmark):
    workers, rows = run_once(benchmark, _run_experiment)
    print_table(
        "Figure 13 -- useful work within %d rounds under load-balancing "
        "cut-offs (%d workers)" % (ROUND_BUDGET, workers),
        ["configuration", "useful instructions"],
        rows)

    continuous = rows[0][1]
    earliest_cutoff = rows[-1][1]
    # Shape: cutting load balancing early does less useful work than keeping
    # it on, and the earliest cut-off is the worst (or tied) among cut-offs.
    assert continuous >= earliest_cutoff
    cutoff_values = [value for _, value in rows[1:]]
    assert earliest_cutoff == min(cutoff_values)
