"""Ablation: search strategies on a coverage goal (§3.3, §7 setup).

The paper's workers run KLEE's best searchers -- "an interleaving of
random-path and coverage-optimized strategies" -- and Cloud9 exposes the
strategy interface so users can plug in their own (§3.3).  This ablation runs
the printf coverage workload of Fig. 8 under each built-in strategy with the
same step budget and reports the line coverage each one reaches, verifying
that the interleaved default (the paper's choice) is competitive.
"""

from repro.targets import printf

from conftest import print_table, run_once

STRATEGIES = ["dfs", "bfs", "random_path", "random_state",
              "coverage_optimized", "interleaved"]
STEP_BUDGET = 1500
FORMAT_LENGTH = 3


def _coverage_with_strategy(strategy: str) -> float:
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    result = test.run(max_steps=STEP_BUDGET, strategy=strategy)
    return result.coverage_percent, result.paths_completed


def _run_experiment():
    rows = []
    for strategy in STRATEGIES:
        coverage, paths = _coverage_with_strategy(strategy)
        rows.append((strategy, round(coverage, 1), paths))
    return rows


def test_ablation_search_strategies(benchmark):
    rows = run_once(benchmark, _run_experiment)
    print_table(
        "Ablation -- line coverage of printf by search strategy "
        "(%d-step budget)" % STEP_BUDGET,
        ["strategy", "line coverage %", "paths completed"],
        rows)

    by_name = {name: coverage for name, coverage, _ in rows}
    # Every strategy makes progress on the workload.
    assert all(coverage > 0 for coverage in by_name.values())
    # The paper's default (random-path + coverage-optimized interleaving) is
    # competitive: within 10 coverage points of the best strategy.
    best = max(by_name.values())
    assert by_name["interleaved"] >= best - 10.0
