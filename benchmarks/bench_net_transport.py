"""Transport cost: mp-queue pairs vs loopback TCP under identical limits.

The socket transport (:mod:`repro.net`) buys location transparency -- agents
can dial in from other machines -- and this benchmark measures what that
costs when it buys nothing, i.e. on one host where the mp-queue transport is
also available.  Both carriers drive the *same* coordinator protocol over
the same spec and limits, so paths/coverage/bugs must come out identical;
what differs is wall time (framing + pickling + socket hops vs queue puts)
and that difference is the price of a `transport="tcp"` cluster folded onto
127.0.0.1.  Results go to ``BENCH_net_transport.json``.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.api import ExplorationLimits
from repro.distrib import specs

from conftest import print_table, run_once

WORKERS = 2

#: Each workload runs under its own limits; identical across transports.
WORKLOADS = [
    {"spec": "printf", "spec_params": {"format_length": 3},
     "limits": ExplorationLimits(max_rounds=60, max_instructions=60_000),
     "instructions_per_round": 500},
    {"spec": "testcmd", "spec_params": {},
     "limits": ExplorationLimits(max_rounds=60),
     "instructions_per_round": 500},
]

OUTPUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_net_transport.json")


def _row(workload: dict, transport: str, result) -> dict:
    cost = result.transfer_cost
    return {
        "spec": workload["spec"],
        "transport": transport,
        "workers": result.num_workers,
        "wall_time": result.wall_time,
        "paths_completed": result.paths_completed,
        "coverage_percent": result.coverage_percent,
        "exhausted": result.exhausted,
        "rounds_executed": result.rounds_executed,
        "messages_sent": result.raw.messages_sent,
        "transfer_jobs": cost.jobs if cost else 0,
        "transfer_encoded_nodes": cost.encoded_nodes if cost else 0,
        "transfer_naive_nodes": cost.naive_nodes if cost else 0,
        "transfer_savings_ratio": result.transfer_savings_ratio,
        "worker_failures": result.worker_failures,
        "heartbeat_misses": result.heartbeat_misses,
    }


def _run_workload(workload: dict, transport: str) -> dict:
    test = specs.resolve_test(workload["spec"], **workload["spec_params"])
    options = {
        "workers": WORKERS,
        "limits": workload["limits"],
        "instructions_per_round": workload["instructions_per_round"],
    }
    if transport == "tcp":
        # Self-contained loopback cluster: the coordinator spawns agents
        # that dial into its own listener -- the full socket path, one host.
        result = test.run(backend="tcp", spawn_local_agents=True, **options)
    else:
        result = test.run(backend="process", **options)
    return _row(workload, transport, result)


def _run_sweep() -> dict:
    rows = []
    for workload in WORKLOADS:
        for transport in ("mp", "tcp"):
            rows.append(_run_workload(workload, transport))
    baseline = {
        "benchmark": "net_transport",
        "workers": WORKERS,
        "workloads": [{"spec": w["spec"], "spec_params": w["spec_params"],
                       "limits": w["limits"].as_dict(),
                       "instructions_per_round": w["instructions_per_round"]}
                      for w in WORKLOADS],
        "cpu_count": multiprocessing.cpu_count(),
        "rows": rows,
    }
    with open(OUTPUT_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline


def _print_baseline(baseline: dict) -> None:
    print_table(
        "Transport cost -- mp queues vs loopback TCP, %d workers "
        "(%d CPU core(s) available)" % (baseline["workers"],
                                        baseline["cpu_count"]),
        ["spec", "transport", "wall s", "paths", "coverage %", "messages",
         "xfer jobs", "xfer savings"],
        [(row["spec"], row["transport"], round(row["wall_time"], 3),
          row["paths_completed"], round(row["coverage_percent"], 1),
          row["messages_sent"], row["transfer_jobs"],
          round(row["transfer_savings_ratio"], 2))
         for row in baseline["rows"]])
    print("baseline written to %s" % os.path.normpath(OUTPUT_PATH))


def test_net_transport_baseline(benchmark):
    baseline = run_once(benchmark, _run_sweep)
    _print_baseline(baseline)
    rows = baseline["rows"]
    by_spec = {}
    for row in rows:
        by_spec.setdefault(row["spec"], {})[row["transport"]] = row
    assert set(by_spec) == {w["spec"] for w in WORKLOADS}
    for spec, transports in by_spec.items():
        assert set(transports) == {"mp", "tcp"}
        mp_row, tcp_row = transports["mp"], transports["tcp"]
        # The carrier must be invisible to the protocol: identical outcome.
        assert tcp_row["paths_completed"] == mp_row["paths_completed"], spec
        assert tcp_row["coverage_percent"] == mp_row["coverage_percent"], spec
        assert tcp_row["exhausted"] == mp_row["exhausted"], spec
        assert tcp_row["worker_failures"] == 0
        assert all(r["wall_time"] > 0 for r in transports.values())
    assert os.path.exists(OUTPUT_PATH)


if __name__ == "__main__":
    _print_baseline(_run_sweep())
