"""Table 5: path and code coverage increase from each symbolic testing
technique applied to memcached.

Paper result (Table 5): the hand-written test suite reaches 83.67% line
coverage; adding exhaustive symbolic packets (74,503 paths) raises cumulated
coverage by +1.13%, and adding fault injection over the test suite (312,465
paths) raises it by +1.28% -- many more paths, modest line-coverage growth,
illustrating the weakness of line coverage as a thoroughness metric.

Reproduction: the same four testing methods on the memcached model, with the
same accounting (isolated coverage, cumulated coverage over the baseline
suite, and explored path counts).
"""

from repro.targets import memcached
from repro.testing.report import CoverageAccounting

from conftest import print_table, run_once


def _run_methods():
    concrete = memcached.make_concrete_suite_test().run_single()
    binary = memcached.make_binary_suite_test().run_single()
    symbolic = memcached.make_symbolic_packets_test(
        num_packets=1, packet_size=6).run_single()
    fault = memcached.make_fault_injection_test().run_single(max_paths=400)

    accounting = CoverageAccounting(line_count=concrete.line_count)
    accounting.add_method("Entire test suite", concrete.paths_completed,
                          concrete.covered_lines, baseline=True)
    accounting.add_method("Binary protocol test suite", binary.paths_completed,
                          binary.covered_lines)
    accounting.add_method("Symbolic packets", symbolic.paths_completed,
                          symbolic.covered_lines)
    accounting.add_method("Test suite + fault injection", fault.paths_completed,
                          fault.covered_lines)
    return accounting, {"concrete": concrete, "binary": binary,
                        "symbolic": symbolic, "fault": fault}


def test_table5_memcached_coverage_accounting(benchmark):
    accounting, results = run_once(benchmark, _run_methods)
    rows = []
    for row in accounting.rows():
        rows.append((row["method"], row["paths"], row["isolated_percent"],
                     row["cumulated_percent"] if row["cumulated_percent"] is not None else "-",
                     ("+%.2f" % row["increase_percent"])
                     if row["increase_percent"] is not None else "-"))
    print_table("Table 5 -- memcached coverage by testing method",
                ["testing method", "paths covered", "isolated coverage %",
                 "cumulated coverage %", "increase"],
                rows)

    # Shape checks mirroring the paper's observations:
    # 1. the symbolic-packet and fault-injection methods explore far more
    #    paths than the concrete suites;
    assert results["symbolic"].paths_completed > 10 * results["concrete"].paths_completed
    assert results["fault"].paths_completed > 10 * results["concrete"].paths_completed
    # 2. each symbolic method adds (possibly modest) coverage on top of the
    #    baseline suite rather than losing any;
    assert accounting.increase_over_baseline("Symbolic packets") >= 0.0
    assert accounting.increase_over_baseline("Test suite + fault injection") >= 0.0
    # 3. the binary protocol suite alone covers less than the whole suite.
    assert (accounting.rows()[1]["isolated_percent"]
            <= accounting.rows()[0]["isolated_percent"])
