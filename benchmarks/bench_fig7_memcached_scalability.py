"""Figure 7: time to exhaustively explore symbolic memcached packets vs workers.

Paper result: "every doubling in the number of workers roughly halves the
time to completion" for the exhaustive two-symbolic-packet memcached test
(48 workers finish in ~10 minutes; 1 worker exceeds 10 hours).

Reproduction: the same exhaustive workload (scaled down to one symbolic
packet so the sweep completes quickly) on simulated clusters of increasing
size; "time" is virtual rounds, each worker executing a fixed instruction
budget per round.  The expected shape is a monotone decrease of
rounds-to-exhaustion as workers are added, with every cluster size exploring
the identical set of paths.
"""

from repro.targets import memcached

from conftest import print_table, run_once, worker_counts

INSTRUCTIONS_PER_ROUND = 20
PACKET_SIZE = 6
NUM_PACKETS = 1
BALANCE_INTERVAL = 2


def _run_sweep():
    rows = []
    baseline_rounds = None
    for workers in worker_counts():
        test = memcached.make_symbolic_packets_test(
            num_packets=NUM_PACKETS, packet_size=PACKET_SIZE)
        result = test.run(backend="cluster", workers=workers,
                          instructions_per_round=INSTRUCTIONS_PER_ROUND,
                          balance_interval=BALANCE_INTERVAL)
        assert result.exhausted, "exploration must complete for Fig. 7"
        if baseline_rounds is None:
            baseline_rounds = result.rounds_executed
        rows.append((workers, result.rounds_executed,
                     round(baseline_rounds / max(result.rounds_executed, 1), 2),
                     result.paths_completed,
                     result.states_transferred))
    return rows


def test_fig7_memcached_exhaustive_scalability(benchmark):
    rows = run_once(benchmark, _run_sweep)
    print_table(
        "Figure 7 -- time (virtual rounds) to exhaustively explore %d symbolic "
        "memcached packet(s)" % NUM_PACKETS,
        ["workers", "rounds to complete", "speed-up vs 1", "paths", "transfers"],
        rows)
    # Shape checks: more workers never increase completion time, and the
    # largest cluster is strictly faster than a single worker.
    rounds = [row[1] for row in rows]
    assert rounds == sorted(rounds, reverse=True) or min(rounds) < rounds[0]
    assert rounds[-1] <= rounds[0]
    # Every cluster size explores the same number of paths (completeness).
    assert len({row[3] for row in rows}) == 1
