"""Figure 8: time to reach a target coverage level for printf vs workers.

Paper result: the time to achieve a fixed line-coverage target on the
``printf`` utility decreases proportionally with the number of workers, and
the highest targets are only reachable (within the time budget) by the
larger clusters.

Reproduction: rounds of virtual time needed to reach each coverage target on
the printf model, for increasing cluster sizes.
"""

from repro.cluster import ClusterConfig
from repro.targets import printf

from conftest import print_table, run_once, worker_counts

COVERAGE_TARGETS = [50.0, 60.0, 70.0, 80.0]
INSTRUCTIONS_PER_ROUND = 100
FORMAT_LENGTH = 3
MAX_ROUNDS = 400


def _rounds_to_targets(workers):
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers, instructions_per_round=INSTRUCTIONS_PER_ROUND))
    result = cluster.run(max_rounds=MAX_ROUNDS)
    return {target: result.rounds_to_coverage(target)
            for target in COVERAGE_TARGETS}


def _run_sweep():
    table = {}
    for workers in worker_counts():
        table[workers] = _rounds_to_targets(workers)
    return table


def test_fig8_printf_time_to_coverage(benchmark):
    table = run_once(benchmark, _run_sweep)
    rows = []
    for workers, per_target in sorted(table.items()):
        rows.append([workers] + [per_target[t] if per_target[t] is not None else "-"
                                 for t in COVERAGE_TARGETS])
    print_table(
        "Figure 8 -- rounds of virtual time to reach a line-coverage target "
        "on printf (format length %d)" % FORMAT_LENGTH,
        ["workers"] + ["%d%%" % t for t in COVERAGE_TARGETS],
        rows)

    workers_list = sorted(table)
    smallest, largest = workers_list[0], workers_list[-1]
    # Shape: every target reachable by 1 worker is reachable at least as fast
    # by the largest cluster.
    for target in COVERAGE_TARGETS:
        single = table[smallest][target]
        big = table[largest][target]
        if single is not None:
            assert big is not None
            assert big <= single
    # The largest cluster reaches at least as many targets as the single worker.
    reached_single = sum(1 for t in COVERAGE_TARGETS if table[smallest][t] is not None)
    reached_big = sum(1 for t in COVERAGE_TARGETS if table[largest][t] is not None)
    assert reached_big >= reached_single
