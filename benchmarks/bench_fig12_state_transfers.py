"""Figure 12: fraction of states transferred between workers over time.

Paper result: during the exhaustive 48-worker memcached run, load balancing
is active throughout -- in almost every 10-second interval, 3-6% of all
candidate states in the system are transferred between workers.

Reproduction: the per-round fraction of candidate states transferred during
an exhaustive multi-worker run of the symbolic-packet memcached workload.
The expected shape is a non-trivial, sustained transfer fraction (load
balancing keeps happening, not just at start-up).
"""

from repro.cluster import ClusterConfig
from repro.targets import memcached

from conftest import print_table, run_once, worker_counts

INSTRUCTIONS_PER_ROUND = 80
PACKET_SIZE = 5


def _run_experiment():
    workers = worker_counts()[-1]
    test = memcached.make_symbolic_packets_test(num_packets=1,
                                                packet_size=PACKET_SIZE)
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers, instructions_per_round=INSTRUCTIONS_PER_ROUND))
    result = cluster.run()
    assert result.exhausted
    series = [(snap.round_index, snap.states_transferred, snap.total_candidates,
               round(100.0 * snap.transfer_fraction, 2))
              for snap in result.timeline.snapshots]
    return workers, result, series


def test_fig12_states_transferred_over_time(benchmark):
    workers, result, series = run_once(benchmark, _run_experiment)
    print_table(
        "Figure 12 -- states transferred between workers per round "
        "(%d workers, memcached symbolic packet)" % workers,
        ["round", "states transferred", "candidates in system", "% transferred"],
        series)
    total_transferred = sum(row[1] for row in series)
    rounds_with_transfers = sum(1 for row in series if row[1] > 0)
    print("total states transferred: %d across %d of %d rounds"
          % (total_transferred, rounds_with_transfers, len(series)))

    # Shape: transfers happen, and they are not confined to a single round
    # (dynamic balancing keeps operating while the tree is explored).
    assert total_transferred > 0
    assert rounds_with_transfers >= 2
