"""Autoscaling: capacity bill of elastic vs fixed-size clusters (§2.3).

Cloud9's premise is testing as an *on-demand* cloud service: capacity should
follow the workload.  This benchmark compares three provisioning choices on
the same deterministic targets (printf and testcmd), all on the virtual-time
cluster backend so results are exactly reproducible:

* ``fixed-2``   -- an under-provisioned cluster (cheap, slow to the goal);
* ``fixed-8``   -- an over-provisioned cluster (fast, pays 8 worker-rounds
  per round even while the frontier is tiny or draining);
* ``autoscaled``-- starts at 2 workers and lets the
  :class:`~repro.cluster.autoscale.AutoscalePolicy` grow toward 8 under
  queue pressure and shrink as the frontier drains.

The headline metric is *worker-rounds* (Σ live workers over rounds): what a
cloud deployment would bill.  On a deterministic target every configuration
must converge to identical paths, coverage and bugs -- elasticity buys the
capacity saving, not a different answer.  Results are printed as a table and
written to ``BENCH_autoscale.json`` at the repository root.
"""

from __future__ import annotations

import json
import os

from repro.api import ExplorationLimits
from repro.cluster.autoscale import AutoscalePolicy
from repro.targets import printf, testcmd

from conftest import print_table, run_once

LIMITS = ExplorationLimits(max_rounds=600)
INSTRUCTIONS_PER_ROUND = 100

POLICY = AutoscalePolicy(min_workers=2, max_workers=8,
                         queue_high=4.0, queue_low=1.0,
                         cooldown_rounds=1, hysteresis_rounds=1)

TARGETS = {
    "printf": lambda: printf.make_symbolic_test(format_length=2),
    "testcmd": lambda: testcmd.make_symbolic_test(),
}

OUTPUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_autoscale.json")


def _row(label, result) -> dict:
    return {
        "label": label,
        "rounds_executed": result.rounds_executed,
        "worker_rounds": result.worker_rounds,
        "peak_workers": result.peak_workers,
        "workers_added": result.workers_added,
        "workers_removed": result.workers_removed,
        "paths_completed": result.paths_completed,
        "coverage_percent": result.coverage_percent,
        "bug_summaries": result.bug_summaries(),
        "useful_instructions": result.useful_instructions,
        "replay_instructions": result.replay_instructions,
        "wall_time": result.wall_time,
        "exhausted": result.exhausted,
    }


def _run_target(name: str) -> list:
    make = TARGETS[name]
    rows = []
    for label, workers, autoscale in (("fixed-2", 2, None),
                                      ("fixed-8", 8, None),
                                      ("autoscaled", 2, POLICY)):
        kwargs = dict(workers=workers,
                      instructions_per_round=INSTRUCTIONS_PER_ROUND,
                      limits=LIMITS)
        if autoscale is not None:
            kwargs["autoscale"] = autoscale
        result = make().run(backend="cluster", **kwargs)
        rows.append(_row(label, result))
    return rows


def _run_experiment() -> dict:
    payload = {
        "benchmark": "autoscale",
        "limits": LIMITS.as_dict(),
        "instructions_per_round": INSTRUCTIONS_PER_ROUND,
        "policy": {
            "min_workers": POLICY.min_workers,
            "max_workers": POLICY.max_workers,
            "queue_high": POLICY.queue_high,
            "queue_low": POLICY.queue_low,
            "cooldown_rounds": POLICY.cooldown_rounds,
            "hysteresis_rounds": POLICY.hysteresis_rounds,
        },
        "targets": {name: _run_target(name) for name in TARGETS},
    }
    with open(OUTPUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _print_payload(payload: dict) -> None:
    for name, rows in sorted(payload["targets"].items()):
        print_table(
            "Autoscaling vs fixed provisioning -- %s "
            "(virtual-time cluster backend)" % name,
            ["config", "rounds", "worker-rounds", "peak", "added", "removed",
             "paths", "coverage %", "wall s"],
            [(row["label"], row["rounds_executed"], row["worker_rounds"],
              row["peak_workers"], row["workers_added"],
              row["workers_removed"], row["paths_completed"],
              round(row["coverage_percent"], 1), round(row["wall_time"], 3))
             for row in rows])
    print("baseline written to %s" % os.path.normpath(OUTPUT_PATH))


def test_autoscale_capacity_bill(benchmark):
    payload = run_once(benchmark, _run_experiment)
    _print_payload(payload)
    for name, rows in payload["targets"].items():
        by_label = {row["label"]: row for row in rows}
        fixed2, fixed8 = by_label["fixed-2"], by_label["fixed-8"]
        auto = by_label["autoscaled"]
        for row in rows:
            assert row["exhausted"], "%s/%s did not finish" % (name,
                                                               row["label"])
        # Deterministic targets: provisioning must not change the answer.
        assert (auto["paths_completed"] == fixed2["paths_completed"]
                == fixed8["paths_completed"])
        assert (auto["coverage_percent"] == fixed2["coverage_percent"]
                == fixed8["coverage_percent"])
        assert auto["bug_summaries"] == fixed8["bug_summaries"]
        # The autoscaler actually scaled...
        assert auto["workers_added"] >= 1
        assert 2 <= auto["peak_workers"] <= 8
        # ...and the elastic run bills fewer worker-rounds than the
        # over-provisioned fixed-8 cluster.
        assert auto["worker_rounds"] < fixed8["worker_rounds"]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    class _Bench:
        @staticmethod
        def pedantic(func, rounds, iterations, warmup_rounds):
            return func()

    _print_payload(run_once(_Bench, _run_experiment))
