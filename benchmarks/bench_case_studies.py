"""Case studies §7.3.2 / §7.3.3 / §7.3.5: curl, memcached UDP hang, Bandicoot.

These are the paper's bug-finding case studies that do not come with a table
or figure; the harness regenerates the qualitative result of each one (the
bug is found, with a concrete reproducer) and reports the exploration cost.

* curl: crash on a URL with an unmatched glob brace (confirmed & fixed
  upstream within 24 hours, per the paper).
* memcached: infinite loop in UDP packet handling, found by bounding the
  instructions per path.
* Bandicoot: read from outside allocated memory while handling GET commands,
  found by exhaustive exploration.
"""

from repro.api import Campaign
from repro.engine import BugKind
from repro.targets import bandicoot, curl, memcached

from conftest import print_table, run_once


def _run_case_studies():
    # The three case studies batched through one Campaign.
    campaign = Campaign("case-studies")
    campaign.add(curl.make_globbing_test(), label="curl")
    campaign.add(memcached.make_udp_hang_test(), label="udp")
    campaign.add(bandicoot.make_get_exploration_test(), label="bandicoot")
    outcome = campaign.run()

    rows = []

    curl_result = outcome.results["curl"]
    curl_bugs = [b for b in curl_result.bugs if b.kind == BugKind.MEMORY_ERROR]
    reproducer = (curl_bugs[0].test_case.input_bytes("url_suffix")
                  if curl_bugs and curl_bugs[0].test_case else b"")
    rows.append(("curl URL globbing (7.3.2)", "memory error",
                 len(curl_bugs) > 0, curl_result.paths_completed,
                 repr(reproducer)))

    udp_result = outcome.results["udp"]
    hangs = [b for b in udp_result.bugs if b.kind == BugKind.INFINITE_LOOP]
    datagram = (hangs[0].test_case.input_bytes("datagram0")
                if hangs and hangs[0].test_case else b"")
    rows.append(("memcached UDP handling (7.3.3)", "infinite loop / hang",
                 len(hangs) > 0, udp_result.paths_completed, repr(datagram)))

    bandicoot_result = outcome.results["bandicoot"]
    oob = [b for b in bandicoot_result.bugs if b.kind == BugKind.MEMORY_ERROR]
    query = (oob[0].test_case.input_bytes("query")
             if oob and oob[0].test_case else b"")
    rows.append(("Bandicoot GET handling (7.3.5)", "out-of-bounds read",
                 len(oob) > 0, bandicoot_result.paths_completed, repr(query)))

    return rows


def test_case_studies_bugs_rediscovered(benchmark):
    rows = run_once(benchmark, _run_case_studies)
    print_table(
        "Case studies -- bugs rediscovered by symbolic testing",
        ["case study", "bug class", "found", "paths explored",
         "generated reproducer input"],
        rows)
    assert all(row[2] for row in rows), "every case-study bug must be rediscovered"
