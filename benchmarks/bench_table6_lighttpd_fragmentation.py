"""Table 6: lighttpd's behaviour under different request fragmentations.

Paper result (Table 6), for the request "GET /index.html HTTP/1.0CRLFCRLF"
(28 bytes):

    pattern                         ver. 1.4.12     ver. 1.4.13
    1x28                            OK              OK
    1x26 + 1x2                      crash + hang    OK
    2+5+1+5+2x1+3x2+5+2x1           crash + hang    crash + hang

i.e. the bug fix shipped in 1.4.13 was incomplete.

Reproduction: the identical 3x2 verdict matrix on the modeled parser, plus a
fixed version that survives all patterns, plus a symbolic-fragmentation
search that rediscovers a crashing pattern for 1.4.13 without being given
one.
"""

from repro.engine import BugKind
from repro.targets import lighttpd

from conftest import print_table, run_once

PATTERN_LABELS = [
    ("1x28", lighttpd.PATTERN_WHOLE),
    ("1x26 + 1x2", lighttpd.PATTERN_SPLIT_TERMINATOR),
    ("2+5+1+5+2x1+3x2+5+2x1", lighttpd.PATTERN_MANY_SMALL),
]
VERSIONS = [lighttpd.VERSION_1_4_12, lighttpd.VERSION_1_4_13, lighttpd.VERSION_FIXED]

# The verdict matrix reported by the paper (fixed column added by us).
EXPECTED = {
    ("1x28", lighttpd.VERSION_1_4_12): "OK",
    ("1x28", lighttpd.VERSION_1_4_13): "OK",
    ("1x28", lighttpd.VERSION_FIXED): "OK",
    ("1x26 + 1x2", lighttpd.VERSION_1_4_12): "crash + hang",
    ("1x26 + 1x2", lighttpd.VERSION_1_4_13): "OK",
    ("1x26 + 1x2", lighttpd.VERSION_FIXED): "OK",
    ("2+5+1+5+2x1+3x2+5+2x1", lighttpd.VERSION_1_4_12): "crash + hang",
    ("2+5+1+5+2x1+3x2+5+2x1", lighttpd.VERSION_1_4_13): "crash + hang",
    ("2+5+1+5+2x1+3x2+5+2x1", lighttpd.VERSION_FIXED): "OK",
}


def _verdict(version, pattern):
    result = lighttpd.make_fragmentation_test(version, pattern).run_single()
    crashed = any(b.kind in (BugKind.MEMORY_ERROR, BugKind.ASSERTION_FAILURE)
                  for b in result.bugs)
    return "crash + hang" if crashed else "OK"


def _run_matrix():
    matrix = {}
    for label, pattern in PATTERN_LABELS:
        for version in VERSIONS:
            matrix[(label, version)] = _verdict(version, pattern)
    # Symbolic fragmentation search against the "incomplete fix" version.
    search = lighttpd.make_symbolic_fragmentation_test(
        lighttpd.VERSION_1_4_13, bookkeeping_slots=3,
        frag_choice_limit=2).run_single(max_paths=400)
    found_incomplete_fix = any(b.kind == BugKind.MEMORY_ERROR for b in search.bugs)
    return matrix, found_incomplete_fix


def test_table6_lighttpd_fragmentation_matrix(benchmark):
    matrix, found_incomplete_fix = run_once(benchmark, _run_matrix)
    rows = []
    for label, _pattern in PATTERN_LABELS:
        rows.append((label,
                     matrix[(label, lighttpd.VERSION_1_4_12)],
                     matrix[(label, lighttpd.VERSION_1_4_13)],
                     matrix[(label, lighttpd.VERSION_FIXED)]))
    print_table(
        "Table 6 -- lighttpd behaviour per fragmentation pattern "
        "(request length 28)",
        ["fragmentation pattern", "ver. 1.4.12 (pre-patch)",
         "ver. 1.4.13 (post-patch)", "fixed"],
        rows)
    print("symbolic fragmentation rediscovers a crash in 1.4.13:",
          "yes" if found_incomplete_fix else "no")

    # The verdict matrix must match the paper cell for cell.
    for key, expected in EXPECTED.items():
        assert matrix[key] == expected, key
    assert found_incomplete_fix
