"""Figure 10: useful work on printf and test scales with the cluster size.

Paper result: the useful-work scaling observed on memcached (Fig. 9) also
holds for the much smaller ``printf`` and ``test`` utilities, even though the
three programs exercise very different code (parsing/formatting vs data
structures and network I/O).

Reproduction: total useful instructions executed within a fixed budget of
virtual rounds on the printf and test models, for increasing cluster sizes.
"""

from repro.cluster import ClusterConfig
from repro.targets import printf, testcmd

from conftest import print_table, run_once, worker_counts

ROUND_BUDGET = 25
INSTRUCTIONS_PER_ROUND = 60


def _useful_work(make_test, workers):
    test = make_test()
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers, instructions_per_round=INSTRUCTIONS_PER_ROUND))
    result = cluster.run(max_rounds=ROUND_BUDGET)
    return result.total_useful_instructions


def _run_sweep():
    table = {"printf": {}, "test": {}}
    for workers in worker_counts():
        table["printf"][workers] = _useful_work(
            lambda: printf.make_symbolic_test(format_length=4), workers)
        table["test"][workers] = _useful_work(testcmd.make_symbolic_test, workers)
    return table


def test_fig10_printf_and_test_useful_work(benchmark):
    table = run_once(benchmark, _run_sweep)
    rows = []
    for workers in worker_counts():
        rows.append([workers, table["printf"][workers], table["test"][workers]])
    print_table(
        "Figure 10 -- useful work within %d rounds [# instructions]" % ROUND_BUDGET,
        ["workers", "printf", "test"], rows)

    for program in ("printf", "test"):
        series = [table[program][w] for w in worker_counts()]
        # Shape: the largest cluster does more useful work than one worker
        # whenever the workload has not already been exhausted by one worker.
        assert series[-1] >= series[0]
