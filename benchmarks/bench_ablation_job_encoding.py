"""Ablation: job encoding as paths vs. serialized states (§3.2, §6).

The paper chooses to encode transferred jobs "as the path from the root to
the candidate node" rather than serializing program state, trading replay CPU
on the destination for network bandwidth ("the state of a real program is
typically at least several megabytes"), and aggregates the paths of one
transfer into a prefix-sharing job tree.

This ablation quantifies both halves of the trade-off on the printf
format-string workload of Fig. 8:

* **encoding size** -- bytes to ship a batch of candidate nodes as (a) a
  prefix-sharing job tree, (b) one path per job without sharing, and (c) an
  estimate of serialized program states (the state's memory-object payload);
* **replay cost** -- the fraction of a real cluster run's instructions spent
  re-executing transferred paths (the price of the compact encoding).
"""

from repro.cluster import ClusterConfig, Job, JobTree
from repro.targets import printf

from conftest import print_table, run_once, worker_counts

INSTRUCTIONS_PER_ROUND = 200
BALANCE_INTERVAL = 2
ROUND_BUDGET = 200
FORMAT_LENGTH = 3


def _estimate_state_bytes(state) -> int:
    """A conservative lower bound on serializing one execution state."""
    total = 0
    for process in state.processes.values():
        for obj in process.address_space.objects.values():
            total += obj.size
    for obj in state.cow_domain.objects.values():
        total += obj.size
    # Path constraints and thread stacks add to this; ignore them so the
    # comparison against path encoding stays conservative.
    return total


def _frontier_jobs_and_state_size(test, max_steps: int = 400):
    """Explore a bit on one node and snapshot its frontier as jobs."""
    executor = test.build_executor()
    from collections import deque

    frontier = deque([test.build_initial_state(executor)])
    steps = 0
    while frontier and steps < max_steps:
        state = frontier.popleft()
        result = executor.step(state)
        steps += 1
        for child in result.children:
            if child.is_running:
                frontier.append(child)
    jobs = [Job(tuple(state.fork_trace)) for state in frontier]
    state_bytes = sum(_estimate_state_bytes(state) for state in frontier)
    return jobs, state_bytes


def _run_experiment():
    test = printf.make_symbolic_test(format_length=FORMAT_LENGTH)
    jobs, serialized_bytes = _frontier_jobs_and_state_size(test)
    tree = JobTree.from_jobs(jobs)
    tree_size = tree.encoded_size()
    naive_size = JobTree.naive_size(jobs)

    workers = worker_counts()[-1]
    cluster = test.build_cluster(ClusterConfig(
        num_workers=workers, instructions_per_round=INSTRUCTIONS_PER_ROUND,
        balance_interval=BALANCE_INTERVAL))
    result = cluster.run(max_rounds=ROUND_BUDGET)

    rows = [
        ("candidate nodes in the batch", len(jobs)),
        ("job tree (prefix sharing), path elements", tree_size),
        ("one path per job, path elements", naive_size),
        ("serialized states, bytes (lower bound)", serialized_bytes),
        ("cluster run: states transferred", result.total_states_transferred),
        ("cluster run: replay overhead", "%.1f%%" % (100.0 * result.replay_overhead)),
        ("cluster run: broken replays",
         sum(s.broken_replays for s in result.worker_stats.values())),
    ]
    return jobs, tree_size, naive_size, serialized_bytes, result, rows


def test_ablation_job_encoding_tradeoff(benchmark):
    jobs, tree_size, naive_size, serialized_bytes, result, rows = run_once(
        benchmark, _run_experiment)
    print_table(
        "Ablation -- job encoding: path-encoded job trees vs. alternatives",
        ["quantity", "value"],
        rows)

    # Shape: prefix sharing never encodes more than one-path-per-job, and the
    # path encoding is far smaller than shipping program state.
    assert tree_size <= naive_size
    assert naive_size < serialized_bytes
    # The price of the compact encoding is bounded: replay work stays a
    # minority of total work, and replays are not broken (deterministic
    # allocator, §6).
    assert result.replay_overhead < 0.5
    assert sum(s.broken_replays for s in result.worker_stats.values()) == 0
