"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (§7).  The workloads are scaled down so the whole harness runs on
a laptop in minutes (the paper used up to 48 EC2 workers for hours); what is
being reproduced is the *shape* of each result -- who wins, how quantities
scale with cluster size, which inputs crash -- not the absolute numbers.
Scaling factors are recorded in EXPERIMENTS.md.

Environment knob: set ``REPRO_BENCH_SCALE=full`` to run the larger variants
(more workers, bigger symbolic inputs).
"""

from __future__ import annotations

import os
from typing import List, Sequence

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def worker_counts() -> List[int]:
    """Cluster sizes swept by the scalability benchmarks."""
    if bench_scale() == "full":
        return [1, 2, 4, 8, 12]
    return [1, 2, 4]


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render one reproduced table/figure as text (captured into bench output)."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def run_once(benchmark, func):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
