"""Fault tolerance: recovery overhead under injected worker kills (§2.3).

Cloud9 tolerates worker failures: the coordinator requeues a dead worker's
territory (its frontier ledger entries) to the survivors, which re-explore
it from path-encoded jobs.  This benchmark measures what that recovery
*costs* on the multiprocess backend: how many completed paths the dead
worker took with it (work that must be redone), how many extra rounds and
instructions the run needs compared to a crash-free baseline, and that the
final outcome (paths, coverage) is nevertheless identical -- the §2.3
claim, strengthened from "adjust the frontier as if deleted" to full
recovery.

One worker of a 2-worker cluster is SIGKILLed at several points of the run
(early / middle / late), plus one run with ``respawn=True`` where a
replacement process joins instead of shrinking the cluster.  Results are
printed as a table and written to ``BENCH_fault_tolerance.json`` at the
repository root.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal

from repro.api import ExplorationLimits
from repro.distrib.cluster import ProcessCloud9Cluster, ProcessClusterConfig

from conftest import print_table, run_once

SPEC_NAME = "printf"
SPEC_PARAMS = {"format_length": 2}
LIMITS = ExplorationLimits(max_rounds=400)
INSTRUCTIONS_PER_ROUND = 100

OUTPUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, "BENCH_fault_tolerance.json")


def _config(**kw) -> ProcessClusterConfig:
    kw.setdefault("num_workers", 2)
    kw.setdefault("instructions_per_round", INSTRUCTIONS_PER_ROUND)
    kw.setdefault("reply_timeout", 1.0)
    kw.setdefault("shutdown_timeout", 2.0)
    return ProcessClusterConfig(**kw)


def _kill_hook(target_round: int):
    killed = {}

    def hook(round_index, cluster):
        if killed or round_index < target_round or len(cluster.handles) < 2:
            return
        victim = cluster.handles[-1]
        if victim.queue_length == 0:
            return  # wait until it owns territory worth recovering
        killed["round"] = round_index
        killed["paths_lost"] = victim.paths_completed
        os.kill(victim.process.pid, signal.SIGKILL)

    hook.killed = killed
    return hook


def _row(label, result, baseline=None, killed=None) -> dict:
    row = {
        "label": label,
        "rounds_executed": result.rounds_executed,
        "paths_completed": result.paths_completed,
        "coverage_percent": result.coverage_percent,
        "useful_instructions": result.total_useful_instructions,
        "replay_instructions": result.total_replay_instructions,
        "wall_time": result.wall_time,
        "worker_failures": result.worker_failures,
        "jobs_recovered": result.jobs_recovered,
        "respawns": result.respawns,
        "exhausted": result.exhausted,
        "kill_round": (killed or {}).get("round"),
        "paths_lost": (killed or {}).get("paths_lost", 0),
        # Work the dead worker had done that vanished with it (its totals
        # are excluded from the run's counters to avoid double counting).
        "instructions_lost": sum(
            s.useful_instructions + s.replay_instructions
            for s in result.failed_worker_stats.values()),
    }
    if baseline is not None:
        row["extra_rounds"] = result.rounds_executed - baseline.rounds_executed
        row["extra_instructions"] = (
            (result.total_useful_instructions
             + result.total_replay_instructions)
            - (baseline.total_useful_instructions
               + baseline.total_replay_instructions))
    return row


def _run_baseline():
    cluster = ProcessCloud9Cluster(SPEC_NAME, spec_params=SPEC_PARAMS,
                                   config=_config())
    return cluster.run(limits=LIMITS)


def _run_with_kill(target_round: int, respawn: bool = False):
    cluster = ProcessCloud9Cluster(
        SPEC_NAME, spec_params=SPEC_PARAMS,
        config=_config(respawn=respawn, max_worker_failures=3))
    hook = _kill_hook(target_round)
    cluster.round_hook = hook
    result = cluster.run(limits=LIMITS)
    return result, hook.killed


def _run_experiment() -> dict:
    baseline = _run_baseline()
    rows = [_row("baseline", baseline)]
    kill_rounds = sorted({max(1, baseline.rounds_executed // 4),
                          max(1, baseline.rounds_executed // 2),
                          max(1, (3 * baseline.rounds_executed) // 4)})
    for target in kill_rounds:
        result, killed = _run_with_kill(target)
        rows.append(_row("kill@%d" % target, result, baseline, killed))
    result, killed = _run_with_kill(kill_rounds[0], respawn=True)
    rows.append(_row("kill@%d+respawn" % kill_rounds[0], result, baseline,
                     killed))

    payload = {
        "benchmark": "fault_tolerance",
        "spec": SPEC_NAME,
        "spec_params": SPEC_PARAMS,
        "limits": LIMITS.as_dict(),
        "instructions_per_round": INSTRUCTIONS_PER_ROUND,
        "cpu_count": multiprocessing.cpu_count(),
        "rows": rows,
    }
    with open(OUTPUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def _print_payload(payload: dict) -> None:
    print_table(
        "Fault tolerance -- recovery overhead of one SIGKILLed worker "
        "(2-worker process cluster)",
        ["run", "kill@", "paths lost", "jobs recovered", "rounds",
         "extra rounds", "extra instr", "paths", "coverage %"],
        [(row["label"], row["kill_round"] if row["kill_round"] is not None
          else "-", row["paths_lost"], row["jobs_recovered"],
          row["rounds_executed"], row.get("extra_rounds", "-"),
          row.get("extra_instructions", "-"), row["paths_completed"],
          round(row["coverage_percent"], 1))
         for row in payload["rows"]])
    print("baseline written to %s" % os.path.normpath(OUTPUT_PATH))


def test_fault_tolerance_recovery_overhead(benchmark):
    payload = run_once(benchmark, _run_experiment)
    _print_payload(payload)
    rows = payload["rows"]
    baseline = rows[0]
    assert baseline["worker_failures"] == 0
    assert baseline["exhausted"]
    killed_rows = rows[1:]
    assert killed_rows
    for row in killed_rows:
        # Every injected kill was detected and recovered from...
        assert row["worker_failures"] == 1
        assert row["jobs_recovered"] > 0
        assert row["exhausted"]
        # ...and converged to the crash-free outcome on this deterministic
        # target, paying only redone work (never losing results).
        assert row["paths_completed"] == baseline["paths_completed"]
        assert row["coverage_percent"] == baseline["coverage_percent"]
        # ("extra_instructions" can go negative: the dead worker's counted
        # work vanishes from the totals while survivors redo only the
        # unfinished part of its territory.)
    respawn_row = rows[-1]
    assert respawn_row["respawns"] == 1


if __name__ == "__main__":  # pragma: no cover - manual invocation
    class _Bench:
        @staticmethod
        def pedantic(func, rounds, iterations, warmup_rounds):
            return func()

    _print_payload(run_once(_Bench, _run_experiment))
