"""Table 4: the range of real-world software that runs on Cloud9.

Paper result: Cloud9's POSIX model is complete enough to test web servers,
a distributed object cache, a language interpreter, network utilities,
compression tools, libraries and system utilities (Table 4 lists the
selection with sizes in KLOC).

Reproduction: every modeled target in ``repro.targets`` is executed under
the engine + POSIX model and must explore at least one complete path without
engine-level errors -- the reproduction's analogue of "runs on Cloud9".
"""

from repro.api import Campaign, ExplorationLimits
from repro.lang.analysis import program_line_count
from repro.targets import (
    bandicoot,
    coreutils,
    curl,
    ghttpd,
    httpd,
    libevent,
    lighttpd,
    memcached,
    pbzip,
    printf,
    prodcons,
    rsync,
    testcmd,
)

from conftest import print_table, run_once


def _target_catalogue():
    """(name, type of software, SymbolicTest) rows mirroring Table 4."""
    return [
        ("Apache httpd (model)", "Web server",
         httpd.make_concrete_test()),
        ("lighttpd (model)", "Web server",
         lighttpd.make_fragmentation_test(lighttpd.VERSION_FIXED,
                                          lighttpd.PATTERN_WHOLE)),
        ("ghttpd (model)", "Web server",
         ghttpd.make_concrete_test(version=ghttpd.VERSION_FIXED)),
        ("memcached (model)", "Distributed object cache",
         memcached.make_concrete_suite_test()),
        ("curl (model)", "Network utility",
         curl.make_globbing_test(symbolic_suffix=1)),
        ("rsync (model)", "Network utility",
         rsync.make_concrete_test()),
        ("pbzip (model)", "Compression utility",
         pbzip.make_concrete_test()),
        ("libevent (model)", "Event notification library",
         libevent.make_concrete_test()),
        ("printf (model)", "UNIX utility",
         printf.make_symbolic_test(format_length=2)),
        ("test (model)", "UNIX utility",
         testcmd.make_symbolic_test()),
        ("coreutils suite (16 tools)", "Suite of system utilities",
         coreutils.make_utility_test("echo", input_size=3)),
        ("bandicoot (model)", "Lightweight DBMS",
         bandicoot.make_get_exploration_test()),
        ("producer-consumer", "Multi-threaded/multi-process benchmark",
         prodcons.make_benchmark_test()),
    ]


def _run_all():
    # One Campaign runs the whole catalogue under a shared path budget.
    campaign = Campaign("table4", limits=ExplorationLimits(max_paths=100))
    labelled = {}
    for name, kind, test in _target_catalogue():
        entry = campaign.add(test, label=name)
        labelled[entry.label] = (name, kind, test)
    outcome = campaign.run()
    rows = []
    for label, (name, kind, test) in labelled.items():
        result = outcome.results[label]
        rows.append((name, kind, program_line_count(test.program),
                     result.paths_completed,
                     round(result.coverage_percent, 1),
                     "yes" if result.paths_completed >= 1 else "no"))
    return rows


def test_table4_every_target_runs_under_the_posix_model(benchmark):
    rows = run_once(benchmark, _run_all)
    print_table(
        "Table 4 -- modeled testing targets running on the reproduction",
        ["target", "type of software", "model size (lines)",
         "paths explored", "line coverage %", "runs"],
        rows)
    assert all(row[5] == "yes" for row in rows)
