"""Observability for the whole fleet: tracing, metrics, live status.

The paper's entire evaluation is time-series observability -- coverage over
time (Fig. 8/11), useful-vs-replay work breakdowns (Fig. 9/10), transfer
counts (Fig. 12) -- while the rest of this repo reports end-of-run
aggregates only.  This package is the substrate those views are built on:

* :mod:`repro.obs.trace` -- structured JSONL event tracing.  One run, one
  ordered trace file, identical event schema on every backend; workers on
  the process and TCP backends forward their events to the coordinator
  over the existing status channel.  Enabled with ``trace_path=`` on
  :class:`~repro.api.limits.ExplorationLimits` / ``SymbolicTest.run``.
* :mod:`repro.obs.metrics` -- a counter/gauge/histogram registry that the
  hand-threaded stats classes (``SolverStats``, ``CacheStats``,
  ``WorkerStats``) are now views over, preserving their public shapes.
* :mod:`repro.obs.status` -- a read-only coordinator-side status server:
  connect, read one JSON line (round, coverage, frontier sizes, live and
  draining workers, heartbeat ages), disconnect.
* :mod:`repro.obs.report` -- ``python -m repro.obs.report trace.jsonl``
  renders coverage-over-time, per-worker utilization and the
  transfer/autoscale/failure timeline from any run's trace.
"""

from repro.obs import schema
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, BufferTracer, NullTracer, Tracer, load_trace
from repro.obs.status import StatusServer, read_status

__all__ = [
    "schema",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "BufferTracer",
    "load_trace",
    "StatusServer",
    "read_status",
]
