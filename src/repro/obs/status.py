"""A read-only live-status endpoint for a running cluster.

ROADMAP item 2 asks for ``/healthz``-style per-run status (round,
coverage, worker count); this is the substrate.  The coordinator owns a
:class:`StatusServer` bound to a local address and replaces its snapshot
once per round with :meth:`StatusServer.update`; any client that connects
receives the current snapshot as one JSON line and is disconnected.  That
connect-read-close protocol needs no framing, no request parsing and no
client library -- ``nc localhost PORT`` works, and :func:`read_status` is
the in-process helper.

The server thread never touches cluster state: it serves the last dict it
was handed, so a hung round still answers (with a stale ``round`` and an
aging ``updated`` -- which is exactly the signal a hung fleet needs to be
visible)."""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

__all__ = ["StatusServer", "read_status", "parse_status_address"]


def parse_status_address(value: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; bare ``":0"`` binds loopback."""
    host, _, port = value.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"status address must be host:port, got {value!r}")
    return (host or "127.0.0.1", int(port))


class StatusServer:
    """Serve the latest status snapshot as one JSON line per connection."""

    def __init__(self, listen: str = "127.0.0.1:0"):
        host, port = parse_status_address(listen)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._lock = threading.Lock()
        self._snapshot: Dict[str, Any] = {"state": "starting"}
        self._updated = time.monotonic()
        self._closing = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="obs-status", daemon=True)
        self._thread.start()

    def update(self, snapshot: Dict[str, Any]) -> None:
        """Replace the served snapshot (coordinator thread, once per round)."""
        with self._lock:
            self._snapshot = dict(snapshot)
            self._updated = time.monotonic()

    def _payload(self) -> bytes:
        with self._lock:
            record = dict(self._snapshot)
            record["updated"] = round(time.monotonic() - self._updated, 3)
        return (json.dumps(record, default=str) + "\n").encode("utf-8")

    def _serve(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us
            try:
                conn.sendall(self._payload())
            except OSError:
                pass  # client went away mid-send; nothing to do
            finally:
                conn.close()

    def close(self) -> None:
        self._closing.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


def read_status(address: Tuple[str, int],
                timeout: float = 2.0) -> Optional[Dict[str, Any]]:
    """Connect to a :class:`StatusServer` and return its snapshot dict.

    Returns ``None`` when nothing answers (server closed, run finished) --
    callers poll runs that may end at any moment."""
    try:
        with socket.create_connection(address, timeout=timeout) as conn:
            conn.settimeout(timeout)
            chunks = []
            while True:
                data = conn.recv(4096)
                if not data:
                    break
                chunks.append(data)
    except OSError:
        return None
    raw = b"".join(chunks).decode("utf-8").strip()
    return json.loads(raw) if raw else None
