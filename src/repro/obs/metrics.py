"""A counter/gauge/histogram registry for the fleet's hot-path accounting.

Before this module every subsystem hand-threaded its own counters --
``SolverStats`` fields bumped inside :meth:`Solver.check`, ``CacheStats``
inside the cache lookups, ``WorkerStats`` inside the worker loop, plain
ints on the transports -- and anything that wanted a cross-cutting view
(a status server, a trace event, a benchmark) had to know every one of
those shapes.  :class:`MetricsRegistry` gives them one home:

* :class:`Counter` / :class:`Gauge` are single mutable cells with a public
  ``value``; hot paths hold a direct reference and do ``counter.value += 1``
  -- exactly the cost of the attribute bump they replace.
* :class:`Histogram` keeps count/total/min/max plus a small bounded,
  deterministically-decimated sample reservoir, so percentile queries
  (p50/p99 for solver latency and round wall time) cost O(1) memory.
* :meth:`MetricsRegistry.snapshot` returns a plain ``{name: number}`` dict,
  which is what trace events, the status server and ``cache_counters()``
  style aggregation all consume.

The legacy stats classes stay as the public surface: they are re-built as
*views* over a registry (see :class:`CounterField`), so ``stats.queries``
reads and ``stats.queries += 1`` writes keep working unchanged at every
call site while the same number is visible through the registry.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "CounterField",
           "bind_counters", "counter_fields"]


class Counter:
    """A monotonically *intended* (not enforced) integer cell.

    ``value`` is public on purpose: hot paths -- the interpreter's
    per-instruction bump, the solver's per-query bump -- hold the Counter
    and do ``c.value += 1``, which costs the same as bumping a dataclass
    field did.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A set-to-current-value cell (queue length, live workers, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Bounded distribution summary: count, total, min, max, percentiles.

    Exact count/total/min/max plus a sample reservoir capped at
    :attr:`SAMPLE_LIMIT`: when full it is decimated by dropping every
    other retained sample and doubling the keep-stride, so long runs keep
    a deterministic, evenly-spaced subsample (no RNG -- replay-safe) at
    O(1) memory.  Percentiles are computed from the reservoir; with up to
    ``SAMPLE_LIMIT`` samples they are exact, beyond that approximate.
    """

    SAMPLE_LIMIT = 512

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_stride")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.SAMPLE_LIMIT:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (0..100) from the retained samples.

        Linear interpolation between closest ranks; ``None`` when nothing
        has been observed yet.
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (max(0.0, min(100.0, q)) / 100.0) * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Used by the in-process coordinator to aggregate per-worker solver
        latency into one run-level distribution.
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self._samples.extend(other._samples)
        while len(self._samples) > self.SAMPLE_LIMIT:
            self._samples = self._samples[::2]
            self._stride *= 2

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name} n={self.count} mean={self.mean:.3g})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home for named metrics.

    One registry per worker (the solver, its caches, the executor and the
    worker's ``WorkerStats`` all share it), so a worker's whole hot-path
    accounting snapshots as one flat dict.  Not thread-safe by design:
    workers are shared-nothing, and the coordinator only reads snapshots
    between rounds.
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}")
        return metric

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: number}`` view; histograms flatten to dotted keys."""
        out: Dict[str, float] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                for key, value in metric.summary().items():
                    out[f"{name}.{key}"] = value
            else:
                out[name] = metric.value
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)


class CounterField:
    """Descriptor turning a stats-class attribute into a registry counter.

    The legacy stats classes (``SolverStats``, ``CacheStats``,
    ``WorkerStats``) keep their exact read/write surface --
    ``stats.queries``, ``stats.queries += 1``, ``stats.queries = 0`` --
    while the number itself lives in a :class:`Counter` that the owning
    registry (and therefore the status server and trace events) can see.

    Each instance stores its counters in ``instance._counters`` (a
    ``{field_name: Counter}`` dict), which the stats class creates in its
    ``__init__`` via :func:`bind_counters`.  Reading the attribute off the
    class itself returns the descriptor (so introspection still works).
    """

    __slots__ = ("name", "metric_name")

    def __init__(self, metric_name: Optional[str] = None):
        self.name = ""  # filled by __set_name__
        self.metric_name = metric_name

    def __set_name__(self, owner, name: str) -> None:
        self.name = name
        if self.metric_name is None:
            self.metric_name = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return instance._counters[self.name].value

    def __set__(self, instance, value) -> None:
        instance._counters[self.name].value = value


def bind_counters(instance, fields: Dict[str, CounterField],
                  registry: Optional[MetricsRegistry],
                  prefix: str = "") -> None:
    """Create the per-instance ``_counters`` dict behind :class:`CounterField`.

    With a registry, counters are get-or-create under ``prefix + metric_name``
    (shared visibility); without one, private Counters are used, so the stats
    object behaves exactly like the plain dataclass it replaces.
    """
    counters: Dict[str, Counter] = {}
    for name, field in fields.items():
        metric_name = prefix + (field.metric_name or name)
        if registry is not None:
            counters[name] = registry.counter(metric_name)
        else:
            counters[name] = Counter(metric_name)
    object.__setattr__(instance, "_counters", counters)


def counter_fields(cls) -> Dict[str, CounterField]:
    """All :class:`CounterField` descriptors declared on ``cls`` (and bases)."""
    out: Dict[str, CounterField] = {}
    for klass in reversed(cls.__mro__):
        for name, value in vars(klass).items():
            if isinstance(value, CounterField):
                out[name] = value
    return out
