"""Structured JSONL event tracing: one run, one ordered trace file.

The trace is the raw material for every paper figure the report renders
(coverage over time, per-worker utilization, transfer timelines), so the
format is deliberately boring: one JSON object per line, append-only.

Envelope keys, identical on every backend:

``seq``
    Strictly increasing per-file sequence number (trace-integrity tests
    key off it).
``ts``
    Seconds since the tracer was opened, from ``time.monotonic`` --
    immune to wall-clock steps, comparable within one file only.
``event``
    The event name (``run_started``, ``round_completed``, ...).
``run``
    Short random run id, so concatenated traces stay attributable.
``worker`` / ``round``
    Present where meaningful.

Everything else is event-specific payload.  Writers use a single
``os.write`` on an ``O_APPEND`` fd per event, so concurrent emitters
(threaded backend) never interleave partial lines; a reader only ever
sees whole lines plus at most one truncated final line after a crash,
which :func:`load_trace` tolerates.

Workers on the process and TCP backends cannot write the coordinator's
file; they buffer events in a :class:`BufferTracer` and piggyback them on
their next status reply, and the coordinator re-stamps them into the
single ordered file (the worker-local timestamp survives as ``wts``).

:data:`NULL_TRACER` is the disabled path: ``enabled`` is ``False`` and
every method is a no-op, so call sites guard hot-path payload building
with ``if tracer.enabled:`` and pay nothing when tracing is off.

Payloads can additionally be validated against the declared schema
registry *at runtime*: pass ``validate=`` to :class:`Tracer` /
:class:`BufferTracer`, or set ``REPRO_TRACE_VALIDATE=1`` in the
environment to turn on :func:`schema_validator` everywhere (the tier-1 CI
run does).  The static TRACE checkers cover literal emit sites; the
runtime hook catches dynamically-built payloads they cannot see.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs.schema import SPAN, TRACE_EVENTS_DROPPED, WORKER_EVENT
from repro.obs.schema import validate_keys as _schema_validate_keys

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "BufferTracer",
           "load_trace", "schema_validator", "TRACE_VALIDATE_ENV"]

#: Environment switch: any value except "" / "0" turns on
#: :func:`schema_validator` for every tracer constructed without an
#: explicit ``validate=``.
TRACE_VALIDATE_ENV = "REPRO_TRACE_VALIDATE"

#: A runtime payload validator: called with ``(event, record)`` before the
#: record is written; raises to reject it.
Validator = Callable[[str, Dict[str, Any]], None]


def schema_validator(event: str, record: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` satisfies the declared schema
    (:mod:`repro.obs.schema`) for ``event``.  Envelope keys are exempt."""
    problems = _schema_validate_keys(event, record.keys())
    if problems:
        raise ValueError("trace record for %r violates the declared "
                         "schema: %s" % (event, "; ".join(problems)))


def _resolve_validator(validate: Any) -> Optional[Validator]:
    """``None`` defers to the environment switch; ``False`` forces
    validation off, ``True`` forces the schema validator on; any other
    value is the validator itself."""
    if validate is None:
        if os.environ.get(TRACE_VALIDATE_ENV, "") not in ("", "0"):
            return schema_validator
        return None
    if validate is False:
        return None
    if validate is True:
        return schema_validator
    return validate


class Tracer:
    """Process-safe JSONL trace writer.

    The file is truncated on open (one run, one trace) and then written
    with atomic ``O_APPEND`` single-write records.  ``emit`` drops keys
    whose value is ``None`` so call sites can pass optional fields
    unconditionally.

    ``validate`` is an opt-in runtime schema hook called with every
    finished record before it is written (default: on only when
    ``REPRO_TRACE_VALIDATE`` is set in the environment).
    """

    enabled = True

    def __init__(self, path: str, run_id: Optional[str] = None,
                 validate: Any = None):
        self.path = str(path)
        self.run_id = run_id or uuid.uuid4().hex[:8]
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND,
            0o644)
        self._lock = threading.Lock()
        self._seq = 0
        self._epoch = time.monotonic()
        self._validate = _resolve_validator(validate)

    # -- core ---------------------------------------------------------------------------

    def emit(self, event: str, *, worker: Optional[int] = None,
             round: Optional[int] = None, ts: Optional[float] = None,
             **fields: Any) -> None:
        """Append one event record.  ``ts`` defaults to now (tracer clock)."""
        if self._fd is None:
            return
        record: Dict[str, Any] = {
            "seq": 0,  # patched under the lock below
            "ts": ts if ts is not None else time.monotonic() - self._epoch,
            "event": event,
            "run": self.run_id,
        }
        if worker is not None:
            record["worker"] = worker
        if round is not None:
            record["round"] = round
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        if self._validate is not None:
            self._validate(event, record)
        with self._lock:
            if self._fd is None:
                return
            self._seq += 1
            record["seq"] = self._seq
            data = json.dumps(record, default=str) + "\n"
            os.write(self._fd, data.encode("utf-8"))

    def ingest(self, events: Iterable[Dict[str, Any]],
               worker: Optional[int] = None) -> None:
        """Write worker-forwarded events under coordinator ``seq``/``ts``.

        The worker's own monotonic timestamp (its ``ts``) is preserved as
        ``wts`` -- worker clocks are not comparable to the coordinator's,
        but intra-worker ordering and durations still are.
        """
        for event in events:
            fields = dict(event)
            name = fields.pop("event", WORKER_EVENT)
            fields.pop("seq", None)
            fields.pop("run", None)
            wts = fields.pop("ts", None)
            if wts is not None:
                fields["wts"] = wts
            who = fields.pop("worker", worker)
            rnd = fields.pop("round", None)
            self.emit(name, worker=who, round=rnd, **fields)

    def span(self, phase: str, **fields: Any):
        """Context manager timing a phase; emits one ``span`` event on exit."""
        return _Span(self, phase, fields)

    def close(self) -> None:
        with self._lock:
            fd, self._fd = self._fd, None
        if fd is not None:
            os.close(fd)

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Span:
    __slots__ = ("_tracer", "_phase", "_fields", "_start")

    def __init__(self, tracer, phase: str, fields: Dict[str, Any]):
        self._tracer = tracer
        self._phase = phase
        self._fields = fields
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.emit(SPAN, phase=self._phase,
                          duration=time.monotonic() - self._start,
                          **self._fields)


class NullTracer:
    """The tracing-off path: every operation is a no-op.

    ``enabled`` is ``False`` so hot paths can skip building event payloads
    entirely -- disabled tracing costs one attribute check.
    """

    enabled = False
    run_id = ""
    path = None

    def emit(self, event: str, **fields: Any) -> None:
        pass

    def ingest(self, events: Iterable[Dict[str, Any]],
               worker: Optional[int] = None) -> None:
        pass

    def span(self, phase: str, **fields: Any) -> "_NullSpan":
        return _NULL_SPAN

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass


_NULL_SPAN = _NullSpan()

#: Shared no-op tracer; ``tracer = NULL_TRACER`` is the disabled default
#: everywhere a component holds a tracer.
NULL_TRACER = NullTracer()


class BufferTracer:
    """Worker-side event buffer for the process and TCP backends.

    Workers cannot append to the coordinator's file, so they collect
    events as plain dicts and the coordinator drains them over the status
    channel (one reply per command; the buffer rides along) into the real
    :class:`Tracer` via :meth:`Tracer.ingest`.  Bounded: beyond
    ``capacity`` events between drains, new events are counted but
    dropped, and the drop count is emitted as a ``trace_events_dropped``
    event on the next drain.
    """

    enabled = True

    def __init__(self, capacity: int = 10_000, validate: Any = None):
        self.capacity = capacity
        self._events: List[Dict[str, Any]] = []
        self._dropped = 0
        self._epoch = time.monotonic()
        self._validate = _resolve_validator(validate)

    def emit(self, event: str, *, worker: Optional[int] = None,
             round: Optional[int] = None, **fields: Any) -> None:
        if len(self._events) >= self.capacity:
            self._dropped += 1
            return
        record: Dict[str, Any] = {
            "ts": time.monotonic() - self._epoch,
            "event": event,
        }
        if worker is not None:
            record["worker"] = worker
        if round is not None:
            record["round"] = round
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        if self._validate is not None:
            self._validate(event, record)
        self._events.append(record)

    def span(self, phase: str, **fields: Any) -> _Span:
        return _Span(self, phase, fields)

    def drain(self) -> List[Dict[str, Any]]:
        """Return buffered events and reset the buffer."""
        events, self._events = self._events, []
        if self._dropped:
            events.append({
                "ts": time.monotonic() - self._epoch,
                "event": TRACE_EVENTS_DROPPED,
                "count": self._dropped,
            })
            self._dropped = 0
        return events

    def close(self) -> None:
        self._events = []


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace, tolerating one truncated final line.

    A coordinator SIGKILL can leave a partial last record (the ``O_APPEND``
    write was cut); everything before it is still whole lines.  A parse
    error anywhere *except* the final line is a real corruption and
    raises.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # torn final write -- expected after a crash
            raise
    return events
