"""Render a run's trace into the paper's evaluation views.

``python -m repro.obs.report trace.jsonl`` reads a JSONL trace produced
by :mod:`repro.obs.trace` and prints:

* **Coverage over time** (Fig. 8/11): an ASCII chart of coverage percent
  against trace time, one point per ``round_completed`` event.
* **Per-worker utilization** (Fig. 9/10): useful vs replayed instructions
  and idle rounds per worker, from the ``workers_detail`` payload of each
  round event.
* **Timeline** (Fig. 12 and the fault/elasticity story): every transfer,
  autoscale decision, membership change, failure, checkpoint and bug, in
  order.

``--json`` emits the same analysis as one JSON object for scripting.
The reader tolerates a truncated final line, so a trace from a SIGKILLed
coordinator still renders.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs import schema
from repro.obs.trace import load_trace

__all__ = ["analyze_trace", "render_report", "main"]

_TIMELINE_EVENTS = (
    schema.RUN_STARTED, schema.JOB_TRANSFERRED, schema.WORKER_JOINED,
    schema.WORKER_DRAINING, schema.WORKER_LEFT, schema.WORKER_DIED,
    schema.WORKER_RESPAWNED, schema.JOBS_RECOVERED,
    schema.AUTOSCALE_DECISION, schema.CHECKPOINT_WRITTEN,
    schema.HEARTBEAT_MISS, schema.BUG_FOUND, schema.TRACE_EVENTS_DROPPED,
    schema.RUN_FINISHED,
)


def analyze_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce raw events to the three report views (plain data, no text)."""
    coverage: List[Dict[str, float]] = []
    workers: Dict[int, Dict[str, int]] = {}
    timeline: List[Dict[str, Any]] = []
    run_info: Dict[str, Any] = {}
    summary: Dict[str, Any] = {}

    for event in events:
        name = event.get("event")
        if name == schema.RUN_STARTED:
            run_info = {k: v for k, v in event.items()
                        if k not in ("seq", "event")}
        elif name == schema.ROUND_COMPLETED:
            coverage.append({
                "ts": event.get("ts", 0.0),
                "round": event.get("round", len(coverage)),
                "coverage_percent": event.get("coverage_percent", 0.0),
                "paths": event.get("paths", 0),
                "candidates": event.get("candidates", 0),
                "workers": event.get("workers", 0),
            })
            for wid, detail in (event.get("workers_detail") or {}).items():
                entry = workers.setdefault(int(wid), {
                    "useful": 0, "replay": 0, "rounds": 0, "idle_rounds": 0})
                useful = int(detail.get("useful", 0))
                replay = int(detail.get("replay", 0))
                entry["useful"] += useful
                entry["replay"] += replay
                entry["rounds"] += 1
                if not useful and not replay:
                    entry["idle_rounds"] += 1
        elif name == schema.RUN_FINISHED:
            summary = {k: v for k, v in event.items()
                       if k not in ("seq", "event")}
        if name in _TIMELINE_EVENTS:
            timeline.append(event)

    return {
        "run": run_info,
        "coverage_over_time": coverage,
        "worker_utilization": {
            wid: dict(stats, total=stats["useful"] + stats["replay"])
            for wid, stats in sorted(workers.items())
        },
        "timeline": timeline,
        "summary": summary,
        "event_count": len(events),
    }


def _ascii_chart(points: List[Dict[str, float]], width: int = 60,
                 height: int = 12) -> List[str]:
    """Coverage-percent-vs-time scatter as text rows, newest scale wins."""
    if not points:
        return ["  (no round_completed events)"]
    max_ts = max(p["ts"] for p in points) or 1.0
    max_cov = max(max(p["coverage_percent"] for p in points), 1.0)
    grid = [[" "] * width for _ in range(height)]
    for p in points:
        x = min(int(p["ts"] / max_ts * (width - 1)), width - 1)
        y = min(int(p["coverage_percent"] / max_cov * (height - 1)), height - 1)
        grid[height - 1 - y][x] = "*"
    rows = []
    for i, row in enumerate(grid):
        label = f"{max_cov * (height - 1 - i) / (height - 1):5.1f}% |"
        rows.append(label + "".join(row))
    rows.append(" " * 7 + "+" + "-" * width)
    rows.append(" " * 8 + f"0s{' ' * (width - 12)}{max_ts:8.2f}s")
    return rows


def _describe(event: Dict[str, Any]) -> str:
    name = event.get("event", "?")
    skip = {"seq", "ts", "event", "run", "wts"}
    detail = " ".join(f"{k}={event[k]}" for k in event if k not in skip)
    return f"  {event.get('ts', 0.0):9.3f}s  {name:<20s} {detail}".rstrip()


def render_report(analysis: Dict[str, Any]) -> str:
    lines: List[str] = []
    run = analysis["run"]
    lines.append("== Run ==")
    if run:
        detail = " ".join(f"{k}={v}" for k, v in run.items()
                          if k not in ("ts",))
        lines.append(f"  {detail}")
    else:
        lines.append("  (no run_started event)")

    lines.append("")
    lines.append("== Coverage over time ==")
    lines.extend(_ascii_chart(analysis["coverage_over_time"]))
    rounds = analysis["coverage_over_time"]
    if rounds:
        last = rounds[-1]
        lines.append(f"  final: {last['coverage_percent']:.1f}% after "
                     f"{int(last['round']) + 1} rounds, "
                     f"{last['paths']} paths, ts={last['ts']:.2f}s")

    lines.append("")
    lines.append("== Per-worker utilization ==")
    util = analysis["worker_utilization"]
    if util:
        lines.append(f"  {'worker':>6s} {'useful':>10s} {'replay':>10s} "
                     f"{'overhead':>9s} {'rounds':>7s} {'idle':>5s}")
        for wid, stats in util.items():
            total = stats["total"]
            overhead = stats["replay"] / total if total else 0.0
            lines.append(
                f"  {wid:>6d} {stats['useful']:>10d} {stats['replay']:>10d} "
                f"{overhead:>8.1%} {stats['rounds']:>7d} "
                f"{stats['idle_rounds']:>5d}")
    else:
        lines.append("  (no per-worker detail in trace)")

    lines.append("")
    lines.append("== Timeline ==")
    timeline = analysis["timeline"]
    if timeline:
        lines.extend(_describe(e) for e in timeline)
    else:
        lines.append("  (no timeline events)")

    summary = analysis["summary"]
    if summary:
        lines.append("")
        lines.append("== Summary ==")
        detail = " ".join(f"{k}={v}" for k, v in summary.items()
                          if k not in ("ts", "run", "worker"))
        lines.append(f"  {detail}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a repro trace (JSONL) into coverage-over-time, "
                    "per-worker utilization and event-timeline views.")
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument("--json", action="store_true",
                        help="emit the analysis as JSON instead of text")
    args = parser.parse_args(argv)
    try:
        events = load_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    analysis = analyze_trace(events)
    if args.json:
        print(json.dumps(analysis, indent=2, default=str))
    else:
        print(render_report(analysis))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    sys.exit(main())
