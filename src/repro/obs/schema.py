"""The declared trace-event schema registry: one vocabulary, six backends.

Every backend writes the same JSONL trace format (:mod:`repro.obs.trace`),
and downstream consumers -- the report CLI, the replay tooling ROADMAP item
6 asks for, and the trace-integrity tests -- key off event names and field
names that until now lived only as string literals scattered across four
subsystems.  This module makes the vocabulary explicit:

* one :class:`EventSchema` per event, declaring its required keys (present
  at every emit site), its optional keys (backend-specific extras), and
  whether the payload is open (``allow_extra``, for pass-through dumps like
  ``solver_query``);
* one module-level constant per event name (``ROUND_COMPLETED`` ...), which
  emit call sites use instead of string literals.

The registry is deliberately *statically parseable*: every ``_event(...)``
call below uses only literals, so the static checker
(:mod:`repro.analysis.traceschema`) reads this file's AST -- no imports, no
execution -- and verifies every ``Tracer.emit`` call site in the tree
against it.  Drift between backends on a shared event (a key renamed in one
coordinator but not the other) is a CI failure, not a silently broken
report.

Registering a new event
-----------------------

1. Add a constant here via ``_event("my_event", required=(...),
   optional=(...))``; keys in ``required`` must appear at every emit site,
   keys in ``optional`` may appear at some.
2. Use the constant at the emit site: ``tracer.emit(schema.MY_EVENT, ...)``.
3. Run ``python -m repro.analysis src/`` -- unknown events, unknown keys
   and missing required keys are findings with file:line positions.

Envelope keys (``seq``/``ts``/``event``/``run``/``worker``/``round``/
``wts``) are added by the tracer itself and never declared per event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["EventSchema", "EVENT_SCHEMAS", "ENVELOPE_KEYS", "schema_for",
           "validate_keys"]

#: Keys owned by the trace envelope (:meth:`repro.obs.trace.Tracer.emit`),
#: legal on any event and never part of a per-event schema.
ENVELOPE_KEYS = frozenset({"seq", "ts", "event", "run", "worker", "round",
                           "wts"})


@dataclass(frozen=True)
class EventSchema:
    """Declared shape of one trace event's payload."""

    name: str
    #: Keys every emit site must pass (the cross-backend contract).
    required: Tuple[str, ...] = ()
    #: Keys some emit sites pass (backend-specific detail).
    optional: Tuple[str, ...] = ()
    #: Open payload: sites may pass keys not listed here (dynamic dumps).
    allow_extra: bool = False
    #: Emitted by more than one backend; the checker holds every site to
    #: the same required set, which is what keeps the backends in sync.
    shared: bool = False

    def allowed(self) -> frozenset:
        return frozenset(self.required) | frozenset(self.optional)


#: name -> schema, populated by the ``_event`` calls below.
EVENT_SCHEMAS: Dict[str, EventSchema] = {}


def _event(name: str, required: Tuple[str, ...] = (),
           optional: Tuple[str, ...] = (), allow_extra: bool = False,
           shared: bool = False) -> str:
    """Register one event schema; returns the name (bound to a constant).

    Call sites of this helper must stay literal-only -- the static checker
    parses them from the AST.
    """
    if name in EVENT_SCHEMAS:
        raise ValueError("duplicate trace event schema %r" % name)
    EVENT_SCHEMAS[name] = EventSchema(name=name, required=tuple(required),
                                      optional=tuple(optional),
                                      allow_extra=allow_extra, shared=shared)
    return name


# -- run lifecycle -----------------------------------------------------------------------

RUN_STARTED = _event(
    "run_started",
    required=("backend", "workers", "line_count"),
    optional=("test", "resumed_from_round"),
    shared=True)

ROUND_COMPLETED = _event(
    "round_completed",
    required=("elapsed", "coverage_percent", "covered_lines", "paths",
              "candidates", "workers", "useful", "replay", "transferred",
              "queues", "workers_detail"),
    shared=True)

RUN_FINISHED = _event(
    "run_finished",
    required=("paths", "coverage_percent", "bugs", "exhausted", "wall_time"),
    optional=("rounds", "steps", "instructions", "useful", "replay",
              "goal_reached", "round_time_p50", "round_time_p99"),
    shared=True)

BUG_FOUND = _event(
    "bug_found",
    optional=("kind", "message", "bugs", "new"),
    shared=True)

CHECKPOINT_WRITTEN = _event(
    "checkpoint_written",
    optional=("path",),
    shared=True)

#: End-of-run (and single-engine) dump of the raw solver/cache counters;
#: the key set is whatever the counter registry holds, hence open.
SOLVER_QUERY = _event("solver_query", allow_extra=True, shared=True)

# -- load balancing ----------------------------------------------------------------------

JOB_TRANSFERRED = _event(
    "job_transferred",
    required=("source", "destination", "jobs"),
    shared=True)

# -- membership --------------------------------------------------------------------------

WORKER_JOINED = _event("worker_joined", optional=("workers",), shared=True)

WORKER_DRAINING = _event("worker_draining", required=("queue",), shared=True)

WORKER_LEFT = _event("worker_left", optional=("workers",), shared=True)

AUTOSCALE_DECISION = _event(
    "autoscale_decision",
    required=("action", "count", "workers"))

# -- fault tolerance ---------------------------------------------------------------------

HEARTBEAT_MISS = _event("heartbeat_miss")

WORKER_DIED = _event("worker_died", required=("reason", "draining"))

WORKER_RESPAWNED = _event("worker_respawned")

JOBS_RECOVERED = _event("jobs_recovered", required=("jobs",))

# -- worker-side forwarding --------------------------------------------------------------

#: Timed phase (``Tracer.span``); payload is the span's free-form fields.
SPAN = _event("span", required=("phase", "duration"), allow_extra=True)

#: The worker-side buffer overflowed between drains (``BufferTracer``).
TRACE_EVENTS_DROPPED = _event("trace_events_dropped", required=("count",))

#: Fallback name for a forwarded worker event that lost its ``event`` key.
WORKER_EVENT = _event("worker_event", allow_extra=True)


# -- helpers -----------------------------------------------------------------------------


def schema_for(name: str) -> EventSchema:
    """The declared schema for ``name``; raises ``KeyError`` if unknown."""
    return EVENT_SCHEMAS[name]


def validate_keys(name: str, keys) -> Tuple[str, ...]:
    """Problems with emitting ``keys`` for event ``name`` (empty = valid).

    The same contract the static checker enforces, usable at runtime by
    tests that build events dynamically.
    """
    problems = []
    schema = EVENT_SCHEMAS.get(name)
    if schema is None:
        return ("unknown trace event %r" % name,)
    keyset = frozenset(keys) - ENVELOPE_KEYS
    for missing in sorted(frozenset(schema.required) - keyset):
        problems.append("event %r missing required key %r" % (name, missing))
    if not schema.allow_extra:
        for extra in sorted(keyset - schema.allowed()):
            problems.append("event %r has undeclared key %r" % (name, extra))
    return tuple(problems)
