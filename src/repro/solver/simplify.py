"""Expression simplification: constant folding and algebraic identities.

The engine calls :func:`simplify` on every branch condition before adding it
to a path constraint.  Keeping expressions small is the single biggest lever
on solver performance, exactly as in KLEE/Cloud9 where the constraint
simplifier and caches sit in front of STP.
"""

from __future__ import annotations

from typing import Dict

from repro.solver.expr import (
    BOOL,
    Expr,
    Op,
    TRUE,
    FALSE,
    bool_const,
    bv_const,
    evaluate,
)


def _fold_concrete(expr: Expr) -> Expr:
    """Fold an expression whose children are all constants."""
    value = evaluate(expr, {})
    if expr.is_bool:
        return bool_const(bool(value))
    return bv_const(int(value), expr.width)


def simplify(expr: Expr, _cache: Dict[Expr, Expr] = None) -> Expr:
    """Return a semantically equivalent, usually smaller, expression."""
    if _cache is None:
        _cache = {}
    cached = _cache.get(expr)
    if cached is not None:
        return cached

    if expr.op in (Op.BV_CONST, Op.BOOL_CONST, Op.BV_SYMBOL):
        _cache[expr] = expr
        return expr

    args = tuple(simplify(a, _cache) for a in expr.args)
    node = Expr(expr.op, args, sort=expr.sort, value=expr.value,
                name=expr.name, params=expr.params)

    if all(a.is_constant for a in args):
        out = _fold_concrete(node)
        _cache[expr] = out
        return out

    out = _apply_identities(node)
    _cache[expr] = out
    return out


def _is_zero(e: Expr) -> bool:
    return e.op == Op.BV_CONST and e.value == 0


def _is_all_ones(e: Expr) -> bool:
    return e.op == Op.BV_CONST and e.value == e.sort.mask


def _apply_identities(expr: Expr) -> Expr:
    op = expr.op
    args = expr.args

    if op == Op.ADD:
        a, b = args
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
    elif op == Op.SUB:
        a, b = args
        if _is_zero(b):
            return a
        if a == b:
            return bv_const(0, expr.width)
    elif op == Op.MUL:
        a, b = args
        if _is_zero(a) or _is_zero(b):
            return bv_const(0, expr.width)
        if a.op == Op.BV_CONST and a.value == 1:
            return b
        if b.op == Op.BV_CONST and b.value == 1:
            return a
    elif op == Op.AND:
        a, b = args
        if _is_zero(a) or _is_zero(b):
            return bv_const(0, expr.width)
        if _is_all_ones(a):
            return b
        if _is_all_ones(b):
            return a
        if a == b:
            return a
    elif op == Op.OR:
        a, b = args
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
        if _is_all_ones(a) or _is_all_ones(b):
            return bv_const(expr.sort.mask, expr.width)
        if a == b:
            return a
    elif op == Op.XOR:
        a, b = args
        if a == b:
            return bv_const(0, expr.width)
        if _is_zero(a):
            return b
        if _is_zero(b):
            return a
    elif op in (Op.SHL, Op.LSHR):
        a, b = args
        if _is_zero(b):
            return a
        if _is_zero(a):
            return bv_const(0, expr.width)
    elif op == Op.ZEXT:
        (a,) = args
        if a.op == Op.ZEXT:
            return Expr(Op.ZEXT, (a.args[0],), sort=expr.sort, params=expr.params)
    elif op == Op.EXTRACT:
        (a,) = args
        high, low = expr.params
        if low == 0 and high == a.width - 1:
            return a
    elif op == Op.EQ:
        a, b = args
        if a == b:
            return TRUE
        folded = _fold_ite_comparison(a, b, negate=False)
        if folded is not None:
            return folded
        folded = _fold_ite_comparison(b, a, negate=False)
        if folded is not None:
            return folded
    elif op == Op.NE:
        a, b = args
        if a == b:
            return FALSE
        folded = _fold_ite_comparison(a, b, negate=True)
        if folded is not None:
            return folded
        folded = _fold_ite_comparison(b, a, negate=True)
        if folded is not None:
            return folded
    elif op == Op.ULT:
        a, b = args
        if a == b:
            return FALSE
        if _is_zero(b):
            return FALSE
    elif op == Op.ULE:
        a, b = args
        if a == b:
            return TRUE
        if _is_zero(a):
            return TRUE
    elif op in (Op.SLT,):
        a, b = args
        if a == b:
            return FALSE
    elif op in (Op.SLE,):
        a, b = args
        if a == b:
            return TRUE
    elif op == Op.BOOL_AND:
        a, b = args
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
    elif op == Op.BOOL_OR:
        a, b = args
        if a == TRUE or b == TRUE:
            return TRUE
        if a == FALSE:
            return b
        if b == FALSE:
            return a
        if a == b:
            return a
    elif op == Op.BOOL_NOT:
        (a,) = args
        if a == TRUE:
            return FALSE
        if a == FALSE:
            return TRUE
        if a.op == Op.BOOL_NOT:
            return a.args[0]
        # Push negation into comparisons: not(a == b) -> a != b, etc.
        negations = {
            Op.EQ: Op.NE,
            Op.NE: Op.EQ,
            Op.ULT: Op.ULE,   # not(a < b)  -> b <= a
            Op.ULE: Op.ULT,   # not(a <= b) -> b < a
            Op.SLT: Op.SLE,
            Op.SLE: Op.SLT,
        }
        if a.op in (Op.EQ, Op.NE):
            return Expr(negations[a.op], a.args, sort=a.sort)
        if a.op in (Op.ULT, Op.ULE, Op.SLT, Op.SLE):
            return Expr(negations[a.op], (a.args[1], a.args[0]), sort=a.sort)
    elif op == Op.ITE:
        cond, then, otherwise = args
        if cond == TRUE:
            return then
        if cond == FALSE:
            return otherwise
        if then == otherwise:
            return then

    return expr


def _fold_ite_comparison(lhs: Expr, rhs: Expr, negate: bool):
    """Rewrite ``ite(c, k1, k2) ==/!= k`` into ``c`` / ``not c`` when possible.

    The engine encodes C-style comparison results as ``ite(cond, 1, 0)`` and
    then branches on "result != 0"; folding the pattern back to ``cond`` keeps
    path constraints flat, which is the single most important simplification
    for solver performance on parser-style code.
    """
    if lhs.op != Op.ITE or rhs.op != Op.BV_CONST:
        return None
    cond, then_branch, else_branch = lhs.args
    if then_branch.op != Op.BV_CONST or else_branch.op != Op.BV_CONST:
        return None
    then_matches = then_branch.value == rhs.value
    else_matches = else_branch.value == rhs.value
    if then_matches and not else_matches:
        # eq -> cond; ne -> not cond.
        result = cond
    elif else_matches and not then_matches:
        result = _apply_identities(Expr(Op.BOOL_NOT, (cond,), sort=BOOL))
    elif not then_matches and not else_matches:
        # Never equal to the constant.
        result = FALSE
    else:
        # Both branches equal the constant: always equal.
        result = TRUE
    if negate:
        if result is TRUE:
            return FALSE
        if result is FALSE:
            return TRUE
        return _apply_identities(Expr(Op.BOOL_NOT, (result,), sort=BOOL))
    return result


def conjuncts(expr: Expr) -> "list[Expr]":
    """Split a boolean expression into its top-level conjuncts."""
    if expr.op != Op.BOOL_AND:
        return [expr]
    out: list[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if node.op == Op.BOOL_AND:
            stack.extend(node.args)
        else:
            out.append(node)
    out.reverse()
    return out
