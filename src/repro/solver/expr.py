"""Bitvector/boolean expression language.

Expressions are immutable, structurally hashable trees.  Bitvector values are
unsigned integers interpreted modulo ``2**width``; signed comparisons use
two's-complement interpretation.  The expression language intentionally covers
only what the symbolic execution engine emits: arithmetic, bitwise operations,
shifts, concatenation/extraction, comparisons and boolean connectives.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple


class Op(enum.Enum):
    """Operators of the expression language."""

    # Leaf nodes
    BV_CONST = "bv_const"
    BOOL_CONST = "bool_const"
    BV_SYMBOL = "bv_symbol"

    # Bitvector arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    UREM = "urem"

    # Bitwise
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    LSHR = "lshr"

    # Structure
    CONCAT = "concat"
    EXTRACT = "extract"
    ZEXT = "zext"

    # Comparisons (bitvector -> bool)
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    SLT = "slt"
    SLE = "sle"

    # Boolean connectives
    BOOL_AND = "bool_and"
    BOOL_OR = "bool_or"
    BOOL_NOT = "bool_not"
    ITE = "ite"


class Sort:
    """Base class for expression sorts."""

    __slots__ = ()


class BoolSort(Sort):
    """The boolean sort."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Bool"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolSort)

    def __hash__(self) -> int:
        return hash("BoolSort")


class BvSort(Sort):
    """A fixed-width bitvector sort."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("bitvector width must be positive, got %r" % width)
        self.width = width

    def __repr__(self) -> str:
        return "Bv%d" % self.width

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BvSort) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("BvSort", self.width))

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


BOOL = BoolSort()
BV8 = BvSort(8)
BV16 = BvSort(16)
BV32 = BvSort(32)
BV64 = BvSort(64)


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's-complement."""
    value = _mask(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def from_signed(value: int, width: int) -> int:
    """Encode a (possibly negative) integer as an unsigned ``width``-bit value."""
    return _mask(value, width)


class Expr:
    """An immutable expression node.

    Instances should be created through the module-level constructor helpers
    (:func:`bv_const`, :func:`add`, :func:`eq`, ...) which validate sorts.
    """

    __slots__ = ("op", "args", "sort", "value", "name", "params", "_hash")

    def __init__(
        self,
        op: Op,
        args: Tuple["Expr", ...] = (),
        sort: Optional[Sort] = None,
        value: Optional[object] = None,
        name: Optional[str] = None,
        params: Tuple[int, ...] = (),
    ):
        self.op = op
        self.args = args
        self.sort = sort
        self.value = value
        self.name = name
        self.params = params
        self._hash = hash(
            (op, args, repr(sort), value, name, params)
        )

    # -- identity ---------------------------------------------------------

    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        # Expressions are immutable; treating them as atoms keeps state
        # forking cheap (environment-model data may embed symbolic cells).
        return self

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.value == other.value
            and self.name == other.name
            and self.params == other.params
            and self.sort == other.sort
            and self.args == other.args
        )

    # -- introspection ----------------------------------------------------

    @property
    def is_bool(self) -> bool:
        return isinstance(self.sort, BoolSort)

    @property
    def is_bv(self) -> bool:
        return isinstance(self.sort, BvSort)

    @property
    def width(self) -> int:
        if not isinstance(self.sort, BvSort):
            raise TypeError("expression %r is not a bitvector" % (self,))
        return self.sort.width

    @property
    def is_constant(self) -> bool:
        return self.op in (Op.BV_CONST, Op.BOOL_CONST)

    @property
    def is_symbol(self) -> bool:
        return self.op == Op.BV_SYMBOL

    def symbols(self) -> "set[Expr]":
        """Return the set of symbol leaves appearing in this expression."""
        out: set[Expr] = set()
        stack = [self]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.op == Op.BV_SYMBOL:
                out.add(node)
            else:
                stack.extend(node.args)
        return out

    def depth(self) -> int:
        """Height of the expression tree (leaves have depth 1)."""
        if not self.args:
            return 1
        return 1 + max(arg.depth() for arg in self.args)

    # -- printing ---------------------------------------------------------

    def __repr__(self) -> str:
        if self.op == Op.BV_CONST:
            return "Bv%d(%d)" % (self.width, self.value)
        if self.op == Op.BOOL_CONST:
            return "Bool(%s)" % self.value
        if self.op == Op.BV_SYMBOL:
            return "%s:%d" % (self.name, self.width)
        if self.op == Op.EXTRACT:
            return "Extract(%d,%d, %r)" % (self.params[0], self.params[1], self.args[0])
        if self.op == Op.ZEXT:
            return "ZExt(%d, %r)" % (self.params[0], self.args[0])
        return "%s(%s)" % (self.op.value, ", ".join(repr(a) for a in self.args))


# Subclass aliases kept for readable isinstance checks in client code.
class BvConst(Expr):
    __slots__ = ()


class BoolConst(Expr):
    __slots__ = ()


class BvSymbol(Expr):
    __slots__ = ()


TRUE = BoolConst(Op.BOOL_CONST, sort=BOOL, value=True)
FALSE = BoolConst(Op.BOOL_CONST, sort=BOOL, value=False)


# -- constructors ----------------------------------------------------------


def bv_const(value: int, width: int) -> Expr:
    """A bitvector constant of the given width (value taken modulo 2**width)."""
    return BvConst(Op.BV_CONST, sort=BvSort(width), value=_mask(int(value), width))


def bool_const(value: bool) -> Expr:
    return TRUE if value else FALSE


def bv_symbol(name: str, width: int = 8) -> Expr:
    """A free bitvector variable."""
    if not name:
        raise ValueError("symbol name must be non-empty")
    return BvSymbol(Op.BV_SYMBOL, sort=BvSort(width), name=name)


def _require_bv(*exprs: Expr) -> None:
    for e in exprs:
        if not isinstance(e, Expr) or not e.is_bv:
            raise TypeError("expected bitvector expression, got %r" % (e,))


def _require_same_width(a: Expr, b: Expr) -> None:
    _require_bv(a, b)
    if a.width != b.width:
        raise TypeError(
            "width mismatch: %d vs %d (%r, %r)" % (a.width, b.width, a, b)
        )


def _require_bool(*exprs: Expr) -> None:
    for e in exprs:
        if not isinstance(e, Expr) or not e.is_bool:
            raise TypeError("expected boolean expression, got %r" % (e,))


def _binop(op: Op, a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(op, (a, b), sort=a.sort)


def add(a: Expr, b: Expr) -> Expr:
    return _binop(Op.ADD, a, b)


def sub(a: Expr, b: Expr) -> Expr:
    return _binop(Op.SUB, a, b)


def mul(a: Expr, b: Expr) -> Expr:
    return _binop(Op.MUL, a, b)


def udiv(a: Expr, b: Expr) -> Expr:
    return _binop(Op.UDIV, a, b)


def urem(a: Expr, b: Expr) -> Expr:
    return _binop(Op.UREM, a, b)


def band(a: Expr, b: Expr) -> Expr:
    return _binop(Op.AND, a, b)


def bor(a: Expr, b: Expr) -> Expr:
    return _binop(Op.OR, a, b)


def bxor(a: Expr, b: Expr) -> Expr:
    return _binop(Op.XOR, a, b)


def bnot(a: Expr) -> Expr:
    _require_bv(a)
    return Expr(Op.NOT, (a,), sort=a.sort)


def shl(a: Expr, b: Expr) -> Expr:
    return _binop(Op.SHL, a, b)


def lshr(a: Expr, b: Expr) -> Expr:
    return _binop(Op.LSHR, a, b)


def concat(high: Expr, low: Expr) -> Expr:
    """Concatenate two bitvectors; ``high`` supplies the most significant bits."""
    _require_bv(high, low)
    return Expr(Op.CONCAT, (high, low), sort=BvSort(high.width + low.width))


def extract(expr: Expr, high_bit: int, low_bit: int) -> Expr:
    """Extract bits ``[high_bit:low_bit]`` (inclusive) from a bitvector."""
    _require_bv(expr)
    if not (0 <= low_bit <= high_bit < expr.width):
        raise ValueError(
            "invalid extract range [%d:%d] on width %d" % (high_bit, low_bit, expr.width)
        )
    return Expr(
        Op.EXTRACT,
        (expr,),
        sort=BvSort(high_bit - low_bit + 1),
        params=(high_bit, low_bit),
    )


def zext(expr: Expr, new_width: int) -> Expr:
    """Zero-extend a bitvector to ``new_width`` bits."""
    _require_bv(expr)
    if new_width < expr.width:
        raise ValueError("cannot zero-extend width %d to %d" % (expr.width, new_width))
    if new_width == expr.width:
        return expr
    return Expr(Op.ZEXT, (expr,), sort=BvSort(new_width), params=(new_width,))


def eq(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(Op.EQ, (a, b), sort=BOOL)


def ne(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(Op.NE, (a, b), sort=BOOL)


def ult(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(Op.ULT, (a, b), sort=BOOL)


def ule(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(Op.ULE, (a, b), sort=BOOL)


def ugt(a: Expr, b: Expr) -> Expr:
    return ult(b, a)


def uge(a: Expr, b: Expr) -> Expr:
    return ule(b, a)


def slt(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(Op.SLT, (a, b), sort=BOOL)


def sle(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b)
    return Expr(Op.SLE, (a, b), sort=BOOL)


def sgt(a: Expr, b: Expr) -> Expr:
    return slt(b, a)


def sge(a: Expr, b: Expr) -> Expr:
    return sle(b, a)


def logical_and(*exprs: Expr) -> Expr:
    """N-ary boolean conjunction (folded left, empty conjunction is TRUE)."""
    _require_bool(*exprs)
    if not exprs:
        return TRUE
    out = exprs[0]
    for e in exprs[1:]:
        out = Expr(Op.BOOL_AND, (out, e), sort=BOOL)
    return out


def logical_or(*exprs: Expr) -> Expr:
    """N-ary boolean disjunction (folded left, empty disjunction is FALSE)."""
    _require_bool(*exprs)
    if not exprs:
        return FALSE
    out = exprs[0]
    for e in exprs[1:]:
        out = Expr(Op.BOOL_OR, (out, e), sort=BOOL)
    return out


def logical_not(expr: Expr) -> Expr:
    _require_bool(expr)
    return Expr(Op.BOOL_NOT, (expr,), sort=BOOL)


def implies(a: Expr, b: Expr) -> Expr:
    return logical_or(logical_not(a), b)


def ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr:
    """If-then-else over bitvector or boolean branches of equal sort."""
    _require_bool(cond)
    if then.sort != otherwise.sort:
        raise TypeError(
            "ite branch sorts differ: %r vs %r" % (then.sort, otherwise.sort)
        )
    return Expr(Op.ITE, (cond, then, otherwise), sort=then.sort)


def concat_bytes(byte_exprs: Sequence[Expr]) -> Expr:
    """Concatenate 8-bit expressions big-endian into one wide bitvector."""
    if not byte_exprs:
        raise ValueError("cannot concatenate an empty byte sequence")
    out = byte_exprs[0]
    for b in byte_exprs[1:]:
        out = concat(out, b)
    return out


def evaluate(expr: Expr, assignment: "dict[Expr, int]") -> object:
    """Evaluate ``expr`` under a full assignment of symbol -> unsigned int.

    Returns an ``int`` for bitvector expressions and a ``bool`` for boolean
    expressions.  Raises ``KeyError`` when a symbol is unassigned.
    """
    op = expr.op
    if op == Op.BV_CONST:
        return expr.value
    if op == Op.BOOL_CONST:
        return expr.value
    if op == Op.BV_SYMBOL:
        return _mask(assignment[expr], expr.width)

    args = [evaluate(a, assignment) for a in expr.args]

    if op == Op.ADD:
        return _mask(args[0] + args[1], expr.width)
    if op == Op.SUB:
        return _mask(args[0] - args[1], expr.width)
    if op == Op.MUL:
        return _mask(args[0] * args[1], expr.width)
    if op == Op.UDIV:
        return expr.sort.mask if args[1] == 0 else _mask(args[0] // args[1], expr.width)
    if op == Op.UREM:
        return args[0] if args[1] == 0 else _mask(args[0] % args[1], expr.width)
    if op == Op.AND:
        return args[0] & args[1]
    if op == Op.OR:
        return args[0] | args[1]
    if op == Op.XOR:
        return args[0] ^ args[1]
    if op == Op.NOT:
        return _mask(~args[0], expr.width)
    if op == Op.SHL:
        return 0 if args[1] >= expr.width else _mask(args[0] << args[1], expr.width)
    if op == Op.LSHR:
        return 0 if args[1] >= expr.width else args[0] >> args[1]
    if op == Op.CONCAT:
        return (args[0] << expr.args[1].width) | args[1]
    if op == Op.EXTRACT:
        high, low = expr.params
        return (args[0] >> low) & ((1 << (high - low + 1)) - 1)
    if op == Op.ZEXT:
        return args[0]
    if op == Op.EQ:
        return args[0] == args[1]
    if op == Op.NE:
        return args[0] != args[1]
    if op == Op.ULT:
        return args[0] < args[1]
    if op == Op.ULE:
        return args[0] <= args[1]
    if op == Op.SLT:
        w = expr.args[0].width
        return to_signed(args[0], w) < to_signed(args[1], w)
    if op == Op.SLE:
        w = expr.args[0].width
        return to_signed(args[0], w) <= to_signed(args[1], w)
    if op == Op.BOOL_AND:
        return args[0] and args[1]
    if op == Op.BOOL_OR:
        return args[0] or args[1]
    if op == Op.BOOL_NOT:
        return not args[0]
    if op == Op.ITE:
        return args[1] if args[0] else args[2]
    raise NotImplementedError("evaluate: unhandled operator %r" % op)
