"""Constraint-solving caches.

Section 6 of the paper ("Constraint Caches") notes that KLEE caches
constraint-solving results and that Cloud9 workers rebuild the relevant part
of the cache as a side effect of path replay.  We reproduce both caches:

* :class:`ConstraintCache` maps a canonical form of a query (a frozen set of
  constraint expressions) to the satisfiability verdict and model.
* :class:`CounterexampleCache` implements the subset/superset reasoning used
  by KLEE: a satisfiable superset proves any subset satisfiable, and an
  unsatisfiable subset proves any superset unsatisfiable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.obs.metrics import CounterField, MetricsRegistry, bind_counters, counter_fields
from repro.solver.expr import Expr
from repro.solver.model import Model


QueryKey = FrozenSet[Expr]


def query_key(constraints: Iterable[Expr]) -> QueryKey:
    """Canonical cache key for a set of constraints (order-insensitive)."""
    return frozenset(constraints)


class CacheStats:
    """Hit/miss accounting for one cache.

    A view over a :class:`~repro.obs.metrics.MetricsRegistry`: with a
    registry, ``hits``/``misses`` live in registry counters under
    ``<prefix>hits`` / ``<prefix>misses`` (e.g. ``constraint_cache_hits``)
    so the fleet-wide metrics surface sees them; without one they are
    private cells and the class behaves like the plain dataclass it
    replaces.
    """

    hits = CounterField()
    misses = CounterField()

    def __init__(self, hits: int = 0, misses: int = 0, *,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = ""):
        bind_counters(self, counter_fields(type(self)), registry, prefix)
        if hits:
            self.hits = hits
        if misses:
            self.misses = misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return f"CacheStats(hits={self.hits}, misses={self.misses})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return self.hits == other.hits and self.misses == other.misses


def aggregate_cache_counters(counters: Iterable[Dict[str, int]]) -> Dict[str, float]:
    """Sum per-solver cache counters and derive overall hit rates.

    Each input dict has the shape of :meth:`repro.solver.solver.Solver.cache_counters`.
    Workers keep private solvers (and rebuild caches after replay, §6), so
    cluster-level hit rates must be aggregated from raw hit/miss counts, not
    averaged from per-worker rates.  Every counter key present in any input
    is summed, so the independence/solver counters aggregate the same way.
    """
    total: Dict[str, float] = {
        "constraint_cache_hits": 0,
        "constraint_cache_misses": 0,
        "cex_cache_hits": 0,
        "cex_cache_misses": 0,
    }
    for item in counters:
        for key, value in item.items():
            total[key] = total.get(key, 0) + value
    for prefix in ("constraint_cache", "cex_cache"):
        lookups = total["%s_hits" % prefix] + total["%s_misses" % prefix]
        total["%s_hit_rate" % prefix] = (
            total["%s_hits" % prefix] / lookups if lookups else 0.0)
    groups = total.get("independence_groups", 0)
    total["independence_hit_rate"] = (
        total.get("independence_hits", 0) / groups if groups else 0.0)
    return total


class ConstraintCache:
    """Exact-match cache of query -> (is_sat, model)."""

    def __init__(self, capacity: int = 65536, *,
                 registry: Optional[MetricsRegistry] = None):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._entries: Dict[QueryKey, Tuple[bool, Optional[Model]]] = {}
        self.stats = CacheStats(registry=registry, prefix="constraint_cache_")

    def lookup(self, constraints: Iterable[Expr]) -> Optional[Tuple[bool, Optional[Model]]]:
        key = query_key(constraints)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def insert(self, constraints: Iterable[Expr], is_sat: bool,
               model: Optional[Model]) -> None:
        if len(self._entries) >= self._capacity:
            # Simple wholesale eviction: the cache is an accelerator, never a
            # correctness dependency, and Cloud9 likewise tolerates losing it
            # across job transfers.
            self._entries.clear()
        self._entries[query_key(constraints)] = (is_sat, model)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class CounterexampleCache:
    """Subset/superset cache in the style of KLEE's counterexample cache.

    The subset/superset scans are restricted to the most recently inserted
    entries (``scan_window``): path constraints evolve incrementally, so the
    relevant super/subsets are almost always recent, and unbounded scans over
    a large cache would dominate solving time.
    """

    def __init__(self, capacity: int = 16384, scan_window: int = 64, *,
                 registry: Optional[MetricsRegistry] = None):
        self._capacity = capacity
        self._scan_window = scan_window
        self._sat_models: Dict[QueryKey, Model] = {}
        self._unsat: Dict[QueryKey, None] = {}
        self._recent_sat: List[QueryKey] = []
        self._recent_unsat: List[QueryKey] = []
        self.stats = CacheStats(registry=registry, prefix="cex_cache_")

    def lookup(self, constraints: Iterable[Expr]) -> Optional[Tuple[bool, Optional[Model]]]:
        key = query_key(constraints)

        exact_model = self._sat_models.get(key)
        if exact_model is not None:
            self.stats.hits += 1
            return True, exact_model
        if key in self._unsat:
            self.stats.hits += 1
            return False, None

        for other_key in reversed(self._recent_sat):
            model = self._sat_models.get(other_key)
            if model is None:
                continue
            # A model satisfying a superset of the query satisfies the query.
            if key.issubset(other_key):
                self.stats.hits += 1
                return True, model
            # A model for a subset query may happen to satisfy the full query.
            if other_key.issubset(key) and model.satisfies(key):
                self.stats.hits += 1
                return True, model
        # An unsatisfiable subset makes every superset unsatisfiable.
        for other_key in reversed(self._recent_unsat):
            if other_key in self._unsat and other_key.issubset(key):
                self.stats.hits += 1
                return False, None

        self.stats.misses += 1
        return None

    def insert(self, constraints: Iterable[Expr], is_sat: bool,
               model: Optional[Model]) -> None:
        key = query_key(constraints)
        if len(self._sat_models) + len(self._unsat) >= self._capacity:
            self.clear()
        if is_sat:
            if model is not None:
                self._sat_models[key] = model
                self._recent_sat.append(key)
                if len(self._recent_sat) > self._scan_window:
                    self._recent_sat.pop(0)
        else:
            self._unsat[key] = None
            self._recent_unsat.append(key)
            if len(self._recent_unsat) > self._scan_window:
                self._recent_unsat.pop(0)

    def clear(self) -> None:
        self._sat_models.clear()
        self._unsat.clear()
        self._recent_sat.clear()
        self._recent_unsat.clear()

    def __len__(self) -> int:
        return len(self._sat_models) + len(self._unsat)
