"""Unsigned interval abstract domain.

Given bounds on free symbols, :func:`interval_of` computes a sound
over-approximation ``[lo, hi]`` of every bitvector expression and a
three-valued truth for every boolean expression.  The solver uses this
domain in two ways:

* to discharge obviously (in)feasible queries without search, and
* to refine per-symbol bounds from simple comparison constraints
  (``sym < const``, ``sym == const``, ...), shrinking enumeration domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.solver.expr import Expr, Op, to_signed


@dataclass(frozen=True)
class Interval:
    """A closed unsigned interval ``[lo, hi]``; empty when ``lo > hi``."""

    lo: int
    hi: int

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def size(self) -> int:
        return 0 if self.is_empty else self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))


def full_interval(width: int) -> Interval:
    return Interval(0, (1 << width) - 1)


# Three-valued boolean results.
MAYBE = None


def interval_of(expr: Expr, bounds: Dict[Expr, Interval]) -> Interval:
    """Over-approximate the value range of a bitvector expression."""
    op = expr.op
    if op == Op.BV_CONST:
        return Interval(expr.value, expr.value)
    if op == Op.BV_SYMBOL:
        got = bounds.get(expr)
        return got if got is not None else full_interval(expr.width)

    width = expr.width if expr.is_bv else None
    mask = (1 << width) - 1 if width is not None else None

    if op == Op.ADD:
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        lo, hi = a.lo + b.lo, a.hi + b.hi
        if hi <= mask:
            return Interval(lo, hi)
        return full_interval(width)
    if op == Op.SUB:
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        lo, hi = a.lo - b.hi, a.hi - b.lo
        if lo >= 0:
            return Interval(lo, hi)
        return full_interval(width)
    if op == Op.MUL:
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        hi = a.hi * b.hi
        if hi <= mask:
            return Interval(a.lo * b.lo, hi)
        return full_interval(width)
    if op == Op.UDIV:
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        if b.lo > 0:
            return Interval(a.lo // b.hi, a.hi // b.lo)
        return full_interval(width)
    if op == Op.UREM:
        b = interval_of(expr.args[1], bounds)
        if b.hi > 0:
            return Interval(0, b.hi - 1 if b.lo > 0 else mask)
        return full_interval(width)
    if op in (Op.AND,):
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        return Interval(0, min(a.hi, b.hi))
    if op in (Op.OR, Op.XOR):
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        # Upper bound: smallest all-ones mask covering both.
        cover = 1
        while cover - 1 < max(a.hi, b.hi):
            cover <<= 1
        return Interval(0, min(mask, cover - 1))
    if op == Op.NOT:
        a = interval_of(expr.args[0], bounds)
        return Interval(mask - a.hi, mask - a.lo)
    if op == Op.SHL:
        return full_interval(width)
    if op == Op.LSHR:
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        if b.is_point and b.lo < width:
            return Interval(a.lo >> b.lo, a.hi >> b.lo)
        return Interval(0, a.hi)
    if op == Op.CONCAT:
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        low_width = expr.args[1].width
        return Interval((a.lo << low_width) + b.lo, (a.hi << low_width) + b.hi)
    if op == Op.EXTRACT:
        high, low = expr.params
        a = interval_of(expr.args[0], bounds)
        if low == 0 and a.hi <= (1 << (high + 1)) - 1:
            return a
        return full_interval(width)
    if op == Op.ZEXT:
        return interval_of(expr.args[0], bounds)
    if op == Op.ITE:
        cond = truth_of(expr.args[0], bounds)
        if cond is True:
            return interval_of(expr.args[1], bounds)
        if cond is False:
            return interval_of(expr.args[2], bounds)
        return interval_of(expr.args[1], bounds).union(
            interval_of(expr.args[2], bounds)
        )
    return full_interval(width)


def truth_of(expr: Expr, bounds: Dict[Expr, Interval]) -> Optional[bool]:
    """Three-valued truth of a boolean expression (None means unknown)."""
    op = expr.op
    if op == Op.BOOL_CONST:
        return bool(expr.value)
    if op in (Op.EQ, Op.NE, Op.ULT, Op.ULE):
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        if a.is_empty or b.is_empty:
            return None
        if op == Op.EQ:
            if a.is_point and b.is_point:
                return a.lo == b.lo
            if a.intersect(b).is_empty:
                return False
            return MAYBE
        if op == Op.NE:
            if a.is_point and b.is_point:
                return a.lo != b.lo
            if a.intersect(b).is_empty:
                return True
            return MAYBE
        if op == Op.ULT:
            if a.hi < b.lo:
                return True
            if a.lo >= b.hi:
                return False
            return MAYBE
        if op == Op.ULE:
            if a.hi <= b.lo:
                return True
            if a.lo > b.hi:
                return False
            return MAYBE
    if op in (Op.SLT, Op.SLE):
        # Only decide when both operand intervals stay within one sign half.
        width = expr.args[0].width
        half = 1 << (width - 1)
        a = interval_of(expr.args[0], bounds)
        b = interval_of(expr.args[1], bounds)
        same_half = (a.hi < half and b.hi < half) or (a.lo >= half and b.lo >= half)
        if same_half:
            sa = Interval(to_signed(a.lo, width), to_signed(a.hi, width))
            sb = Interval(to_signed(b.lo, width), to_signed(b.hi, width))
            if op == Op.SLT:
                if sa.hi < sb.lo:
                    return True
                if sa.lo >= sb.hi:
                    return False
            else:
                if sa.hi <= sb.lo:
                    return True
                if sa.lo > sb.hi:
                    return False
        return MAYBE
    if op == Op.BOOL_AND:
        a = truth_of(expr.args[0], bounds)
        b = truth_of(expr.args[1], bounds)
        if a is False or b is False:
            return False
        if a is True and b is True:
            return True
        return MAYBE
    if op == Op.BOOL_OR:
        a = truth_of(expr.args[0], bounds)
        b = truth_of(expr.args[1], bounds)
        if a is True or b is True:
            return True
        if a is False and b is False:
            return False
        return MAYBE
    if op == Op.BOOL_NOT:
        a = truth_of(expr.args[0], bounds)
        if a is None:
            return MAYBE
        return not a
    if op == Op.ITE:
        cond = truth_of(expr.args[0], bounds)
        if cond is True:
            return truth_of(expr.args[1], bounds)
        if cond is False:
            return truth_of(expr.args[2], bounds)
        return MAYBE
    return MAYBE


def refine_bounds(
    constraint: Expr, bounds: Dict[Expr, Interval]
) -> Tuple[Dict[Expr, Interval], bool]:
    """Refine symbol bounds from one constraint assumed to hold.

    Returns ``(new_bounds, changed)``.  Only handles the shapes that dominate
    path constraints in practice: comparisons where one side is a lone symbol
    (possibly zero-extended) and the other side has a computable interval.
    """
    changed = False
    new_bounds = dict(bounds)

    def strip(e: Expr) -> Expr:
        while e.op == Op.ZEXT:
            e = e.args[0]
        return e

    def refine(sym: Expr, refined: Interval) -> None:
        nonlocal changed
        current = new_bounds.get(sym, full_interval(sym.width))
        updated = current.intersect(refined)
        if updated != current:
            new_bounds[sym] = updated
            changed = True

    op = constraint.op
    if op in (Op.EQ, Op.NE, Op.ULT, Op.ULE):
        lhs, rhs = constraint.args
        lhs_s, rhs_s = strip(lhs), strip(rhs)
        lhs_iv = interval_of(lhs, bounds)
        rhs_iv = interval_of(rhs, bounds)
        if lhs_s.is_symbol:
            refine(lhs_s, _bound_from_cmp(op, rhs_iv, lhs_side=True,
                                          width=lhs_s.width))
        if rhs_s.is_symbol:
            refine(rhs_s, _bound_from_cmp(op, lhs_iv, lhs_side=False,
                                          width=rhs_s.width))
    elif op == Op.BOOL_AND:
        for arg in constraint.args:
            new_bounds, sub_changed = refine_bounds(arg, new_bounds)
            changed = changed or sub_changed

    return new_bounds, changed


def _bound_from_cmp(op: Op, other: Interval, lhs_side: bool, width: int) -> Interval:
    """Interval implied for the symbol side of ``sym <op> other`` (or mirrored)."""
    full = full_interval(width)
    if other.is_empty:
        return full
    if op == Op.EQ:
        return Interval(other.lo, other.hi)
    if op == Op.NE:
        if other.is_point:
            # Can only trim when the excluded point is at an end of the domain.
            if other.lo == 0:
                return Interval(1, full.hi)
            if other.lo == full.hi:
                return Interval(0, full.hi - 1)
        return full
    if op == Op.ULT:
        if lhs_side:   # sym < other
            return Interval(0, other.hi - 1)
        return Interval(other.lo + 1, full.hi)  # other < sym
    if op == Op.ULE:
        if lhs_side:   # sym <= other
            return Interval(0, other.hi)
        return Interval(other.lo, full.hi)      # other <= sym
    return full
