"""Constraint independence partitioning (KLEE's IndependentSolver, §6).

Path constraints routinely mix unrelated facts: bytes of one packet, the
length of an unrelated header, a loop counter.  Two constraints *interact*
only when they share a free symbol (directly or transitively), so every
query splits into connected components of the constraint/symbol graph --
*independent groups* that can be solved, cached and reused separately.

This is the enabler for incremental solving: a forked state's query is
"previous path constraint + one new branch condition", which partitions into
the same groups as before except for the single group touching the new
branch's symbols.  Every unchanged group is an exact cache hit; only the
changed group is re-solved, over a strictly smaller symbol set than the
whole query.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.solver.expr import Expr

__all__ = ["partition"]


class _UnionFind:
    """Union-find over symbol expressions (path compression + size union)."""

    def __init__(self) -> None:
        self._parent: Dict[Expr, Expr] = {}
        self._size: Dict[Expr, int] = {}

    def find(self, item: Expr) -> Expr:
        parent = self._parent.setdefault(item, item)
        if parent is item:
            self._size.setdefault(item, 1)
            return item
        root = item
        while self._parent[root] is not root:
            root = self._parent[root]
        while self._parent[item] is not root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Expr, b: Expr) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a is root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]


def partition(constraints: Sequence[Expr]) -> List[List[Expr]]:
    """Split ``constraints`` into independent groups.

    Two constraints land in the same group iff they are connected through
    shared symbols.  The result is deterministic: groups are ordered by the
    first constraint that introduced them, and constraints keep their query
    order within each group.  Constraints without any symbol (fully constant
    after simplification) each form their own singleton group.
    """
    uf = _UnionFind()
    constraint_symbols: List[List[Expr]] = []
    for constraint in constraints:
        symbols = sorted(constraint.symbols(),
                         key=lambda s: (s.name or "", s.width))
        constraint_symbols.append(symbols)
        for other in symbols[1:]:
            uf.union(symbols[0], other)

    groups: Dict[object, List[Expr]] = {}
    order: List[object] = []
    for index, (constraint, symbols) in enumerate(
            zip(constraints, constraint_symbols)):
        # Symbol-free constraints get a unique key so they stay singletons.
        key: object = uf.find(symbols[0]) if symbols else ("const", index)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(constraint)
    return [groups[key] for key in order]
