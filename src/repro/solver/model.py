"""Satisfying assignments (models) produced by the solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.solver.expr import Expr, evaluate


@dataclass
class Model:
    """A complete assignment of symbols to unsigned integer values.

    The engine uses models to concretize symbolic inputs when generating test
    cases (the "inputs that take the program to the bug" of the paper).
    """

    assignment: Dict[Expr, int] = field(default_factory=dict)

    def value_of(self, symbol: Expr, default: int = 0) -> int:
        """The assigned value for ``symbol`` (0 for don't-care symbols)."""
        return self.assignment.get(symbol, default)

    def evaluate(self, expr: Expr) -> object:
        """Evaluate an expression under this model (don't-cares default to 0)."""
        assignment = dict(self.assignment)
        for sym in expr.symbols():
            assignment.setdefault(sym, 0)
        return evaluate(expr, assignment)

    def satisfies(self, constraints: Iterable[Expr]) -> bool:
        """Whether every constraint evaluates to True under this model."""
        return all(bool(self.evaluate(c)) for c in constraints)

    def as_bytes(self, symbols: Iterable[Expr]) -> bytes:
        """Concretize a sequence of byte-sized symbols into a bytes object."""
        return bytes(self.value_of(s) & 0xFF for s in symbols)

    def merged_with(self, other: Mapping[Expr, int]) -> "Model":
        merged = dict(self.assignment)
        merged.update(other)
        return Model(merged)

    def restricted_to(self, symbols: Iterable[Expr]) -> "Model":
        """A copy keeping only the assignments of ``symbols``.

        Dropped symbols revert to the implicit don't-care value 0, so the
        restriction of a satisfying model still satisfies any constraint set
        mentioning only ``symbols``.
        """
        keep = set(symbols)
        return Model({s: v for s, v in self.assignment.items() if s in keep})

    def __len__(self) -> int:
        return len(self.assignment)
