"""Feasibility checking and model generation.

The solver answers the only two questions the symbolic execution engine asks:

* ``is_satisfiable(constraints)`` -- may this path be followed?
* ``get_model(constraints)`` -- concrete inputs that follow this path
  (used to emit test cases for bugs, exactly as in the paper).

Algorithm: simplify every constraint, propagate unsigned interval bounds for
each free symbol to a fixpoint, then run a backtracking enumeration over the
(now narrowed) symbol domains.  Candidate values are tried in a
constraint-guided order (domain endpoints, constants appearing in the
constraints, then a sweep).  Queries in the paper's workloads involve
byte-granular symbols (packet bytes, header characters), for which this
terminates quickly; a configurable step budget bounds pathological cases.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import CounterField, MetricsRegistry, bind_counters, counter_fields
from repro.solver.cache import ConstraintCache, CounterexampleCache, QueryKey, query_key
from repro.solver.expr import Expr, Op, evaluate
from repro.solver.independence import partition
from repro.solver.interval import Interval, full_interval, refine_bounds, truth_of
from repro.solver.model import Model
from repro.solver.simplify import conjuncts, simplify


class SolverError(Exception):
    """Raised when the solver exhausts its step budget on a query."""


class SolverResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class SolverStats:
    """Counters exposed for the evaluation harness.

    A view over a :class:`~repro.obs.metrics.MetricsRegistry`: with a
    registry, each field lives in a shared counter (named after the
    :meth:`~Solver.cache_counters` key where one exists, e.g.
    ``solver_queries``) so the status server and trace see live values;
    without one it behaves like the plain dataclass it replaces.
    """

    queries = CounterField("solver_queries")
    sat_queries = CounterField("solver_sat_queries")
    unsat_queries = CounterField("solver_unsat_queries")
    unknown_queries = CounterField("solver_unknown_queries")
    cache_hits = CounterField("solver_cache_hits")
    search_steps = CounterField("solver_search_steps")
    # Independence layer (KLEE's IndependentSolver): every query is split
    # into groups of constraints connected by shared symbols, and each group
    # is resolved separately (see :mod:`repro.solver.independence`).
    independence_groups = CounterField("independence_groups")
    groups_solved = CounterField("groups_solved")
    independence_hits = CounterField("independence_hits")
    # Memoized budget-exhaustion verdicts (re-testing the same hard fork
    # must not re-pay the full search budget).
    unknown_cache_hits = CounterField("unknown_cache_hits")

    def __init__(self, *, registry: Optional[MetricsRegistry] = None,
                 **counts: int):
        fields = counter_fields(type(self))
        unknown = set(counts) - set(fields)
        if unknown:
            raise TypeError("unknown SolverStats field(s): %s"
                            % ", ".join(sorted(unknown)))
        bind_counters(self, fields, registry)
        for name, value in counts.items():
            setattr(self, name, value)

    def __repr__(self) -> str:
        body = ", ".join("%s=%d" % (name, getattr(self, name))
                         for name in counter_fields(type(self)))
        return "SolverStats(%s)" % body

    def snapshot(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "sat_queries": self.sat_queries,
            "unsat_queries": self.unsat_queries,
            "unknown_queries": self.unknown_queries,
            "cache_hits": self.cache_hits,
            "search_steps": self.search_steps,
            "independence_groups": self.independence_groups,
            "groups_solved": self.groups_solved,
            "independence_hits": self.independence_hits,
            "unknown_cache_hits": self.unknown_cache_hits,
        }

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}


@dataclass
class SolverConfig:
    max_search_steps: int = 200_000
    max_candidates_per_symbol: int = 512
    use_constraint_cache: bool = True
    use_counterexample_cache: bool = True
    #: Partition queries into independent constraint groups and solve/cache
    #: each group separately (KLEE's IndependentSolver).
    use_independence: bool = True
    #: Bound on the memoized-UNKNOWN set (FIFO eviction).
    unknown_cache_capacity: int = 4096
    propagation_rounds: int = 8


class Solver:
    """Bitvector constraint solver with caching."""

    def __init__(self, config: Optional[SolverConfig] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.config = config or SolverConfig()
        #: The registry behind every counter this solver (and its caches)
        #: bumps; shared upward by the executor and worker stats so one
        #: worker's accounting snapshots as one flat dict.
        self.metrics = metrics or MetricsRegistry()
        self.stats = SolverStats(registry=self.metrics)
        #: Per-query latency distribution (p50/p99 surfaced in the
        #: coordinator's ``solver_query`` trace event).
        self.query_seconds = self.metrics.histogram("solver_query_seconds")
        self._cache = ConstraintCache(registry=self.metrics)
        self._cex_cache = CounterexampleCache(registry=self.metrics)
        # Recently found models: checking a new query against them is far
        # cheaper than a fresh search and succeeds very often because path
        # constraints grow incrementally.
        self._recent_models: List[Model] = []
        self._recent_model_limit = 12
        # Memoized UNKNOWN verdicts, keyed like the constraint cache (a dict
        # used as an insertion-ordered set, FIFO-bounded).  A query that
        # exhausted the step budget once will exhaust it again: retrying on
        # every re-test of the same fork would pay max_search_steps each time.
        self._unknown: Dict[QueryKey, None] = {}

    # -- public API ---------------------------------------------------------

    def is_satisfiable(self, constraints: Iterable[Expr]) -> bool:
        """True iff the conjunction of ``constraints`` has a model.

        Unknown results (budget exhaustion) are treated as satisfiable so the
        engine errs on the side of exploring a path rather than silently
        pruning it -- the same conservative policy KLEE applies on solver
        timeouts.
        """
        result, _ = self.check(constraints)
        return result != SolverResult.UNSAT

    def get_model(self, constraints: Iterable[Expr]) -> Optional[Model]:
        """A model of the constraints, or None if unsatisfiable/unknown."""
        result, model = self.check(constraints)
        if result == SolverResult.SAT:
            return model
        return None

    def check(self, constraints: Iterable[Expr]) -> Tuple[SolverResult, Optional[Model]]:
        """Check satisfiability and return ``(result, model_or_None)``.

        The query is split into independent constraint groups (shared-symbol
        connected components) and each group is resolved separately against
        the caches, the recent models, and -- only when everything else
        misses -- a fresh search.  Verdicts combine soundly because groups
        share no symbols: all-SAT models merge into one model, any UNSAT
        group refutes the query, and an undecided group leaves it UNKNOWN.
        """
        started = time.monotonic()
        try:
            return self._check(constraints)
        finally:
            self.query_seconds.observe(time.monotonic() - started)

    def _check(self, constraints: Iterable[Expr]) -> Tuple[SolverResult, Optional[Model]]:
        self.stats.queries += 1
        simplified: List[Expr] = []
        for c in constraints:
            s = simplify(c)
            for conj in conjuncts(s):
                if conj.op == Op.BOOL_CONST:
                    if not conj.value:
                        self.stats.unsat_queries += 1
                        return SolverResult.UNSAT, None
                    continue
                simplified.append(conj)

        if not simplified:
            self.stats.sat_queries += 1
            return SolverResult.SAT, Model({})

        if self._unknown and query_key(simplified) in self._unknown:
            self.stats.unknown_queries += 1
            self.stats.unknown_cache_hits += 1
            return SolverResult.UNKNOWN, None

        groups = (partition(simplified) if self.config.use_independence
                  else [simplified])
        if self.config.use_independence:
            self.stats.independence_groups += len(groups)

        # The step budget is per *query*: groups draw from a shared pool so a
        # pathological query costs max_search_steps total, independent of how
        # many groups it splits into.
        budget = [self.config.max_search_steps]
        merged: Dict[Expr, int] = {}
        unknown = False
        memoizable = True
        for group in groups:
            budget_before = budget[0]
            verdict, group_model = self._check_group(group, budget)
            if verdict is False:
                self.stats.unsat_queries += 1
                return SolverResult.UNSAT, None
            if verdict is None:
                # Keep scanning the remaining groups: a cheap UNSAT elsewhere
                # still decides the whole query.
                unknown = True
                # An undecided group that entered without the full budget may
                # have been starved by an earlier group's search; a retry of
                # the identical query could succeed (the earlier group is a
                # cache hit by then), so the query must not be memoized.
                if budget_before < self.config.max_search_steps:
                    memoizable = False
                continue
            if group_model is not None:
                merged.update(group_model.assignment)
        if unknown:
            self.stats.unknown_queries += 1
            if memoizable:
                self._remember_unknown(query_key(simplified))
            return SolverResult.UNKNOWN, None

        model = Model(merged)
        self.stats.sat_queries += 1
        if len(groups) > 1:
            # The combined model frequently satisfies the next query's
            # groups wholesale ("previous path constraint + one branch").
            self._remember_model(model)
        return SolverResult.SAT, model

    def _check_group(self, group: List[Expr],
                     budget: List[int]) -> Tuple[Optional[bool], Optional[Model]]:
        """Resolve one independent group: ``(True/False/None, model)``.

        ``None`` means undecided (budget exhausted now or memoized earlier).
        Group-level re-solving is what makes forked-state queries
        incremental: the unchanged groups of "previous path constraint + one
        new branch" all hit the exact cache, and only the group touching the
        branch's symbols reaches the search.

        Every SAT model cached under or returned for a group key is
        *restricted to the group's own symbols*: reused models (recent
        models, counterexample-cache super/subsets) may carry assignments
        for unrelated symbols, and letting those leak would poison the
        cross-group merge in :meth:`check` (a stale ``x=5`` riding along in
        the y-group's model must not overwrite the x-group's fresh ``x=3``).
        """
        track = self.config.use_independence
        if self.config.use_constraint_cache:
            hit = self._cache.lookup(group)
            if hit is not None:
                self.stats.cache_hits += 1
                if track:
                    self.stats.independence_hits += 1
                return hit[0], hit[1]
        if self.config.use_counterexample_cache:
            hit = self._cex_cache.lookup(group)
            if hit is not None:
                self.stats.cache_hits += 1
                if track:
                    self.stats.independence_hits += 1
                model = (hit[1].restricted_to(self._group_symbols(group))
                         if hit[1] is not None else None)
                if self.config.use_constraint_cache:
                    self._cache.insert(group, hit[0], model)
                return hit[0], model

        key = query_key(group)
        if key in self._unknown:
            self.stats.unknown_cache_hits += 1
            return None, None

        # Fast path: one of the recently found models may already satisfy
        # the group (models of supersets solved moments ago usually do).
        for recent in reversed(self._recent_models):
            if recent.satisfies(group):
                self.stats.cache_hits += 1
                if track:
                    self.stats.independence_hits += 1
                model = recent.restricted_to(self._group_symbols(group))
                if self.config.use_constraint_cache:
                    self._cache.insert(group, True, model)
                if self.config.use_counterexample_cache:
                    self._cex_cache.insert(group, True, model)
                return True, model

        self.stats.groups_solved += 1
        budget_at_entry = budget[0]
        try:
            model = self._solve(group, budget)
        except SolverError:
            # Memoize only when this group saw the full per-query budget: a
            # group starved by an earlier group's search might be perfectly
            # solvable on its own, and must not be branded UNKNOWN forever.
            if budget_at_entry >= self.config.max_search_steps:
                self._remember_unknown(key)
            return None, None

        is_sat = model is not None
        if is_sat:
            self._remember_model(model)
        if self.config.use_constraint_cache:
            self._cache.insert(group, is_sat, model)
        if self.config.use_counterexample_cache:
            self._cex_cache.insert(group, is_sat, model)
        return is_sat, model

    @staticmethod
    def _group_symbols(group: Sequence[Expr]) -> set:
        out: set = set()
        for constraint in group:
            out.update(constraint.symbols())
        return out

    def _remember_model(self, model: Model) -> None:
        self._recent_models.append(model)
        if len(self._recent_models) > self._recent_model_limit:
            self._recent_models.pop(0)

    def _remember_unknown(self, key: QueryKey) -> None:
        if self.config.unknown_cache_capacity <= 0:
            return
        while len(self._unknown) >= self.config.unknown_cache_capacity:
            self._unknown.pop(next(iter(self._unknown)))
        self._unknown[key] = None

    def reset_caches(self) -> None:
        """Drop all cached results (used when simulating job migration)."""
        self._cache.clear()
        self._cex_cache.clear()
        self._recent_models.clear()
        self._unknown.clear()

    @property
    def cache_stats(self) -> Dict[str, float]:
        return {
            "constraint_cache_entries": len(self._cache),
            "constraint_cache_hit_rate": self._cache.stats.hit_rate,
            "cex_cache_entries": len(self._cex_cache),
            "cex_cache_hit_rate": self._cex_cache.stats.hit_rate,
        }

    def cache_counters(self) -> Dict[str, int]:
        """Raw per-solver counters, aggregatable across workers (see
        :func:`repro.solver.cache.aggregate_cache_counters`): cache hit/miss
        counts plus the solver/independence counters of :class:`SolverStats`.
        """
        return {
            "constraint_cache_hits": self._cache.stats.hits,
            "constraint_cache_misses": self._cache.stats.misses,
            "cex_cache_hits": self._cex_cache.stats.hits,
            "cex_cache_misses": self._cex_cache.stats.misses,
            "solver_queries": self.stats.queries,
            "solver_search_steps": self.stats.search_steps,
            "independence_groups": self.stats.independence_groups,
            "groups_solved": self.stats.groups_solved,
            "independence_hits": self.stats.independence_hits,
            "unknown_cache_hits": self.stats.unknown_cache_hits,
        }

    # -- internals ----------------------------------------------------------

    def _solve(self, constraints: Sequence[Expr],
               budget: Optional[List[int]] = None) -> Optional[Model]:
        # Cheap syntactic contradiction check: a constraint and its negation
        # in the same set (very common right after a fork re-tests the same
        # condition) is unsatisfiable without any search.
        constraint_set = set(constraints)
        for c in constraints:
            negated = simplify(Expr(Op.BOOL_NOT, (c,), sort=c.sort))
            if negated in constraint_set:
                return None

        symbols = sorted(
            {s for c in constraints for s in c.symbols()},
            key=lambda s: (s.name or "", s.width),
        )
        bounds: Dict[Expr, Interval] = {s: full_interval(s.width) for s in symbols}

        # Bounds propagation to a fixpoint (bounded number of rounds).
        for _ in range(self.config.propagation_rounds):
            changed = False
            for c in constraints:
                verdict = truth_of(c, bounds)
                if verdict is False:
                    return None
                bounds, c_changed = refine_bounds(c, bounds)
                changed = changed or c_changed
            for iv in bounds.values():
                if iv.is_empty:
                    return None
            if not changed:
                break

        # If intervals already prove every constraint, any in-bounds point works.
        if all(truth_of(c, bounds) is True for c in constraints):
            return Model({s: bounds[s].lo for s in symbols})

        constants = self._interesting_constants(constraints)
        order = self._variable_order(symbols, constraints)

        # Index constraints by the symbols they mention so the backtracking
        # search only re-checks constraints affected by the latest assignment.
        constraint_symbols: Dict[Expr, frozenset] = {
            c: frozenset(c.symbols()) for c in constraints
        }
        affected: Dict[Expr, List[Expr]] = {s: [] for s in symbols}
        for c, syms in constraint_symbols.items():
            for s in syms:
                affected[s].append(c)

        assignment: Dict[Expr, int] = {}
        if budget is None:
            budget = [self.config.max_search_steps]
        if self._search(order, 0, assignment, bounds, constraints,
                        constraint_symbols, affected, constants, budget):
            return Model(dict(assignment))
        return None

    def _variable_order(self, symbols: Sequence[Expr],
                        constraints: Sequence[Expr]) -> List[Expr]:
        """Most-constrained-first variable ordering."""
        counts = {s: 0 for s in symbols}
        for c in constraints:
            for s in c.symbols():
                counts[s] += 1
        return sorted(symbols, key=lambda s: (-counts[s], s.name or ""))

    def _interesting_constants(self, constraints: Sequence[Expr]) -> List[int]:
        values: set[int] = set()
        stack = list(constraints)
        while stack:
            node = stack.pop()
            if node.op == Op.BV_CONST:
                values.add(node.value)
                values.add(node.value + 1)
                if node.value > 0:
                    values.add(node.value - 1)
            stack.extend(node.args)
        return sorted(values)

    def _candidates(self, symbol: Expr, bounds: Dict[Expr, Interval],
                    constants: Sequence[int]) -> List[int]:
        iv = bounds.get(symbol, full_interval(symbol.width))
        if iv.is_empty:
            return []
        out: List[int] = []
        seen: set[int] = set()

        def push(v: int) -> None:
            if iv.lo <= v <= iv.hi and v not in seen:
                seen.add(v)
                out.append(v)

        push(iv.lo)
        push(iv.hi)
        for c in constants:
            push(c)
        # Sweep the remaining domain (bounded).
        limit = self.config.max_candidates_per_symbol
        step = max(1, iv.size() // max(1, limit - len(out)))
        v = iv.lo
        while v <= iv.hi and len(out) < limit:
            push(v)
            v += step
        return out

    def _search(self, order: Sequence[Expr], index: int,
                assignment: Dict[Expr, int], bounds: Dict[Expr, Interval],
                constraints: Sequence[Expr],
                constraint_symbols: Dict[Expr, frozenset],
                affected: Dict[Expr, List[Expr]],
                constants: Sequence[int],
                budget: List[int]) -> bool:
        if index == len(order):
            return all(
                self._holds(c, assignment, constraint_symbols[c]) is True
                for c in constraints)

        symbol = order[index]
        to_check = affected.get(symbol, constraints)
        for value in self._candidates(symbol, bounds, constants):
            budget[0] -= 1
            if budget[0] <= 0:
                raise SolverError("solver step budget exhausted")
            self.stats.search_steps += 1
            assignment[symbol] = value
            # Only constraints mentioning the newly assigned symbol can have
            # changed status; everything else was already not-violated.
            consistent = all(
                self._holds(c, assignment, constraint_symbols[c]) is not False
                for c in to_check)
            if consistent:
                if self._search(order, index + 1, assignment, bounds,
                                constraints, constraint_symbols, affected,
                                constants, budget):
                    return True
            del assignment[symbol]
        return False

    def _holds(self, constraint: Expr, assignment: Dict[Expr, int],
               symbols: frozenset) -> Optional[bool]:
        """Truth of a constraint under a partial assignment (None if undecided)."""
        missing = [s for s in symbols if s not in assignment]
        if not missing:
            return bool(evaluate(constraint, assignment))
        bounds = {s: Interval(assignment[s], assignment[s])
                  for s in symbols if s in assignment}
        for s in missing:
            bounds[s] = full_interval(s.width)
        return truth_of(constraint, bounds)
