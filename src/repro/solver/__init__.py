"""Constraint-solver substrate used by the symbolic execution engine.

The original Cloud9 delegates constraint solving to STP over bitvector
formulas.  This package provides a from-scratch replacement that is sufficient
for the workloads the paper evaluates (byte-granular symbolic inputs such as
network packets, format strings and HTTP headers):

* :mod:`repro.solver.expr` -- a small bitvector/boolean expression language
  with structural hashing.
* :mod:`repro.solver.simplify` -- canonicalization and constant folding.
* :mod:`repro.solver.interval` -- an unsigned-interval abstract domain used
  for fast infeasibility checks and for pruning the search.
* :mod:`repro.solver.solver` -- a feasibility checker and model generator
  based on bounds propagation plus backtracking enumeration.
* :mod:`repro.solver.cache` -- constraint and counterexample caches mirroring
  the caching architecture described in section 6 of the paper.
"""

from repro.solver.expr import (
    BoolSort,
    BvSort,
    Expr,
    BoolConst,
    BvConst,
    BvSymbol,
    Op,
    TRUE,
    FALSE,
    bv_const,
    bv_symbol,
    add,
    sub,
    mul,
    udiv,
    urem,
    band,
    bor,
    bxor,
    bnot,
    shl,
    lshr,
    concat,
    extract,
    zext,
    eq,
    ne,
    ult,
    ule,
    ugt,
    uge,
    slt,
    sle,
    sgt,
    sge,
    logical_and,
    logical_or,
    logical_not,
    implies,
    ite,
)
from repro.solver.model import Model
from repro.solver.simplify import simplify
from repro.solver.independence import partition
from repro.solver.solver import Solver, SolverConfig, SolverResult, SolverStats
from repro.solver.cache import ConstraintCache, CounterexampleCache

__all__ = [
    "BoolSort",
    "BvSort",
    "Expr",
    "BoolConst",
    "BvConst",
    "BvSymbol",
    "Op",
    "TRUE",
    "FALSE",
    "bv_const",
    "bv_symbol",
    "add",
    "sub",
    "mul",
    "udiv",
    "urem",
    "band",
    "bor",
    "bxor",
    "bnot",
    "shl",
    "lshr",
    "concat",
    "extract",
    "zext",
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
    "logical_and",
    "logical_or",
    "logical_not",
    "implies",
    "ite",
    "Model",
    "simplify",
    "partition",
    "Solver",
    "SolverConfig",
    "SolverResult",
    "SolverStats",
    "ConstraintCache",
    "CounterexampleCache",
]
