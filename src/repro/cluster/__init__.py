"""Cluster-parallel symbolic execution (the paper's core contribution, §3).

The package reproduces Cloud9's dynamic partitioning of the symbolic
execution tree across shared-nothing workers:

* :mod:`repro.cluster.jobs` -- jobs encoded as root-to-node paths, aggregated
  into prefix-sharing job trees for transfer.
* :mod:`repro.cluster.worker` -- worker nodes: local subtree, exploration
  frontier (candidate nodes), job export/import, lazy replay of virtual
  nodes, fence bookkeeping.
* :mod:`repro.cluster.replay` -- path replay and broken-replay detection.
* :mod:`repro.cluster.load_balancer` -- the queue-length-based balancing
  policy (mean +/- delta*sigma classification and pairing).
* :mod:`repro.cluster.overlay` -- the global coverage bit-vector overlay.
* :mod:`repro.cluster.transport` -- the simulated shared-nothing network.
* :mod:`repro.cluster.core` -- the shared :class:`CoordinatorCore` round
  engine (the one implementation of the §3 protocol, under every backend).
* :mod:`repro.cluster.coordinator` -- the in-process backend: member
  construction over the simulated transport and the public
  :class:`Cloud9Cluster` front end.
* :mod:`repro.cluster.threaded` -- the same cluster with per-round worker
  steps on an OS thread pool (wall-clock parallelism on one machine).
* :mod:`repro.cluster.static_partition` -- the static-partitioning baseline
  the paper argues against (§2, §8), used by the ablation benchmarks.
* :mod:`repro.cluster.stats` -- instruction/transfer/coverage timelines used
  by the evaluation harness.
* :mod:`repro.cluster.ledger` -- the coordinator-side frontier ledger used
  to recover a dead worker's territory (§2.3 failure model).
* :mod:`repro.cluster.checkpoint` -- resumable run snapshots (frontier,
  coverage, counters, bugs/test cases, strategy seeds) behind
  ``run(resume_from=...)``.
* :mod:`repro.cluster.autoscale` -- the autoscaling policy engine driving
  elastic membership from queue-length band/spread and round wall time.
"""

from repro.cluster.autoscale import AutoscalePolicy, Autoscaler
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.coordinator import Cloud9Cluster, ClusterConfig, ClusterResult
from repro.cluster.core import CoordinatorCore, Member, MemberFinal
from repro.cluster.jobs import Job, JobTree
from repro.cluster.ledger import FrontierLedger, RecoveryJob
from repro.cluster.load_balancer import LoadBalancer, TransferCommand
from repro.cluster.overlay import CoverageOverlay
from repro.cluster.static_partition import StaticPartitionCluster, StaticPartitionConfig
from repro.cluster.stats import ClusterTimeline, WorkerStats
from repro.cluster.threaded import ThreadedCloud9Cluster
from repro.cluster.worker import Worker

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "Cloud9Cluster",
    "ThreadedCloud9Cluster",
    "ClusterCheckpoint",
    "ClusterConfig",
    "ClusterResult",
    "CoordinatorCore",
    "Member",
    "MemberFinal",
    "FrontierLedger",
    "RecoveryJob",
    "Job",
    "JobTree",
    "LoadBalancer",
    "TransferCommand",
    "CoverageOverlay",
    "StaticPartitionCluster",
    "StaticPartitionConfig",
    "ClusterTimeline",
    "WorkerStats",
    "Worker",
]
