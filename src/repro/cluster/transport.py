"""Simulated shared-nothing messaging between workers and the load balancer.

The prototype in the paper runs on TCP between EC2 instances.  Here the
transport is an in-process message fabric with per-destination mailboxes and
(optional) one-round delivery latency, which keeps cluster runs deterministic
and lets the benchmarks express time as virtual rounds.  The message types
mirror the protocol of §3: worker status updates, load-balancer transfer
requests, and direct worker-to-worker job transfers (the balancer stays off
the critical path).
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple


LOAD_BALANCER_ID = 0


class MessageKind(enum.Enum):
    STATUS_UPDATE = "status_update"          # worker -> LB: queue length + coverage
    COVERAGE_UPDATE = "coverage_update"      # LB -> worker: merged global coverage
    TRANSFER_REQUEST = "transfer_request"    # LB -> source worker
    JOB_TRANSFER = "job_transfer"            # worker -> worker: encoded job tree


@dataclass
class Message:
    kind: MessageKind
    sender: int
    recipient: int
    payload: Dict[str, object] = field(default_factory=dict)


class Transport:
    """Per-recipient FIFO mailboxes with a configurable delivery delay."""

    def __init__(self, delivery_delay_rounds: int = 0):
        self.delivery_delay_rounds = delivery_delay_rounds
        self._mailboxes: Dict[int, Deque[Message]] = defaultdict(deque)
        self._in_flight: List[Tuple[int, Message]] = []
        self._round = 0
        self.messages_sent = 0
        self.bytes_sent = 0

    def send(self, message: Message, size_hint: int = 1) -> None:
        self.messages_sent += 1
        self.bytes_sent += size_hint
        if self.delivery_delay_rounds <= 0:
            self._mailboxes[message.recipient].append(message)
        else:
            deliver_at = self._round + self.delivery_delay_rounds
            self._in_flight.append((deliver_at, message))

    def advance_round(self) -> None:
        """Move virtual time forward, delivering due in-flight messages."""
        self._round += 1
        still_flying: List[Tuple[int, Message]] = []
        for deliver_at, message in self._in_flight:
            if deliver_at <= self._round:
                self._mailboxes[message.recipient].append(message)
            else:
                still_flying.append((deliver_at, message))
        self._in_flight = still_flying

    def drop_messages(self, predicate) -> List[Message]:
        """Remove and return every pending message matching ``predicate``.

        Covers delivered mailboxes and in-flight messages alike.  Used when a
        worker leaves the cluster: transfers addressed to it are cancelled
        and any job trees already on the wire are re-routed by the caller.
        """
        dropped: List[Message] = []
        for recipient, mailbox in self._mailboxes.items():
            kept: Deque[Message] = deque()
            for message in mailbox:
                (dropped if predicate(message) else kept).append(message)
            self._mailboxes[recipient] = kept
        still_flying: List[Tuple[int, Message]] = []
        for deliver_at, message in self._in_flight:
            if predicate(message):
                dropped.append(message)
            else:
                still_flying.append((deliver_at, message))
        self._in_flight = still_flying
        return dropped

    def receive_all(self, recipient: int) -> List[Message]:
        mailbox = self._mailboxes[recipient]
        out = list(mailbox)
        mailbox.clear()
        return out

    def pending_count(self, recipient: Optional[int] = None) -> int:
        if recipient is not None:
            return len(self._mailboxes[recipient])
        return sum(len(box) for box in self._mailboxes.values()) + len(self._in_flight)

    def pending_work_count(self) -> int:
        """Pending messages that carry (or will trigger) exploration work.

        Status and coverage updates flow continuously and must not keep the
        cluster alive; only transfer requests and job transfers do.
        """
        work_kinds = (MessageKind.TRANSFER_REQUEST, MessageKind.JOB_TRANSFER)
        pending = sum(
            1
            for box in self._mailboxes.values()
            for message in box
            if message.kind in work_kinds
        )
        pending += sum(1 for _, m in self._in_flight if m.kind in work_kinds)
        return pending

    @property
    def idle(self) -> bool:
        return self.pending_count() == 0

    @property
    def work_idle(self) -> bool:
        return self.pending_work_count() == 0
