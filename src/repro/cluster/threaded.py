"""A thread-backed Cloud9 cluster for wall-clock parallelism on one machine.

:class:`~repro.cluster.coordinator.Cloud9Cluster` advances workers
sequentially within each virtual-time round, which makes runs deterministic
but leaves real cores idle.  :class:`ThreadedCloud9Cluster` keeps the exact
same protocol -- rounds, status updates, load balancing, job transfers all
happen on the coordinator thread between rounds -- and only fans the
*exploration phase* of each round out to a thread pool.

This is safe because workers are shared-nothing by construction: each owns
its private executor, solver, strategy and tree, and all inter-worker
communication goes through :class:`~repro.cluster.transport.Transport`
messages that are sent and delivered outside the exploration phase.  The
result type, timeline and invariants are identical to the sequential
cluster, so the two are interchangeable behind the ``"cluster"`` /
``"threaded"`` backends of :mod:`repro.api.runner`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.cluster.coordinator import Cloud9Cluster

__all__ = ["ThreadedCloud9Cluster"]


class ThreadedCloud9Cluster(Cloud9Cluster):
    """Cloud9 cluster whose per-round worker steps run on OS threads."""

    backend_name = "threaded"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.num_workers,
                thread_name_prefix="cloud9-worker")
        return self._pool

    def _explore_round(self) -> None:
        busy = [w for w in self.workers if w.has_work]
        if len(busy) <= 1:
            # No parallelism to exploit; skip the pool round-trip.
            for worker in busy:
                worker.explore(self.config.instructions_per_round)
            return
        pool = self._ensure_pool()
        budget = self.config.instructions_per_round
        futures = [pool.submit(worker.explore, budget) for worker in busy]
        for future in futures:
            future.result()

    def _teardown_run(self) -> None:
        super()._teardown_run()
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
