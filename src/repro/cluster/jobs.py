"""Exploration jobs and their path encoding.

Section 3.2: a job can be sent either by serializing the program state or by
sending "the path from the tree root to the node", relying on the destination
to replay that path.  Cloud9 chooses the path encoding because commodity
clusters have abundant CPU but meager bisection bandwidth.  As an
optimization, "jobs are not encoded separately, but rather the corresponding
paths are aggregated into a job tree and sent as such", exploiting common
path prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Job:
    """One unit of exploration work: a path from the root to a candidate node."""

    path: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.path)

    def __repr__(self) -> str:
        return "Job(%s)" % "/".join(str(i) for i in self.path)


class JobTree:
    """A trie of job paths sharing common prefixes (the transfer encoding)."""

    def __init__(self):
        self._children: Dict[int, "JobTree"] = {}
        self._terminal = False

    # -- construction -----------------------------------------------------------

    def insert(self, path: Sequence[int]) -> None:
        node = self
        for index in path:
            node = node._children.setdefault(index, JobTree())
        node._terminal = True

    @classmethod
    def from_jobs(cls, jobs: Iterable[Job]) -> "JobTree":
        tree = cls()
        for job in jobs:
            tree.insert(job.path)
        return tree

    # -- extraction --------------------------------------------------------------

    def jobs(self) -> List[Job]:
        """All job paths contained in the tree, in deterministic order."""
        out: List[Job] = []

        def walk(node: "JobTree", prefix: Tuple[int, ...]) -> None:
            if node._terminal:
                out.append(Job(prefix))
            for index in sorted(node._children):
                walk(node._children[index], prefix + (index,))

        walk(self, ())
        return out

    def __len__(self) -> int:
        return len(self.jobs())

    # -- wire format ---------------------------------------------------------------

    def encode(self) -> List[object]:
        """A compact nested-list encoding: [terminal, [[index, subtree], ...]].

        The encoded size is proportional to the number of *trie nodes*, i.e.
        shared prefixes are transferred once.  :meth:`encoded_size` measures
        it, which the evaluation uses to compare against per-path encoding.
        """
        return [
            1 if self._terminal else 0,
            [[index, child.encode()] for index, child in sorted(self._children.items())],
        ]

    @classmethod
    def decode(cls, payload: Sequence[object]) -> "JobTree":
        tree = cls()
        terminal, children = payload
        tree._terminal = bool(terminal)
        for index, encoded_child in children:
            tree._children[int(index)] = cls.decode(encoded_child)
        return tree

    def encoded_size(self) -> int:
        """Number of trie edges (a proxy for bytes on the wire)."""
        return sum(1 + child.encoded_size() for child in self._children.values())

    @staticmethod
    def naive_size(jobs: Iterable[Job]) -> int:
        """Wire size if every path were sent separately (no prefix sharing)."""
        return sum(len(job.path) for job in jobs)
