"""The one coordinator: a shared round engine under every cluster backend.

The paper's §3 worker/coordinator protocol used to be implemented twice --
once over in-process workers (:mod:`repro.cluster.coordinator`, also driving
the threaded backend) and once over worker processes / TCP agents
(:mod:`repro.distrib.cluster`) -- and the copies drifted: checkpoint cadence,
trace keys and status payloads each had to be re-unified by hand at least
once.  :class:`CoordinatorCore` now owns the protocol end to end:

* the round loop -- hooks, autoscaler, drain advancement, exploration,
  status collection into the :class:`~repro.cluster.load_balancer.LoadBalancer`,
  balancing decisions, per-round recording;
* elastic membership (:meth:`add_worker` / :meth:`remove_worker`, incremental
  drain bookkeeping) and the membership trace events;
* checkpoint cadence and ``resume_from=`` carried-over counters;
* termination (coverage / path / bug goals, exhaustion, budgets);
* result finalization, including bug dedup, coverage/test-case merging and
  solver-cache aggregation;
* tracing (``run_started`` ... ``run_finished``), the live
  :class:`~repro.obs.status.StatusServer` and the round wall-time /
  solver-latency histograms.

Backends implement a small set of hooks against the :class:`Member`
protocol -- an in-process :class:`~repro.cluster.worker.Worker` or a
transport-backed ``_WorkerHandle`` -- plus backend plumbing (message
delivery, process spawn, frontier-ledger recovery).  Cross-backend drift in
the protocol itself is impossible by construction: there is exactly one
``_run``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Protocol, Sequence,
                    Set, Tuple, Union)

from repro.cluster.autoscale import AutoscalePolicy, Autoscaler
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.load_balancer import LoadBalancer, TransferCommand
from repro.cluster.stats import ClusterTimeline, RoundSnapshot, TransferCost, WorkerStats
from repro.engine.errors import BugReport
from repro.engine.limits import ExplorationLimits, effective_limits
from repro.engine.test_case import TestCase
from repro.obs import schema as trace_schema
from repro.obs.metrics import Histogram
from repro.obs.status import StatusServer
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

from repro.solver.cache import aggregate_cache_counters

__all__ = ["Member", "MemberFailure", "MemberFinal", "RoundWork",
           "CoordinatorConfig", "CoordinatorCore", "ClusterResult",
           "backend_hook", "_dedupe_bugs"]

_Hook = Callable[..., Any]


def backend_hook(method: _Hook) -> _Hook:
    """Mark a method as part of the backend hook surface.

    The core owns the round protocol; backends may only override methods
    carrying this marker.  The ``CORE`` checker family
    (:mod:`repro.analysis.hooks`) enforces both directions statically:
    a concrete backend must implement every abstract hook, and must never
    shadow an un-marked (core-owned) method.
    """
    setattr(method, "__backend_hook__", True)
    return method


class Member(Protocol):
    """What the round engine needs to know about one cluster member.

    Satisfied structurally by the in-process ``Worker`` and the
    transport-backed ``_WorkerHandle``; everything richer (explore, drain,
    finalize) goes through the backend hooks, which know their concrete
    member type.
    """

    worker_id: int

    @property
    def queue_length(self) -> int: ...


class MemberFailure(Exception):
    """A member died or misbehaved mid-protocol.

    Backends that can lose members (the process/tcp backend) raise their
    subclass from transport errors; the in-process backends never do.
    """

    def __init__(self, member: Any, reason: str):
        super().__init__(reason)
        self.member = member
        self.reason = reason


@dataclass
class MemberFinal:
    """One member's final accounting, backend-neutral.

    Produced by :meth:`CoordinatorCore._collect_finals` -- from live worker
    objects in process, or from ``FinalReply`` messages over a transport --
    and consumed by the shared :meth:`CoordinatorCore._finalize`.
    """

    worker_id: int
    paths_completed: int
    useful_instructions: int
    replay_instructions: int
    covered_lines: Set[int]
    bugs: List[BugReport]
    test_cases: List[TestCase]
    stats: WorkerStats
    cache_counters: Dict[str, int]
    #: The member solver's query-latency histogram (``None`` when the
    #: backend predates the field, e.g. a checkpointed departed final).
    latency: Optional[Histogram] = None


@dataclass
class RoundWork:
    """What one round of exploration produced, backend-neutral."""

    useful_delta: int = 0
    replay_delta: int = 0
    states_transferred: int = 0
    #: Per-worker ``{"useful": .., "replay": .., "queue": ..}`` for the
    #: ``round_completed`` trace event.
    detail: Dict[int, Dict[str, int]] = field(default_factory=dict)


class CoordinatorConfig(Protocol):
    """The config surface the shared round engine reads.

    ``ClusterConfig`` and ``ProcessClusterConfig`` both satisfy it; each
    adds backend-specific knobs (transport delay vs. reply timeouts) that
    only their own hooks consume.
    """

    num_workers: int
    status_update_interval: int
    balance_interval: int
    load_balancing_enabled: bool
    disable_balancing_after_round: Optional[int]
    max_rounds: int
    checkpoint_every: Optional[int]
    checkpoint_path: Optional[str]
    autoscale: Optional[AutoscalePolicy]
    drain_chunk: int
    status_listen: Optional[str]


@dataclass
class ClusterResult:
    """Summary and timeline of one cluster run."""

    num_workers: int
    rounds_executed: int = 0
    exhausted: bool = False
    goal_reached: bool = False
    paths_completed: int = 0
    total_useful_instructions: int = 0
    total_replay_instructions: int = 0
    coverage_percent: float = 0.0
    covered_lines: Set[int] = field(default_factory=set)
    line_count: int = 0
    bugs: List[BugReport] = field(default_factory=list)
    test_cases: List[TestCase] = field(default_factory=list)
    worker_stats: Dict[int, WorkerStats] = field(default_factory=dict)
    timeline: ClusterTimeline = field(default_factory=ClusterTimeline)
    total_states_transferred: int = 0
    transfer_commands: int = 0
    messages_sent: int = 0
    # Real elapsed seconds of the run (rounds are virtual time, but the
    # threaded cluster's wall-clock speedup is only visible here).
    wall_time: float = 0.0
    # Wire cost of the path-encoded job transfers (prefix-sharing savings).
    transfer_cost: TransferCost = field(default_factory=TransferCost)
    # Aggregated solver-cache hit/miss counters across all worker solvers.
    cache_stats: Dict[str, float] = field(default_factory=dict)
    # Fault tolerance and elasticity (§2.3: workers may die, join and leave).
    worker_failures: int = 0
    jobs_recovered: int = 0
    respawns: int = 0
    # Last-known counters of workers that died mid-run (their final results
    # were lost; survivors re-explored their territory, so these are kept
    # separate from the totals to avoid double counting).
    failed_worker_stats: Dict[int, WorkerStats] = field(default_factory=dict)
    # Round index of the checkpoint this run resumed from (None = fresh run).
    resumed_from_round: Optional[int] = None
    # Elastic-membership accounting: workers that joined/left (voluntarily
    # or via autoscaling) and the largest live membership the run reached.
    # The per-round trace is ``timeline`` (RoundSnapshot.num_workers).
    workers_added: int = 0
    workers_removed: int = 0
    peak_workers: int = 0
    # TCP-transport liveness accounting (repro.net): worker deaths detected
    # by heartbeat silence specifically, and agents admitted into an
    # already-running cluster (respawn replacements + elastic joins).
    heartbeat_misses: int = 0
    agents_reconnected: int = 0

    @property
    def useful_instructions_per_worker(self) -> float:
        if not self.num_workers:
            return 0.0
        return self.total_useful_instructions / self.num_workers

    @property
    def replay_overhead(self) -> float:
        total = self.total_useful_instructions + self.total_replay_instructions
        return self.total_replay_instructions / total if total else 0.0

    def rounds_to_coverage(self, target_percent: float) -> Optional[int]:
        return self.timeline.rounds_to_coverage(target_percent)

    def bug_summaries(self) -> List[str]:
        return sorted({b.summary() for b in self.bugs})


def _dedupe_bugs(bugs: Sequence[BugReport]) -> List[BugReport]:
    seen: Set[Tuple[object, ...]] = set()
    unique: List[BugReport] = []
    for bug in bugs:
        key = (bug.kind, bug.message, bug.function, bug.line)
        if key not in seen:
            seen.add(key)
            unique.append(bug)
    return unique


class CoordinatorCore:
    """The §3 round protocol, shared by every backend.

    Subclasses provide member construction and the backend hooks (grouped
    at the bottom of the class); the round loop, membership bookkeeping,
    checkpoint cadence, termination and finalization live here and only
    here.
    """

    #: Name this backend reports in trace/status events; every subclass
    #: defines it (the process backend as a transport-dependent property).
    backend_name: str

    #: The balancer is created by the subclass constructor before any
    #: engine method runs.
    load_balancer: LoadBalancer

    def __init__(self, config: CoordinatorConfig):
        self.config = config
        #: Optional callback invoked at the start of every round as
        #: ``round_hook(round_index, cluster)`` -- the supported place to
        #: exercise elastic membership (add/remove workers) mid-run.
        self.round_hook: Optional[Callable[[int, Any], None]] = None
        #: The Autoscaler driving the current run (None unless
        #: ``config.autoscale`` is set; fresh per ``run()`` call).
        self.autoscaler: Optional[Autoscaler] = None
        #: Most recent checkpoint written by this run (None until the first).
        self.last_checkpoint: Optional[ClusterCheckpoint] = None
        #: Structured event trace of the current run (:mod:`repro.obs.trace`);
        #: the no-op tracer outside a traced ``run()``.
        self.tracer: Union[Tracer, NullTracer] = NULL_TRACER
        #: Live-status endpoint of the current run (None unless
        #: ``config.status_listen`` is set; fresh per ``run()``).
        self.status_server: Optional[StatusServer] = None
        # Members retiring incrementally: no longer exploring or balanced,
        # handing over drain_chunk jobs per round until empty.
        self._draining: List[Any] = []
        # Elastic-membership accounting (reported on ClusterResult).
        self._workers_added = 0
        self._workers_removed = 0
        self._peak_workers = 0
        # Carried-over counters when resuming from a checkpoint.
        self._base_paths = 0
        self._base_useful = 0
        self._base_replay = 0
        self._base_wall = 0.0
        self._base_covered: Set[int] = set()
        self._base_bugs: List[BugReport] = []
        self._base_tests: List[TestCase] = []
        self._resumed_from_round: Optional[int] = None
        self._run_started = 0.0
        # Round wall-time distribution of the current run (p50/p99 on
        # ``run_finished``); fresh per ``run()``.
        self._round_seconds = Histogram("round_seconds")
        # Solver-query latency merged across members in _finalize (p50/p99
        # on the final ``solver_query`` event).
        self._member_latency: Optional[Histogram] = None

    # -- shared membership surface -------------------------------------------------------

    @property
    def live_worker_ids(self) -> List[int]:
        """Ids of the live (exploring) members, excluding draining ones."""
        return [m.worker_id for m in self._live_members()]

    @property
    def status_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the live-status endpoint, if one is running."""
        return self.status_server.address if self.status_server else None

    def add_worker(self) -> int:
        """Join a fresh, empty member; the load balancer will feed it.

        Returns the new worker id.  Callable between rounds (e.g. from
        ``round_hook``).
        """
        member = self._admit_member()
        self._workers_added += 1
        self._peak_workers = max(self._peak_workers, len(self._live_members()))
        self.tracer.emit(trace_schema.WORKER_JOINED, worker=member.worker_id,
                         workers=len(self._live_members()))
        return member.worker_id

    def remove_worker(self, worker_id: int) -> int:
        """Start retiring a member, handing its frontier over incrementally.

        The member immediately stops exploring and leaves the load
        balancer's view, but its frontier drains in ``drain_chunk``-sized
        job exports across the following rounds (it stays a *draining*
        member until empty), so removal never stalls a round.  Its results
        (paths, bugs, coverage, stats) still count toward the final
        :class:`ClusterResult`.  Returns the number of jobs handed over in
        the first drain chunk.
        """
        live = self._live_members()
        member = next((m for m in live if m.worker_id == worker_id), None)
        if member is None:
            raise ValueError("no live worker with id %d" % worker_id)
        if len(live) == 1:
            raise ValueError("cannot remove the last worker")
        self._detach_member(member)
        self._draining.append(member)
        self._workers_removed += 1
        self.tracer.emit(trace_schema.WORKER_DRAINING, worker=worker_id,
                         queue=member.queue_length)
        self._purge_departing(member)
        return self._drain_member(member)

    def _advance_drains(self) -> None:
        for member in list(self._draining):
            self._drain_member(member)

    def _note_member_left(self, worker_id: int) -> None:
        """Trace a fully-drained member's departure (backends call this
        when they retire a draining member)."""
        self.tracer.emit(trace_schema.WORKER_LEFT, worker=worker_id,
                         workers=len(self._live_members()))

    # -- shared round-loop helpers -------------------------------------------------------

    def _balancing_active(self, round_index: int) -> bool:
        if not self.config.load_balancing_enabled:
            return False
        cutoff = self.config.disable_balancing_after_round
        if cutoff is not None and round_index >= cutoff:
            return False
        return True

    def _total_candidates(self) -> int:
        # Draining members' outstanding jobs count: they are still part of
        # the global frontier (survivors receive them chunk by chunk).
        total = sum(m.queue_length for m in self._live_members())
        return total + sum(m.queue_length for m in self._draining)

    # -- the round protocol --------------------------------------------------------------

    def run(self, max_rounds: Optional[int] = None,
            target_coverage_percent: Optional[float] = None,
            max_paths: Optional[int] = None,
            stop_on_first_bug: bool = False,
            max_wall_time: Optional[float] = None,
            max_instructions: Optional[int] = None,
            limits: Optional[ExplorationLimits] = None,
            resume_from: Optional[Union[ClusterCheckpoint, str]] = None
            ) -> ClusterResult:
        """Run rounds until exhaustion, a goal, or a budget is spent.

        Limits may be given as explicit kwargs or bundled in an
        :class:`~repro.engine.limits.ExplorationLimits`; explicit kwargs win.
        ``limits.coverage_target`` maps to ``target_coverage_percent`` and
        ``limits.max_steps`` does not apply to cluster runs.

        ``resume_from`` (a :class:`~repro.cluster.checkpoint.ClusterCheckpoint`
        or a path to a saved one) restores a checkpointed frontier, coverage
        and counters instead of starting from the seed job.

        ``limits.trace_path`` turns on structured event tracing for the run,
        and ``config.status_listen`` serves a live status snapshot
        (:mod:`repro.obs`) on every backend; both are torn down when the
        run returns.
        """
        lim = effective_limits(limits, max_rounds=max_rounds,
                               coverage_target=target_coverage_percent,
                               max_paths=max_paths,
                               stop_on_first_bug=stop_on_first_bug,
                               max_wall_time=max_wall_time,
                               max_instructions=max_instructions)
        tracer = Tracer(lim.trace_path) if lim.trace_path else NULL_TRACER
        self.tracer = tracer
        if self.config.status_listen is not None:
            self.status_server = StatusServer(self.config.status_listen)
        try:
            return self._run(lim, resume_from)
        finally:
            try:
                self._teardown_run()
            finally:
                self.tracer = NULL_TRACER
                tracer.close()
                if self.status_server is not None:
                    self.status_server.close()
                    self.status_server = None

    def _run(self, lim: ExplorationLimits,
             resume_from: Optional[Union[ClusterCheckpoint, str]]
             ) -> ClusterResult:
        config = self.config
        limit = lim.max_rounds if lim.max_rounds is not None else config.max_rounds
        start = time.monotonic()
        self._run_started = start
        instructions_executed = 0
        policy = config.autoscale
        self.autoscaler = Autoscaler(policy) if policy is not None else None
        self._round_seconds = Histogram("round_seconds")
        self._member_latency = None

        result = ClusterResult(num_workers=config.num_workers)
        self._begin_run(result, resume_from)
        line_count = self._line_count()
        result.line_count = line_count

        tracer = self.tracer
        tracer.emit(trace_schema.RUN_STARTED, backend=self.backend_name,
                    workers=len(self._live_members()),
                    test=self._spec_label(), line_count=line_count,
                    resumed_from_round=self._resumed_from_round)
        traced_bugs = 0

        round_index = 0
        while round_index < limit:
            if self.round_hook is not None:
                self.round_hook(round_index, self)
            if self.autoscaler is not None:
                self.autoscaler(round_index, self)
            self._pre_round(result)
            self._peak_workers = max(self._peak_workers,
                                     len(self._live_members()))
            balancing = self._balancing_active(round_index)
            # Unified checkpoint cadence across backends: a snapshot lands
            # after every checkpoint_every *completed* rounds.
            checkpoint_due = bool(
                config.checkpoint_every
                and (round_index + 1) % config.checkpoint_every == 0)
            failures_before = result.worker_failures
            round_started = time.monotonic()

            # 1. Deliver and explore one round of virtual time.
            work = self._explore_phase(result, round_index, checkpoint_due)
            instructions_executed += work.useful_delta + work.replay_delta

            # 2. Status updates into the load balancer (+ merged coverage
            # back out to the members, §3.3).
            if round_index % config.status_update_interval == 0:
                self._status_phase(round_index)

            # 3. Balancing decisions; execution/counting is per backend
            # (queued on the virtual fabric vs. executed synchronously).
            states_transferred = work.states_transferred
            if balancing and round_index % config.balance_interval == 0:
                for command in self.load_balancer.balance(round_index):
                    states_transferred += self._dispatch_transfer(
                        command, result, round_index)
            self._post_balance(result)

            # 4. Record the round.
            live = self._live_members()
            covered_count = self._covered_line_count()
            coverage_percent = (100.0 * covered_count / line_count
                                if line_count else 0.0)
            paths_completed = self._paths_completed()
            bugs_found = self._bugs_found()
            candidates = self._total_candidates()
            elapsed = time.monotonic() - start
            queues = {m.worker_id: m.queue_length for m in live}
            result.timeline.record(RoundSnapshot(
                round_index=round_index,
                queue_lengths=dict(queues),
                total_candidates=candidates,
                states_transferred=states_transferred,
                useful_instructions=work.useful_delta,
                replay_instructions=work.replay_delta,
                covered_lines=covered_count,
                coverage_percent=coverage_percent,
                paths_completed=paths_completed,
                bugs_found=bugs_found,
                load_balancing_enabled=balancing,
                num_workers=len(live),
                elapsed=elapsed,
            ))
            result.total_states_transferred += states_transferred
            if tracer.enabled:
                if bugs_found > traced_bugs:
                    tracer.emit(trace_schema.BUG_FOUND, round=round_index,
                                bugs=bugs_found, new=bugs_found - traced_bugs)
                    traced_bugs = bugs_found
                tracer.emit(
                    trace_schema.ROUND_COMPLETED, round=round_index,
                    elapsed=round(elapsed, 6),
                    coverage_percent=round(coverage_percent, 3),
                    covered_lines=covered_count, paths=paths_completed,
                    candidates=candidates,
                    workers=len(live),
                    useful=work.useful_delta, replay=work.replay_delta,
                    transferred=states_transferred,
                    queues=queues, workers_detail=work.detail)
            if self.status_server is not None:
                self.status_server.update({
                    "backend": self.backend_name,
                    "round": round_index,
                    "elapsed": round(elapsed, 3),
                    "coverage_percent": round(coverage_percent, 3),
                    "covered_lines": covered_count,
                    "paths_completed": paths_completed,
                    "bugs_found": bugs_found,
                    "candidates": candidates,
                    "live_workers": len(live),
                    "draining_workers": len(self._draining),
                    "queues": dict(queues),
                })
            self._round_seconds.observe(time.monotonic() - round_started)
            round_index += 1

            # 4b. Periodic checkpoint (between rounds, after status merge);
            # skipped when this round lost a member, so a snapshot never
            # captures a half-recovered frontier.
            if checkpoint_due and result.worker_failures == failures_before:
                self._take_checkpoint(round_index)
                tracer.emit(trace_schema.CHECKPOINT_WRITTEN, round=round_index,
                            path=config.checkpoint_path)

            # 5. Termination checks.
            if (lim.coverage_target is not None
                    and coverage_percent >= lim.coverage_target):
                result.goal_reached = True
                break
            if lim.max_paths is not None and paths_completed >= lim.max_paths:
                result.goal_reached = True
                break
            if lim.stop_on_first_bug and bugs_found:
                result.goal_reached = True
                break
            if candidates == 0 and self._work_idle():
                result.exhausted = True
                break
            # Budget limits (spent, not reached: goal_reached stays False).
            if (lim.max_instructions is not None
                    and instructions_executed >= lim.max_instructions):
                break
            if (lim.max_wall_time is not None
                    and time.monotonic() - start >= lim.max_wall_time):
                break

        # Cumulative across resume_from= segments: the checkpoint carries the
        # wall time already spent, this run adds its own elapsed time.
        result.wall_time = self._base_wall + (time.monotonic() - start)
        final = self._finalize(result, round_index)
        if tracer.enabled:
            payload: Dict[str, Any] = {
                k: v for k, v in final.cache_stats.items()
                if isinstance(v, int) and v}
            latency = self._solver_latency()
            if latency is not None and latency.count:
                p50 = latency.percentile(50.0)
                p99 = latency.percentile(99.0)
                payload["latency_count"] = latency.count
                payload["latency_p50"] = round(p50 or 0.0, 6)
                payload["latency_p99"] = round(p99 or 0.0, 6)
            tracer.emit(trace_schema.SOLVER_QUERY, **payload)
            round_p50 = self._round_seconds.percentile(50.0)
            round_p99 = self._round_seconds.percentile(99.0)
            tracer.emit(trace_schema.RUN_FINISHED, rounds=final.rounds_executed,
                        paths=final.paths_completed,
                        coverage_percent=round(final.coverage_percent, 3),
                        bugs=len(final.bugs),
                        useful=final.total_useful_instructions,
                        replay=final.total_replay_instructions,
                        exhausted=final.exhausted,
                        goal_reached=final.goal_reached,
                        wall_time=round(final.wall_time, 6),
                        round_time_p50=(None if round_p50 is None
                                        else round(round_p50, 6)),
                        round_time_p99=(None if round_p99 is None
                                        else round(round_p99, 6)))
        return final

    def _finalize(self, result: ClusterResult, rounds: int) -> ClusterResult:
        finals = self._collect_finals(result)
        live = self._live_members()
        result.num_workers = len(live) or result.num_workers
        result.rounds_executed = rounds
        result.resumed_from_round = self._resumed_from_round
        result.workers_added = self._workers_added
        result.workers_removed = self._workers_removed
        result.peak_workers = max(self._peak_workers, len(live))
        result.paths_completed = (self._base_paths
                                  + sum(f.paths_completed for f in finals))
        result.total_useful_instructions = self._base_useful + sum(
            f.useful_instructions for f in finals)
        result.total_replay_instructions = self._base_replay + sum(
            f.replay_instructions for f in finals)
        covered: Set[int] = set(self._base_covered)
        all_bugs: List[BugReport] = list(self._base_bugs)
        result.test_cases.extend(self._base_tests)
        latency = Histogram("solver_query_seconds")
        for final in finals:
            covered.update(final.covered_lines)
            all_bugs.extend(final.bugs)
            result.test_cases.extend(final.test_cases)
            result.worker_stats[final.worker_id] = final.stats
            if final.latency is not None:
                latency.merge_from(final.latency)
        self._member_latency = latency
        result.covered_lines = covered
        result.coverage_percent = (100.0 * len(covered) / result.line_count
                                   if result.line_count else 0.0)
        result.bugs = _dedupe_bugs(all_bugs)
        result.transfer_cost = TransferCost.from_worker_stats(
            result.worker_stats.values())
        finalized_ids = {f.worker_id for f in finals}
        counter_maps: List[Dict[str, int]] = [f.cache_counters for f in finals]
        counter_maps.extend(self._orphan_cache_counters(finalized_ids))
        result.cache_stats = aggregate_cache_counters(counter_maps)
        self._finalize_extras(result, finals)
        return result

    # -- backend hooks -------------------------------------------------------------------
    # Membership/construction hooks: how members are made, found and retired.

    @backend_hook
    def _live_members(self) -> List[Member]:
        """The live (exploring) members, excluding draining ones."""
        raise NotImplementedError

    @backend_hook
    def _admit_member(self) -> Member:
        """Construct, register and coverage-prime one new member."""
        raise NotImplementedError

    @backend_hook
    def _detach_member(self, member: Member) -> None:
        """Remove a member from the live list (about to start draining)."""
        self._live_members().remove(member)

    @backend_hook
    def _purge_departing(self, member: Member) -> None:
        """Purge a newly-draining member from the balancer's view (and
        re-route anything in flight to it)."""
        raise NotImplementedError

    @backend_hook
    def _drain_member(self, member: Any) -> int:
        """Export one drain chunk from a draining member to the
        least-loaded survivor; retire it once empty.  Returns jobs moved."""
        raise NotImplementedError

    # Round-phase hooks: the backend-specific halves of each phase.

    @backend_hook
    def _line_count(self) -> int:
        """Line count of the program under test (coverage denominator)."""
        raise NotImplementedError

    @backend_hook
    def _spec_label(self) -> Optional[str]:
        """Spec name for the ``run_started`` event (None = untraced key)."""
        return None

    @backend_hook
    def _begin_run(self, result: ClusterResult,
                   resume_from: Optional[Union[ClusterCheckpoint, str]]
                   ) -> None:
        """Start-of-run plumbing: spawn/seed members, restore a checkpoint."""

    @backend_hook
    def _teardown_run(self) -> None:
        """End-of-run plumbing (shut down processes, thread pools, ...)."""

    @backend_hook
    def _pre_round(self, result: ClusterResult) -> None:
        """Start-of-round housekeeping (advance drains, liveness checks)."""

    @backend_hook
    def _explore_phase(self, result: ClusterResult, round_index: int,
                       checkpoint_due: bool) -> RoundWork:
        """Deliver pending work and explore one round's instruction budget
        on every live member; advance draining members' status."""
        raise NotImplementedError

    @backend_hook
    def _status_phase(self, round_index: int) -> None:
        """Feed member status into the load balancer and push the merged
        global coverage back out (§3.3)."""
        raise NotImplementedError

    @backend_hook
    def _dispatch_transfer(self, command: TransferCommand,
                           result: ClusterResult, round_index: int) -> int:
        """Act on one balancing decision.  Returns the states counted as
        transferred *this* round (the virtual fabric queues the request and
        returns 0; the process backend executes it synchronously)."""
        raise NotImplementedError

    @backend_hook
    def _post_balance(self, result: ClusterResult) -> None:
        """After balancing, before recording (the process backend advances
        drains here, once transfers have settled the queues)."""

    @backend_hook
    def _work_idle(self) -> bool:
        """True when no work is hidden in the fabric (in-flight messages);
        gates the exhaustion check alongside ``_total_candidates() == 0``."""
        return True

    # Observation hooks: the numbers the shared recorder reports.

    @backend_hook
    def _covered_line_count(self) -> int:
        raise NotImplementedError

    @backend_hook
    def _paths_completed(self) -> int:
        raise NotImplementedError

    @backend_hook
    def _bugs_found(self) -> int:
        raise NotImplementedError

    @backend_hook
    def _solver_latency(self) -> Optional[Histogram]:
        """The run-level solver-latency distribution, aggregated from
        ``MemberFinal.latency`` during :meth:`_finalize`."""
        return self._member_latency

    # Checkpoint / finalization hooks.

    @backend_hook
    def _take_checkpoint(self, round_index: int) -> None:
        raise NotImplementedError

    @backend_hook
    def _collect_finals(self, result: ClusterResult) -> List[MemberFinal]:
        """Every member's final accounting (live, draining and departed)."""
        raise NotImplementedError

    @backend_hook
    def _orphan_cache_counters(self, finalized_ids: Set[int]
                               ) -> List[Dict[str, int]]:
        """Cache counters from members that died before finalization."""
        return []

    @backend_hook
    def _finalize_extras(self, result: ClusterResult,
                         finals: List[MemberFinal]) -> None:
        """Backend-specific result fields (message counts, recovery...)."""
