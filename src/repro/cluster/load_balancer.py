"""The Cloud9 load balancer (paper §3.3).

"The balancing algorithm takes as input the lengths l_i of each worker W_i's
queue Q_i.  It computes the average l-bar and standard deviation sigma of the
l_i values and then classifies each W_i as underloaded
(l_i < max{l-bar - delta*sigma, 0}), overloaded (l_i > l-bar + delta*sigma),
or OK otherwise; delta is a constant factor.  The W_i are then sorted
according to their queue length l_i and placed in a list.  LB then matches
underloaded workers from the beginning of the list with overloaded workers
from the end of the list.  For each pair <W_i, W_j>, with l_i < l_j, the load
balancer sends a job transfer request to the workers to move
(l_j - l_i)/2 candidate nodes from W_j to W_i."

The load balancer never touches program state: transfer requests name a
source, a destination and a job count, and the source worker picks the jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.overlay import CoverageOverlay


@dataclass(frozen=True)
class TransferCommand:
    """<source worker, destination worker, number of jobs> (§3.1)."""

    source: int
    destination: int
    job_count: int


@dataclass
class WorkerReport:
    """The most recent status update received from a worker."""

    worker_id: int
    queue_length: int = 0
    useful_instructions: int = 0
    coverage_bits: int = 0
    round_received: int = -1


class LoadBalancer:
    """Queue-length balancing plus the global coverage overlay."""

    def __init__(self, line_count: int, delta: float = 1.0,
                 min_transfer: int = 1):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.min_transfer = min_transfer
        self.reports: Dict[int, WorkerReport] = {}
        self.overlay = CoverageOverlay(line_count)
        self.transfer_log: List[Tuple[int, TransferCommand]] = []
        self.enabled = True

    # -- worker membership -------------------------------------------------------

    def register_worker(self, worker_id: int,
                        queue_length: Optional[int] = None) -> None:
        """Enroll a worker; ``queue_length`` optionally seeds its report.

        A worker joining mid-run has not sent a status update yet, so its
        report would read as queue length 0 until the first one arrives --
        skewing ``queue_length_spread()`` (and autoscaling decisions built
        on it) and triggering transfers toward a member the balancer knows
        nothing about.  Elastic joins therefore seed the report (typically
        with the mean of the current queue lengths); the worker's first real
        status update overwrites the seed with ground truth.
        """
        report = self.reports.setdefault(worker_id,
                                         WorkerReport(worker_id=worker_id))
        if queue_length is not None and report.round_received < 0:
            report.queue_length = int(queue_length)

    def mean_queue_length(self) -> float:
        """Average reported queue length (0.0 with no reports)."""
        if not self.reports:
            return 0.0
        return self.total_queue_length() / len(self.reports)

    def deregister_worker(self, worker_id: int) -> None:
        self.reports.pop(worker_id, None)

    def cancel_transfer(self, command: TransferCommand) -> None:
        """Undo the queue-length estimates of a transfer that never happened.

        ``balance()`` debits the source and credits the destination as soon
        as it issues a command; when the transfer is cancelled (its source or
        destination departed or died before the jobs moved), the estimates
        must roll back or the next ``balance()`` call would plan against
        phantom queue lengths.
        """
        source = self.reports.get(command.source)
        if source is not None:
            source.queue_length += command.job_count
        destination = self.reports.get(command.destination)
        if destination is not None:
            destination.queue_length = max(
                0, destination.queue_length - command.job_count)

    @property
    def worker_ids(self) -> List[int]:
        return sorted(self.reports)

    # -- status updates -----------------------------------------------------------

    def receive_status(self, worker_id: int, queue_length: int,
                       useful_instructions: int, coverage_bits: int,
                       round_index: int = 0) -> int:
        """Process a status update; returns the merged global coverage bits."""
        report = self.reports.setdefault(worker_id, WorkerReport(worker_id=worker_id))
        report.queue_length = queue_length
        report.useful_instructions = useful_instructions
        report.coverage_bits = coverage_bits
        report.round_received = round_index
        return self.overlay.merge_from_worker(coverage_bits)

    # -- balancing ------------------------------------------------------------------

    def classify(self) -> Tuple[List[int], List[int], List[int]]:
        """Classify workers as (underloaded, ok, overloaded) by queue length."""
        lengths = [r.queue_length for r in self.reports.values()]
        if not lengths:
            return [], [], []
        mean = sum(lengths) / len(lengths)
        variance = sum((l - mean) ** 2 for l in lengths) / len(lengths)
        sigma = math.sqrt(variance)
        low_threshold = max(mean - self.delta * sigma, 0.0)
        high_threshold = mean + self.delta * sigma

        underloaded: List[int] = []
        overloaded: List[int] = []
        ok: List[int] = []
        for worker_id in sorted(self.reports):
            length = self.reports[worker_id].queue_length
            if length < low_threshold or length == 0:
                underloaded.append(worker_id)
            elif length > high_threshold:
                overloaded.append(worker_id)
            else:
                ok.append(worker_id)
        return underloaded, ok, overloaded

    def balance(self, round_index: int = 0) -> List[TransferCommand]:
        """Compute the transfer requests for the current reports."""
        if not self.enabled or len(self.reports) < 2:
            return []
        underloaded, _ok, overloaded = self.classify()
        if not underloaded:
            return []
        if not overloaded:
            # Degenerate but important case (paper §3.2: "In the extreme, Wd
            # is a new worker or one that is done exploring its subtree and
            # has zero jobs left"): idle workers are paired with the most
            # loaded workers even when the latter do not stand out of the
            # mean +/- delta*sigma band (with few workers, sigma is so large
            # that nothing ever classifies as overloaded).
            idle = [w for w in underloaded if self.reports[w].queue_length == 0]
            if not idle:
                return []
            donors = sorted(
                (w for w in self.reports if w not in set(idle)
                 and self.reports[w].queue_length >= 2 * self.min_transfer),
                key=lambda w: -self.reports[w].queue_length)
            overloaded = donors
            underloaded = idle
            if not overloaded:
                return []

        by_length = sorted(self.reports, key=lambda w: (self.reports[w].queue_length, w))
        light = [w for w in by_length if w in set(underloaded)]
        heavy = [w for w in reversed(by_length) if w in set(overloaded)]

        commands: List[TransferCommand] = []
        for destination, source in zip(light, heavy):
            if destination == source:
                continue
            l_i = self.reports[destination].queue_length
            l_j = self.reports[source].queue_length
            count = (l_j - l_i) // 2
            if count < self.min_transfer:
                continue
            command = TransferCommand(source=source, destination=destination,
                                      job_count=count)
            commands.append(command)
            self.transfer_log.append((round_index, command))
            # Account the in-flight transfer against the cached reports so a
            # second balance() call before fresh status updates arrive does
            # not re-issue the same transfer (the next receive_status for
            # each worker overwrites these estimates with ground truth).
            self.reports[source].queue_length -= count
            self.reports[destination].queue_length += count
        return commands

    # -- introspection -----------------------------------------------------------------

    def queue_length_spread(self) -> Tuple[int, int]:
        lengths = [r.queue_length for r in self.reports.values()]
        if not lengths:
            return 0, 0
        return min(lengths), max(lengths)

    def total_queue_length(self) -> int:
        return sum(r.queue_length for r in self.reports.values())
