"""The coordinator-side frontier ledger: who owns which subtree.

Cloud9 tolerates worker failures (§2.3): "the system adjusts the global
exploration frontier as if the failed worker's candidate nodes were deleted".
This reproduction goes one step further and *recovers* the lost work: because
every job a worker ever receives flows through the coordinator (the seed job
plus every brokered transfer), the coordinator can maintain, per worker, the
set of execution-tree subtrees that worker is responsible for -- its
*territory* -- without ever seeing the worker's private frontier.

Territory algebra (all paths are root-to-node fork-index tuples):

* ``acquire(w, p)`` -- worker ``w`` received a job for path ``p``: its
  territory grows by the whole subtree under ``p`` (an exported candidate
  node carries everything below it, §3.2).
* ``cede(w, p)`` -- worker ``w`` exported a job for path ``p``: the subtree
  under ``p`` leaves its territory (it is now someone else's acquisition).

``recovery_jobs(w)`` re-materializes the territory of a dead worker as jobs:
one job per owned subtree root, each paired with the *fence paths* -- ceded
subtrees nested inside it that still belong to live workers.  Requeuing those
jobs to survivors (importing the root as a virtual candidate and the fences
as fence nodes) makes the cluster re-explore exactly the dead worker's
territory and nothing else, so a deterministic run converges to the same
explored tree as a crash-free one.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

Path = Tuple[int, ...]

__all__ = ["FrontierLedger", "RecoveryJob"]


def _within(path: Path, root: Path) -> bool:
    """True when ``path`` lies inside the subtree rooted at ``root``."""
    return len(path) >= len(root) and path[:len(root)] == root


class RecoveryJob:
    """One requeueable unit of a dead worker's territory."""

    __slots__ = ("root", "fences")

    def __init__(self, root: Path, fences: Tuple[Path, ...] = ()):
        self.root = tuple(root)
        self.fences = tuple(tuple(f) for f in fences)

    def __repr__(self) -> str:
        return "RecoveryJob(root=%r, fences=%r)" % (self.root, self.fences)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecoveryJob):
            return NotImplemented
        return self.root == other.root and set(self.fences) == set(other.fences)


class FrontierLedger:
    """Per-worker territory bookkeeping from the coordinator's vantage point."""

    def __init__(self) -> None:
        self._owned: Dict[int, Set[Path]] = {}
        self._ceded: Dict[int, Set[Path]] = {}

    # -- membership --------------------------------------------------------------

    def register(self, worker_id: int) -> None:
        self._owned.setdefault(worker_id, set())
        self._ceded.setdefault(worker_id, set())

    def forget(self, worker_id: int) -> None:
        self._owned.pop(worker_id, None)
        self._ceded.pop(worker_id, None)

    @property
    def worker_ids(self) -> List[int]:
        return sorted(self._owned)

    # -- queries -----------------------------------------------------------------

    def owned_roots(self, worker_id: int) -> Set[Path]:
        return set(self._owned.get(worker_id, ()))

    def _covering_owned(self, worker_id: int, path: Path) -> bool:
        """Whether ``path`` currently lies inside the worker's territory.

        The deepest owned/ceded root that is a prefix of ``path`` decides:
        owned means inside, ceded means outside, neither means outside.
        """
        best_len = -1
        best_owned = False
        for root in self._owned.get(worker_id, ()):
            if _within(path, root) and len(root) > best_len:
                best_len = len(root)
                best_owned = True
        for root in self._ceded.get(worker_id, ()):
            if _within(path, root) and len(root) > best_len:
                best_len = len(root)
                best_owned = False
        return best_owned

    # -- territory updates ---------------------------------------------------------

    def acquire(self, worker_id: int, path: Path) -> None:
        path = tuple(path)
        self.register(worker_id)
        # Anything previously recorded below the acquired root is subsumed.
        self._ceded[worker_id] = {c for c in self._ceded[worker_id]
                                  if not _within(c, path)}
        self._owned[worker_id] = {o for o in self._owned[worker_id]
                                  if not _within(o, path)}
        if not self._covering_owned(worker_id, path):
            self._owned[worker_id].add(path)

    def cede(self, worker_id: int, path: Path) -> None:
        path = tuple(path)
        self.register(worker_id)
        self._owned[worker_id] = {o for o in self._owned[worker_id]
                                  if not _within(o, path)}
        self._ceded[worker_id] = {c for c in self._ceded[worker_id]
                                  if not _within(c, path)}
        if self._covering_owned(worker_id, path):
            self._ceded[worker_id].add(path)

    # -- recovery ------------------------------------------------------------------

    def recovery_jobs(self, worker_id: int) -> List[RecoveryJob]:
        """The dead worker's territory as requeueable jobs (sorted, stable)."""
        jobs: List[RecoveryJob] = []
        ceded = self._ceded.get(worker_id, set())
        for root in sorted(self._owned.get(worker_id, set())):
            fences = tuple(sorted(c for c in ceded
                                  if _within(c, root) and c != root))
            jobs.append(RecoveryJob(root, fences))
        return jobs
