"""Statistics collected by workers and the cluster runtime.

The evaluation section of the paper is phrased in terms of two metrics
(§7.2): the time to reach a goal (external) and the *useful work* performed,
"measured as the number of useful (non-replay) instructions executed
symbolically" (internal).  Workers therefore keep useful and replay
instruction counters separately, and the cluster timeline records per-round
snapshots that the benchmark harness turns into the paper's figures
(7, 8, 9, 10, 12, 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import CounterField, MetricsRegistry, bind_counters, counter_fields


class WorkerStats:
    """Per-worker counters.

    A view over a :class:`~repro.obs.metrics.MetricsRegistry`: constructed
    with ``registry=`` (the in-process worker passes its executor's) the
    counters are shared cells visible to the status/trace layer; without
    one they are private, and either way the public surface is the old
    dataclass's -- keyword construction, ``stats.x += 1``, equality,
    pickling (the object crosses the process boundary inside
    ``FinalReply``).
    """

    useful_instructions = CounterField()
    replay_instructions = CounterField()
    paths_completed = CounterField()
    jobs_imported = CounterField()
    jobs_exported = CounterField()
    # Jobs imported as part of a dead worker's frontier recovery (a subset
    # of ``jobs_imported``; the failure model is described in §2.3).
    jobs_recovered = CounterField()
    replays = CounterField()
    broken_replays = CounterField()
    schedule_steps = CounterField()
    # Transfer-encoding cost (§3.2: jobs ship as a prefix-sharing job tree).
    transfers = CounterField()
    transfer_encoded_nodes = CounterField()
    transfer_naive_nodes = CounterField()
    # Solver work spent inside path replay (§6: the destination worker
    # rebuilds the relevant constraint-cache entries as a side effect of
    # replay, so replay queries seed later cache/independence hits).
    replay_solver_queries = CounterField()
    replay_cache_hits = CounterField()

    def __init__(self, worker_id: int, *,
                 registry: Optional[MetricsRegistry] = None, **counts: int):
        self.worker_id = worker_id
        fields_ = counter_fields(type(self))
        unknown = set(counts) - set(fields_)
        if unknown:
            raise TypeError("unknown WorkerStats field(s): %s"
                            % ", ".join(sorted(unknown)))
        bind_counters(self, fields_, registry, prefix="worker_")
        for name, value in counts.items():
            setattr(self, name, value)

    @property
    def total_instructions(self) -> int:
        return self.useful_instructions + self.replay_instructions

    @property
    def replay_overhead(self) -> float:
        total = self.total_instructions
        return self.replay_instructions / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{field: value}`` dict (the old ``dataclasses.asdict``)."""
        out: Dict[str, int] = {"worker_id": self.worker_id}
        for name in counter_fields(type(self)):
            out[name] = getattr(self, name)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, WorkerStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        body = ", ".join("%s=%r" % kv for kv in self.as_dict().items())
        return "WorkerStats(%s)" % body

    # Pickling detaches the registry: counters travel as plain values (the
    # receiving coordinator only reads them).
    def __getstate__(self) -> Dict[str, int]:
        return self.as_dict()

    def __setstate__(self, state: Dict[str, int]) -> None:
        state = dict(state)
        self.__init__(state.pop("worker_id"), **state)


@dataclass
class TransferCost:
    """Aggregate wire cost of every job transfer in a run.

    ``encoded_nodes`` counts trie edges actually shipped (the JobTree
    encoding); ``naive_nodes`` counts what shipping each path separately
    would have cost.  The difference is the prefix-sharing savings the paper
    claims for path-encoded job transfers (§3.2).
    """

    transfers: int = 0
    jobs: int = 0
    encoded_nodes: int = 0
    naive_nodes: int = 0

    @property
    def savings_ratio(self) -> float:
        """Fraction of naive wire cost avoided by the trie encoding."""
        if not self.naive_nodes:
            return 0.0
        return 1.0 - self.encoded_nodes / self.naive_nodes

    @property
    def nodes_per_job(self) -> float:
        return self.encoded_nodes / self.jobs if self.jobs else 0.0

    @classmethod
    def from_worker_stats(cls, stats: Iterable[WorkerStats]) -> "TransferCost":
        total = cls()
        for s in stats:
            total.transfers += s.transfers
            total.jobs += s.jobs_exported
            total.encoded_nodes += s.transfer_encoded_nodes
            total.naive_nodes += s.transfer_naive_nodes
        return total


@dataclass
class RoundSnapshot:
    """One entry of the cluster timeline (one virtual-time round)."""

    round_index: int
    queue_lengths: Dict[int, int]
    total_candidates: int
    states_transferred: int
    useful_instructions: int
    replay_instructions: int
    covered_lines: int
    coverage_percent: float
    paths_completed: int
    bugs_found: int
    load_balancing_enabled: bool
    #: Live (exploring) workers this round -- the elastic-membership trace.
    #: 0 on snapshots from before the field existed.
    num_workers: int = 0
    #: Monotonic seconds since the run started when the round closed, so the
    #: per-round series (worker counts, coverage) can be plotted against
    #: wall time.  0.0 on snapshots from before the field existed.
    elapsed: float = 0.0

    @property
    def transfer_fraction(self) -> float:
        """Fraction of all candidate states transferred during this round."""
        if self.total_candidates == 0:
            return 0.0
        return self.states_transferred / self.total_candidates


@dataclass
class ClusterTimeline:
    """The full per-round history of a cluster run."""

    snapshots: List[RoundSnapshot] = field(default_factory=list)

    def record(self, snapshot: RoundSnapshot) -> None:
        self.snapshots.append(snapshot)

    def __len__(self) -> int:
        return len(self.snapshots)

    def useful_work_series(self) -> List[int]:
        """Cumulative useful instructions per round."""
        series: List[int] = []
        total = 0
        for snap in self.snapshots:
            total += snap.useful_instructions
            series.append(total)
        return series

    def transfer_fraction_series(self) -> List[float]:
        return [snap.transfer_fraction for snap in self.snapshots]

    def worker_count_series(self) -> List[int]:
        """Live workers per round (flat for fixed clusters, the scaling
        trace for autoscaled/elastic ones)."""
        return [snap.num_workers for snap in self.snapshots]

    def elapsed_series(self) -> List[float]:
        """Monotonic elapsed seconds at each round close -- the time axis
        for plotting any other per-round series."""
        return [snap.elapsed for snap in self.snapshots]

    def worker_rounds(self) -> int:
        """Total worker-rounds consumed: the sum of live worker counts over
        all rounds.  This is the run's capacity bill -- what an autoscaled
        cluster is trying to keep below a fixed-size cluster's."""
        return sum(snap.num_workers for snap in self.snapshots)

    def coverage_series(self) -> List[float]:
        return [snap.coverage_percent for snap in self.snapshots]

    def rounds_to_coverage(self, target_percent: float) -> Optional[int]:
        """First round index at which coverage reached the target, if any."""
        for snap in self.snapshots:
            if snap.coverage_percent >= target_percent:
                return snap.round_index
        return None
