"""Path replay: materializing virtual nodes received in jobs.

Section 3.2: when a strategy selects a virtual node, "the corresponding path
in the job tree is replayed (i.e., the symbolic execution engine executes
that path); at the end of this replay, all nodes along the path are dead,
except the leaf node, which has converted from virtual to materialized [...]
while exploring the chosen job path, each branch produces child program
states; any such state that is not part of the path is marked as a fence
node, because it represents a node that is being explored elsewhere".

Section 6 ("Broken Replays"): a replay is *broken* when the destination
cannot reconstruct the state -- the path diverges or terminates prematurely.
The per-state deterministic allocator and deterministic symbol naming make
this rare, but the code still detects and reports it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.executor import SymbolicExecutor
from repro.engine.state import ExecutionState


@dataclass
class ReplayOutcome:
    """Result of replaying one job path."""

    state: Optional[ExecutionState]
    instructions: int = 0
    steps: int = 0
    broken: bool = False
    reason: str = ""
    # Off-path sibling states discovered during replay, as (path, state); they
    # correspond to subtrees being explored elsewhere and become fence nodes.
    fence_states: List[Tuple[Tuple[int, ...], ExecutionState]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return not self.broken and self.state is not None


def replay_path(executor: SymbolicExecutor,
                state_factory: Callable[[SymbolicExecutor], ExecutionState],
                path: Sequence[int],
                max_steps: int = 1_000_000) -> ReplayOutcome:
    """Re-execute a root-to-node path and return the materialized state."""
    outcome = ReplayOutcome(state=None)
    state = state_factory(executor)
    remaining = list(path)
    prefix: List[int] = []

    while remaining:
        if not state.is_running:
            outcome.broken = True
            outcome.reason = ("path terminated prematurely with %d fork points left"
                              % len(remaining))
            return outcome
        if outcome.steps >= max_steps:
            outcome.broken = True
            outcome.reason = "replay exceeded %d steps" % max_steps
            return outcome

        result = executor.step(state)
        outcome.steps += 1
        outcome.instructions += result.instructions

        children = result.children
        if not children:
            outcome.broken = True
            outcome.reason = "state vanished during replay"
            return outcome
        if len(children) == 1:
            state = children[0]
            continue

        index = remaining.pop(0)
        if index >= len(children):
            outcome.broken = True
            outcome.reason = ("divergence: fork produced %d children, path wants %d"
                              % (len(children), index))
            return outcome
        for sibling_index, sibling in enumerate(children):
            if sibling_index == index:
                continue
            if sibling.is_running:
                outcome.fence_states.append(
                    (tuple(prefix + [sibling_index]), sibling))
        prefix.append(index)
        state = children[index]

    if not state.is_running:
        # The final node of the path exists but its state already terminated;
        # nothing is left to explore there.
        outcome.broken = True
        outcome.reason = "replayed state is terminal"
        outcome.state = state
        return outcome

    outcome.state = state
    return outcome
