"""Autoscaling for elastic Cloud9 clusters.

The paper's pitch is symbolic execution as an *on-demand* cloud service
(§1, §2.3): workers join and leave while a test runs, and the cluster size
should follow the workload instead of being provisioned by hand.  PR 4 gave
clusters the mechanism (``add_worker``/``remove_worker``/``round_hook``);
this module adds the policy.

:class:`AutoscalePolicy` is a declarative description of when a cluster is
under- or over-provisioned, phrased in the two signals the load balancer
already collects every round (§3.3):

* the *queue-length band*: average candidate jobs per worker, compared
  against ``queue_high`` (work outpaces capacity -> grow) and ``queue_low``
  (workers starving -> shrink);
* the *queue-length spread* (``LoadBalancer.queue_length_spread()``): a
  persistent max-min gap wider than ``spread_threshold`` means balancing
  cannot keep up with the fan-out -> grow;

plus one external signal, the *round wall-time ceiling*: rounds taking
longer than ``round_wall_time_ceiling`` seconds mean each member is
overcommitted -> grow.

:class:`Autoscaler` turns the policy into actions.  It is driven from the
cluster's ``round_hook`` (the membership barrier: no commands are in flight
there), applies hysteresis (a signal must persist for ``hysteresis_rounds``
consecutive rounds) and a post-action cooldown (``cooldown_rounds``) so the
cluster never flaps, and always respects ``min_workers``/``max_workers``.
Scale-down picks the member with the shortest reported queue and retires it
through the cluster's *incremental* drain (at most ``drain_chunk`` jobs per
round leave the draining worker), so shrinking never stalls a round.

Both cluster front ends understand ``config.autoscale``::

    test.run(backend="cluster", autoscale=AutoscalePolicy(max_workers=8))
    test.run(backend="process", workers=2, autoscale=True)   # default policy

and report ``workers_added`` / ``workers_removed`` / ``peak_workers`` plus a
per-round worker-count trace on the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.obs import schema as trace_schema

if TYPE_CHECKING:  # import-time cycle: core.py imports this module
    from repro.cluster.core import CoordinatorCore
    from repro.cluster.load_balancer import LoadBalancer

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass
class AutoscalePolicy:
    """When to grow and when to shrink an elastic cluster.

    The defaults are deliberately conservative: scale on sustained pressure
    only, one worker at a time, with a cooldown between actions.
    """

    #: Hard floor of live (exploring) workers; scale-down stops here.
    min_workers: int = 1
    #: Hard ceiling of live workers; scale-up stops here.
    max_workers: int = 8
    #: Grow when the average queue length per worker exceeds this.
    queue_high: float = 8.0
    #: Shrink when the average queue length per worker falls below this.
    queue_low: float = 1.0
    #: Grow when max-min of the reported queue lengths exceeds this
    #: (None disables the spread signal).
    spread_threshold: Optional[int] = None
    #: Grow when a round takes longer than this many wall-clock seconds
    #: (None disables the wall-time signal).  Mostly useful on the process
    #: backend, where rounds run concurrently on real cores.
    round_wall_time_ceiling: Optional[float] = None
    #: Rounds to hold still after any scale action (lets transfers land and
    #: fresh status reports arrive before the next decision).
    cooldown_rounds: int = 2
    #: Consecutive rounds a signal must persist before acting.
    hysteresis_rounds: int = 2
    #: Workers added/removed per action.
    scale_step: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.queue_low >= self.queue_high:
            raise ValueError("queue_low must be below queue_high "
                             "(the band needs a dead zone)")
        if self.cooldown_rounds < 0:
            raise ValueError("cooldown_rounds must be non-negative")
        if self.hysteresis_rounds < 1:
            raise ValueError("hysteresis_rounds must be at least 1")
        if self.scale_step < 1:
            raise ValueError("scale_step must be at least 1")

    @classmethod
    def coerce(cls, value: object) -> Optional["AutoscalePolicy"]:
        """Normalize a config's ``autoscale`` field: ``None`` passes through,
        ``True`` means the default policy, anything else must already be an
        :class:`AutoscalePolicy`.  Shared by both cluster configs so the
        accepted spellings cannot diverge between backends."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if value is True:
            return cls()
        raise TypeError("autoscale must be an AutoscalePolicy, True or "
                        "None, got %r" % (type(value).__name__,))

    def signal(self, *, num_workers: int, total_queue: int,
               spread: Tuple[int, int],
               round_wall_time: Optional[float] = None) -> int:
        """Raw per-round verdict: +1 grow, -1 shrink, 0 hold.

        Clamping happens here on purpose: at ``max_workers`` a grow signal
        reads as 0, so hysteresis streaks reset instead of accumulating
        against the ceiling (and symmetrically at ``min_workers``).
        """
        if num_workers <= 0:
            return 0
        average = total_queue / num_workers
        if num_workers < self.max_workers:
            if average > self.queue_high:
                return 1
            low, high = spread
            if (self.spread_threshold is not None
                    and high - low > self.spread_threshold):
                return 1
            if (self.round_wall_time_ceiling is not None
                    and round_wall_time is not None
                    and round_wall_time > self.round_wall_time_ceiling):
                return 1
        if num_workers > self.min_workers and average < self.queue_low:
            return -1
        return 0


class Autoscaler:
    """Drives elastic membership of a cluster from its ``round_hook``.

    Works against both :class:`~repro.cluster.coordinator.Cloud9Cluster` and
    :class:`~repro.distrib.cluster.ProcessCloud9Cluster` through the small
    surface they share: ``load_balancer``, ``live_worker_ids``,
    ``add_worker()`` and ``remove_worker(worker_id)``.

    Constructed automatically when a cluster config carries
    ``autoscale=AutoscalePolicy(...)``; usable manually via
    :meth:`install` (which chains after any existing ``round_hook``).
    """

    def __init__(self, policy: Optional[AutoscalePolicy] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy or AutoscalePolicy()
        #: Actions taken, as ``(round_index, "grow"/"shrink", count)``.
        self.decisions: List[Tuple[int, str, int]] = []
        self.workers_added = 0
        self.workers_removed = 0
        self._clock = clock
        self._last_tick: Optional[float] = None
        self._streak = 0  # signed run length of the current raw signal
        # Start in cooldown: the first rounds of a run are ramp-up (one seed
        # job fanning out) and must not read as "workers are idle".
        self._cooldown_left = self.policy.cooldown_rounds

    def install(self, cluster: "CoordinatorCore") -> "Autoscaler":
        """Chain this autoscaler after the cluster's existing round hook."""
        previous = cluster.round_hook

        def hook(round_index: int, cl: "CoordinatorCore") -> None:
            if previous is not None:
                previous(round_index, cl)
            self(round_index, cl)

        cluster.round_hook = hook
        return self

    def __call__(self, round_index: int, cluster: "CoordinatorCore") -> None:
        now = self._clock()
        round_wall = (now - self._last_tick
                      if self._last_tick is not None else None)
        self._last_tick = now

        balancer = cluster.load_balancer
        live = list(cluster.live_worker_ids)
        raw = self.policy.signal(
            num_workers=len(live),
            total_queue=balancer.total_queue_length(),
            spread=balancer.queue_length_spread(),
            round_wall_time=round_wall)

        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return
        if raw == 0:
            self._streak = 0
            return
        if raw > 0:
            self._streak = self._streak + 1 if self._streak > 0 else 1
        else:
            self._streak = self._streak - 1 if self._streak < 0 else -1
        if abs(self._streak) < self.policy.hysteresis_rounds:
            return

        if self._streak > 0:
            self._grow(round_index, cluster, len(live))
        else:
            self._shrink(round_index, cluster, balancer)
        self._streak = 0
        self._cooldown_left = self.policy.cooldown_rounds

    # -- actions -----------------------------------------------------------------------

    def _grow(self, round_index: int, cluster: "CoordinatorCore",
              num_live: int) -> None:
        added = 0
        for _ in range(self.policy.scale_step):
            if num_live + added >= self.policy.max_workers:
                break
            try:
                cluster.add_worker()
            except RuntimeError:
                # No capacity to grow right now -- e.g. the TCP transport's
                # pending-agent pool is empty, or the newcomer died while
                # joining.  A policy decision must not kill the run; the
                # pressure signal will re-fire once capacity exists.
                break
            added += 1
        if added:
            self.workers_added += added
            self.decisions.append((round_index, "grow", added))
            self._trace(cluster, round_index, "grow", added)

    def _shrink(self, round_index: int, cluster: "CoordinatorCore",
                balancer: "LoadBalancer") -> None:
        removed = 0
        for _ in range(self.policy.scale_step):
            live = list(cluster.live_worker_ids)
            if len(live) <= self.policy.min_workers:
                break
            victim = min(live, key=lambda w: (
                balancer.reports[w].queue_length if w in balancer.reports
                else 0, w))
            cluster.remove_worker(victim)
            removed += 1
        if removed:
            self.workers_removed += removed
            self.decisions.append((round_index, "shrink", removed))
            self._trace(cluster, round_index, "shrink", removed)

    @staticmethod
    def _trace(cluster: "CoordinatorCore", round_index: int, action: str,
               count: int) -> None:
        """Record the decision on the cluster's trace (no-op when untraced;
        both cluster front ends carry a ``tracer``)."""
        tracer = getattr(cluster, "tracer", None)
        if tracer is not None:
            tracer.emit(trace_schema.AUTOSCALE_DECISION, round=round_index,
                        action=action, count=count,
                        workers=len(list(cluster.live_worker_ids)))
