"""Cloud9 worker nodes (paper §3.2).

A worker owns a local view of the execution tree rooted at the global root.
Its *frontier* is the set of candidate nodes; the work-transfer protocol
guarantees frontiers are pairwise disjoint and that their union is the global
exploration frontier.  A worker:

* explores materialized candidates by stepping their states,
* lazily replays virtual candidates received in jobs,
* exports candidate nodes as path-encoded jobs when asked by the load
  balancer (the exported node becomes a fence node locally),
* imports job trees from other workers (their leaves become virtual
  candidates), and
* periodically reports its queue length and coverage to the load balancer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.jobs import Job, JobTree
from repro.cluster.replay import replay_path
from repro.cluster.stats import WorkerStats
from repro.cluster.overlay import WorkerCoverageView
from repro.cluster.transport import LOAD_BALANCER_ID, Message, MessageKind, Transport
from repro.engine.errors import BugReport
from repro.engine.executor import StepResult, SymbolicExecutor
from repro.engine.state import ExecutionState
from repro.engine.strategies import SearchStrategy, make_strategy
from repro.engine.test_case import TestCase
from repro.engine.tree import ExecutionTree, NodeLife, NodeStatus, TreeNode

StateFactory = Callable[[SymbolicExecutor], ExecutionState]

#: Strategy used when neither a config nor a symbolic test names one.
DEFAULT_STRATEGY = "interleaved"


class Worker:
    """One cluster node running an independent symbolic execution engine."""

    def __init__(self, worker_id: int, executor: SymbolicExecutor,
                 state_factory: StateFactory,
                 strategy: Optional[SearchStrategy] = None,
                 strategy_name: str = DEFAULT_STRATEGY):
        if worker_id == LOAD_BALANCER_ID:
            raise ValueError("worker id 0 is reserved for the load balancer")
        self.worker_id = worker_id
        self.executor = executor
        self.state_factory = state_factory
        self.strategy = strategy or make_strategy(
            strategy_name, seed=worker_id, program=executor.program)
        self.tree = ExecutionTree()
        self.candidates: Dict[int, TreeNode] = {}
        self.stats = WorkerStats(worker_id=worker_id)
        self.coverage_view = WorkerCoverageView(executor.program.line_count)
        self.bugs: List[BugReport] = []
        self.test_cases: List[TestCase] = []
        self.paths_completed = 0
        self.seeded = False
        # Recovered territories this worker re-explores (root, fence paths):
        # inside them, replay must not fence off-path siblings -- they are
        # ours to explore, not "being explored elsewhere" (§2.3 recovery).
        self._recovered_regions: List[Tuple[Tuple[int, ...],
                                            Tuple[Tuple[int, ...], ...]]] = []

    # -- frontier bookkeeping ----------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Length of the exploration-job queue reported to the load balancer."""
        return len(self.candidates)

    @property
    def has_work(self) -> bool:
        return bool(self.candidates)

    def frontier_paths(self) -> Set[Tuple[int, ...]]:
        """Paths of all candidate nodes (used to check disjointness/completeness)."""
        return {tuple(node.path_from_root()) for node in self.candidates.values()}

    def _add_candidate(self, node: TreeNode) -> None:
        self.candidates[node.node_id] = node

    def _remove_candidate(self, node: TreeNode) -> None:
        self.candidates.pop(node.node_id, None)

    # -- seeding -----------------------------------------------------------------------

    def seed(self) -> None:
        """Receive the initial job covering the entire execution tree (§3.1)."""
        state = self.state_factory(self.executor)
        self.tree.root.materialize(state)
        self.tree.root.mark_candidate()
        self._add_candidate(self.tree.root)
        self.seeded = True

    def unseed(self) -> None:
        """Drop the frontier so checkpointed jobs can be imported instead.

        Used when a cluster resumes from a :class:`~repro.cluster.checkpoint.
        ClusterCheckpoint`: the worker starts from an empty tree and receives
        its share of the checkpointed frontier as ordinary job imports.
        """
        self.candidates.clear()
        self.tree = ExecutionTree()
        self.tree.root.status = NodeStatus.VIRTUAL
        self.tree.root.mark_dead()
        self._recovered_regions.clear()
        self.seeded = False

    # -- exploration -------------------------------------------------------------------

    def explore(self, instruction_budget: int) -> int:
        """Run exploration for up to ``instruction_budget`` instructions.

        Returns the budget actually consumed (instructions executed plus a
        unit charge for pure scheduling/replay-management steps, so a worker
        whose states only reschedule still makes bounded progress per round).
        """
        consumed = 0
        while consumed < instruction_budget and self.candidates:
            node = self.strategy.select(self.tree, list(self.candidates.values()))
            if node.is_virtual:
                consumed += max(self._replay_node(node), 1)
                continue
            consumed += max(self._explore_node(node), 1)
        return consumed

    def _explore_node(self, node: TreeNode) -> int:
        state = node.state
        bugs_before = len(self.executor.bugs)
        tests_before = len(self.executor.test_cases)
        paths_before = self.executor.paths_completed

        result = self.executor.step(state)
        self.stats.useful_instructions += result.instructions
        if result.instructions == 0:
            self.stats.schedule_steps += 1

        self.bugs.extend(self.executor.bugs[bugs_before:])
        self.test_cases.extend(self.executor.test_cases[tests_before:])
        self.paths_completed += self.executor.paths_completed - paths_before

        newly_covered: Set[int] = set()
        for child in result.children:
            newly_covered.update(child.coverage)
        self.coverage_view.cover(newly_covered)
        self.strategy.notify_covered(newly_covered)

        self._apply_step_to_tree(node, result)
        return result.instructions

    def _apply_step_to_tree(self, node: TreeNode, result: StepResult) -> None:
        children = result.children
        if len(children) == 1 and children[0] is node.state:
            if not children[0].is_running:
                node.mark_dead()
                self._remove_candidate(node)
            return
        self._remove_candidate(node)
        for index, child_state in enumerate(children):
            child_node = node.children.get(index)
            if child_node is None:
                child_node = node.add_child(index)
            elif child_node.is_fence:
                # The subtree below this child belongs to another worker --
                # either a fence installed by replay or one shipped with a
                # recovered job (a dead worker's ceded subtree).  Leave it.
                continue
            elif child_node.is_dead and child_node.is_materialized:
                # Explored to completion here earlier (its paths are already
                # counted); reachable again only by re-stepping a revived
                # ancestor -- a bounced job or a recovered subtree whose
                # fence-protected part this worker finished meanwhile.
                continue
            if child_state.is_running:
                child_node.materialize(child_state)
                child_node.mark_candidate()
                self._add_candidate(child_node)
            else:
                child_node.materialize(None)
                child_node.mark_dead()
        node.mark_dead()

    # -- replay of virtual nodes ------------------------------------------------------------

    def _replay_node(self, node: TreeNode) -> int:
        """Materialize a virtual candidate by replaying its path from the root."""
        path = node.path_from_root()
        self.stats.replays += 1

        bugs_before = len(self.executor.bugs)
        tests_before = len(self.executor.test_cases)
        paths_before = self.executor.paths_completed
        instructions_before = self.executor.total_instructions
        solver_before = self.executor.solver.stats.snapshot()

        outcome = replay_path(self.executor, self.state_factory, path)

        # Work done during replay is accounted as replay (non-useful) work,
        # and anything "discovered" along the replayed prefix was already
        # discovered by the worker that explored it first.
        del self.executor.bugs[bugs_before:]
        del self.executor.test_cases[tests_before:]
        self.executor.paths_completed = paths_before
        replayed = self.executor.total_instructions - instructions_before
        self.stats.replay_instructions += replayed
        solver_delta = self.executor.solver.stats.delta_since(solver_before)
        self.stats.replay_solver_queries += solver_delta["queries"]
        self.stats.replay_cache_hits += solver_delta["cache_hits"]

        if not outcome.succeeded:
            self.stats.broken_replays += 1
            node.mark_dead()
            self._remove_candidate(node)
            return max(outcome.instructions, 1)

        # Interior nodes along the path are dead; off-path siblings are fences.
        interior = self.tree.root
        for index in path[:-1]:
            child = interior.children.get(index)
            if child is None:
                child = interior.add_child(index, status=NodeStatus.VIRTUAL,
                                           life=NodeLife.DEAD)
            interior = child
            if interior.node_id in self.candidates:
                # One of our own candidates sits on the replayed path (it
                # can only happen inside a recovered territory): killing it
                # would orphan its state; stepping it later covers the same
                # interior fork anyway.
                continue
            if not interior.is_dead:
                interior.mark_dead()
        for fence_path, fence_state in outcome.fence_states:
            if self._ours_to_explore(fence_path):
                # The sibling lies inside territory this worker recovered:
                # it is not "being explored elsewhere" -- re-exploration of
                # the recovered root will reach it as a normal candidate.
                continue
            fence_node = self.tree.ensure_path(list(fence_path),
                                               status=NodeStatus.MATERIALIZED,
                                               life=NodeLife.FENCE)
            if fence_node.node_id in self.candidates:
                # Never demote one of our own candidates to a fence.
                continue
            fence_node.state = fence_state
            if not fence_node.is_fence:
                fence_node.mark_fence()

        node.materialize(outcome.state)
        if not node.is_candidate:
            node.mark_candidate()
            self._add_candidate(node)
        return max(outcome.instructions, 1)

    # -- job transfer -----------------------------------------------------------------------

    def export_jobs(self, count: int) -> JobTree:
        """Give away up to ``count`` candidate nodes as a path-encoded job tree.

        Exported nodes become fence nodes locally (they are now on the
        boundary between this worker's work and the destination's), which
        prevents redundant exploration (§3.2).
        """
        if count <= 0 or not self.candidates:
            return JobTree()
        # Prefer to part with the most recently created (deepest) candidates:
        # the local strategy tends to be working near the older/shallower part
        # of its frontier, so these are the least disruptive to give away.
        ordered = sorted(self.candidates.values(), key=lambda n: -n.node_id)
        selected = ordered[:count]
        jobs: List[Job] = []
        for node in selected:
            jobs.append(Job(tuple(node.path_from_root())))
            node.mark_fence()
            self._remove_candidate(node)
            self.stats.jobs_exported += 1
        job_tree = JobTree.from_jobs(jobs)
        self.stats.transfers += 1
        self.stats.transfer_encoded_nodes += job_tree.encoded_size()
        self.stats.transfer_naive_nodes += JobTree.naive_size(jobs)
        return job_tree

    def import_jobs(self, job_tree: JobTree,
                    fence_paths: Sequence[Sequence[int]] = (),
                    recovered: bool = False) -> int:
        """Add the leaves of an incoming job tree to the frontier as virtual nodes.

        Recovered jobs (``recovered=True``, a dead worker's re-queued
        territory, §2.3) take the dedicated path below: the local tree may
        hold arbitrary stale bookkeeping inside the recovered subtree --
        replay-time fence shells for work the *dead* worker was doing, dead
        interiors from old imports -- which must be re-explored, while the
        ``fence_paths`` (subtrees live workers own, possibly this very
        worker) must not be.
        """
        imported = 0
        if recovered:
            for job in job_tree.jobs():
                imported += self._import_recovered_job(job.path, fence_paths)
            return imported
        for job in job_tree.jobs():
            node = self.tree.ensure_path(list(job.path),
                                         status=NodeStatus.VIRTUAL,
                                         life=NodeLife.CANDIDATE)
            if node.is_dead or node.is_fence:
                # The node was already explored here (can only happen if the
                # same path bounced back); revive it as a candidate.
                node.mark_candidate()
            if node.is_materialized and node.state is None:
                # A shell without a program state (e.g. the root of a
                # freshly reset tree, or a node killed by mark_dead): force
                # a replay instead of stepping a missing state.
                node.status = NodeStatus.VIRTUAL
            if node.node_id not in self.candidates:
                self._add_candidate(node)
                imported += 1
                self.stats.jobs_imported += 1
        return imported

    def _import_recovered_job(self, path: Sequence[int],
                              fence_paths: Sequence[Sequence[int]]) -> int:
        """Install one recovered territory root, fencing off live work.

        The local view inside ``subtree(path)`` is *about the dead worker's
        exploration*, not ours: fence shells recorded while replaying jobs
        the dead worker once ceded to us, virtual-dead interiors from those
        imports, and so on.  Everything not protected by a fence path is
        discarded so the replayed root re-explores it from scratch;
        fence-path subtrees (live workers' territory -- including our own
        completed or pending work) are preserved and fenced.
        """
        root_path = tuple(path)
        fences = {tuple(f) for f in fence_paths}
        self._prune_recovered_regions()
        self._recovered_regions.append((root_path, tuple(sorted(fences))))
        node = self.tree.ensure_path(list(root_path),
                                     status=NodeStatus.VIRTUAL,
                                     life=NodeLife.CANDIDATE)
        self._reset_recovered_subtree(node, root_path, fences)
        for fence in fences:
            if self.tree.node_at(list(fence)) is None:
                self.tree.ensure_path(list(fence), status=NodeStatus.VIRTUAL,
                                      life=NodeLife.FENCE)
        # The root always replays from scratch: any state it carried (e.g.
        # an export-time snapshot from when *we* ceded it) describes the
        # subtree before the dead worker explored it, and replay is the one
        # mechanism guaranteed to rebuild a consistent frontier from a path.
        node.state = None
        node.status = NodeStatus.VIRTUAL
        if not node.is_candidate:
            node.mark_candidate()
        if node.node_id not in self.candidates:
            self._add_candidate(node)
            self.stats.jobs_imported += 1
            self.stats.jobs_recovered += 1
            return 1
        return 0

    def _reset_recovered_subtree(self, root: TreeNode, root_path: Tuple[int, ...],
                                 fences: Set[Tuple[int, ...]]) -> None:
        # Interior nodes on the way from the root down to a fence survive
        # (re-exploration steps through them); everything else below the
        # root is discarded.
        keep_interior: Set[Tuple[int, ...]] = set()
        for fence in fences:
            for depth in range(len(root_path) + 1, len(fence)):
                keep_interior.add(fence[:depth])

        def walk(node: TreeNode, node_path: Tuple[int, ...]) -> None:
            for index in list(node.children):
                child = node.children[index]
                child_path = node_path + (index,)
                if child_path in fences:
                    # Live territory (possibly our own): keep it whole, and
                    # make sure stepping past it never re-enters -- unless
                    # it is our own pending candidate, which stays one.
                    if (child.node_id not in self.candidates
                            and not child.is_fence):
                        child.mark_fence()
                    continue
                if child_path in keep_interior:
                    walk(child, child_path)
                    continue
                self._discard_subtree(child)
                del node.children[index]
                child.parent = None

        walk(root, root_path)

    def _discard_subtree(self, node: TreeNode) -> None:
        """Drop a stale subtree, keeping candidate bookkeeping consistent."""
        for stale in node.iter_subtree():
            self.candidates.pop(stale.node_id, None)
            if not stale.is_dead:
                stale.mark_dead()  # fixes ancestor candidate counts, drops state

    def _prune_recovered_regions(self) -> None:
        """Drop recovered regions whose re-exploration has finished.

        A region stays interesting only while candidates remain inside it
        (the tree's per-subtree candidate counts make the check O(depth));
        once drained, normal fence/dead bookkeeping covers it, and keeping
        it would make ``_ours_to_explore`` scans grow with worker churn.
        """
        live = []
        for root, fences in self._recovered_regions:
            node = self.tree.node_at(list(root))
            if node is not None and node.candidate_count > 0:
                live.append((root, fences))
        self._recovered_regions[:] = live

    def _ours_to_explore(self, path: Sequence[int]) -> bool:
        """Whether ``path`` lies inside a recovered territory of this worker
        (and outside the fence subtrees carved out of it)."""
        path = tuple(path)

        def within(p, root):
            return len(p) >= len(root) and p[:len(root)] == root

        for root, fences in self._recovered_regions:
            if within(path, root) and not any(within(path, f) for f in fences):
                return True
        return False

    # -- messaging ----------------------------------------------------------------------------

    def send_status(self, transport: Transport, round_index: int) -> None:
        transport.send(Message(
            kind=MessageKind.STATUS_UPDATE,
            sender=self.worker_id,
            recipient=LOAD_BALANCER_ID,
            payload={
                "queue_length": self.queue_length,
                "useful_instructions": self.stats.useful_instructions,
                "coverage_bits": self.coverage_view.snapshot_bits(),
                "round": round_index,
            },
        ))

    def handle_messages(self, transport: Transport) -> int:
        """Process all pending messages; returns the number of states received."""
        states_received = 0
        for message in transport.receive_all(self.worker_id):
            if message.kind == MessageKind.TRANSFER_REQUEST:
                destination = int(message.payload["destination"])
                count = int(message.payload["job_count"])
                job_tree = self.export_jobs(count)
                if len(job_tree):
                    transport.send(Message(
                        kind=MessageKind.JOB_TRANSFER,
                        sender=self.worker_id,
                        recipient=destination,
                        payload={"jobs": job_tree.encode(),
                                 "count": len(job_tree)},
                    ), size_hint=job_tree.encoded_size())
            elif message.kind == MessageKind.JOB_TRANSFER:
                job_tree = JobTree.decode(message.payload["jobs"])
                states_received += self.import_jobs(job_tree)
            elif message.kind == MessageKind.COVERAGE_UPDATE:
                bits = int(message.payload["coverage_bits"])
                new_lines = self.coverage_view.merge_global(bits)
                self.strategy.merge_global_coverage(new_lines)
        return states_received
