"""Cloud9 worker nodes (paper §3.2).

A worker owns a local view of the execution tree rooted at the global root.
Its *frontier* is the set of candidate nodes; the work-transfer protocol
guarantees frontiers are pairwise disjoint and that their union is the global
exploration frontier.  A worker:

* explores materialized candidates by stepping their states,
* lazily replays virtual candidates received in jobs,
* exports candidate nodes as path-encoded jobs when asked by the load
  balancer (the exported node becomes a fence node locally),
* imports job trees from other workers (their leaves become virtual
  candidates), and
* periodically reports its queue length and coverage to the load balancer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.jobs import Job, JobTree
from repro.cluster.replay import replay_path
from repro.cluster.stats import WorkerStats
from repro.cluster.overlay import WorkerCoverageView
from repro.cluster.transport import LOAD_BALANCER_ID, Message, MessageKind, Transport
from repro.engine.errors import BugReport
from repro.engine.executor import StepResult, SymbolicExecutor
from repro.engine.state import ExecutionState
from repro.engine.strategies import SearchStrategy, make_strategy
from repro.engine.test_case import TestCase
from repro.engine.tree import ExecutionTree, NodeLife, NodeStatus, TreeNode

StateFactory = Callable[[SymbolicExecutor], ExecutionState]

#: Strategy used when neither a config nor a symbolic test names one.
DEFAULT_STRATEGY = "interleaved"


class Worker:
    """One cluster node running an independent symbolic execution engine."""

    def __init__(self, worker_id: int, executor: SymbolicExecutor,
                 state_factory: StateFactory,
                 strategy: Optional[SearchStrategy] = None,
                 strategy_name: str = DEFAULT_STRATEGY):
        if worker_id == LOAD_BALANCER_ID:
            raise ValueError("worker id 0 is reserved for the load balancer")
        self.worker_id = worker_id
        self.executor = executor
        self.state_factory = state_factory
        self.strategy = strategy or make_strategy(
            strategy_name, seed=worker_id, program=executor.program)
        self.tree = ExecutionTree()
        self.candidates: Dict[int, TreeNode] = {}
        self.stats = WorkerStats(worker_id=worker_id)
        self.coverage_view = WorkerCoverageView(executor.program.line_count)
        self.bugs: List[BugReport] = []
        self.test_cases: List[TestCase] = []
        self.paths_completed = 0
        self.seeded = False

    # -- frontier bookkeeping ----------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Length of the exploration-job queue reported to the load balancer."""
        return len(self.candidates)

    @property
    def has_work(self) -> bool:
        return bool(self.candidates)

    def frontier_paths(self) -> Set[Tuple[int, ...]]:
        """Paths of all candidate nodes (used to check disjointness/completeness)."""
        return {tuple(node.path_from_root()) for node in self.candidates.values()}

    def _add_candidate(self, node: TreeNode) -> None:
        self.candidates[node.node_id] = node

    def _remove_candidate(self, node: TreeNode) -> None:
        self.candidates.pop(node.node_id, None)

    # -- seeding -----------------------------------------------------------------------

    def seed(self) -> None:
        """Receive the initial job covering the entire execution tree (§3.1)."""
        state = self.state_factory(self.executor)
        self.tree.root.materialize(state)
        self.tree.root.mark_candidate()
        self._add_candidate(self.tree.root)
        self.seeded = True

    # -- exploration -------------------------------------------------------------------

    def explore(self, instruction_budget: int) -> int:
        """Run exploration for up to ``instruction_budget`` instructions.

        Returns the budget actually consumed (instructions executed plus a
        unit charge for pure scheduling/replay-management steps, so a worker
        whose states only reschedule still makes bounded progress per round).
        """
        consumed = 0
        while consumed < instruction_budget and self.candidates:
            node = self.strategy.select(self.tree, list(self.candidates.values()))
            if node.is_virtual:
                consumed += max(self._replay_node(node), 1)
                continue
            consumed += max(self._explore_node(node), 1)
        return consumed

    def _explore_node(self, node: TreeNode) -> int:
        state = node.state
        bugs_before = len(self.executor.bugs)
        tests_before = len(self.executor.test_cases)
        paths_before = self.executor.paths_completed

        result = self.executor.step(state)
        self.stats.useful_instructions += result.instructions
        if result.instructions == 0:
            self.stats.schedule_steps += 1

        self.bugs.extend(self.executor.bugs[bugs_before:])
        self.test_cases.extend(self.executor.test_cases[tests_before:])
        self.paths_completed += self.executor.paths_completed - paths_before

        newly_covered: Set[int] = set()
        for child in result.children:
            newly_covered.update(child.coverage)
        self.coverage_view.cover(newly_covered)
        self.strategy.notify_covered(newly_covered)

        self._apply_step_to_tree(node, result)
        return result.instructions

    def _apply_step_to_tree(self, node: TreeNode, result: StepResult) -> None:
        children = result.children
        if len(children) == 1 and children[0] is node.state:
            if not children[0].is_running:
                node.mark_dead()
                self._remove_candidate(node)
            return
        self._remove_candidate(node)
        for index, child_state in enumerate(children):
            child_node = node.children.get(index)
            if child_node is None:
                child_node = node.add_child(index)
            if child_state.is_running:
                child_node.materialize(child_state)
                child_node.mark_candidate()
                self._add_candidate(child_node)
            else:
                child_node.materialize(None)
                child_node.mark_dead()
        node.mark_dead()

    # -- replay of virtual nodes ------------------------------------------------------------

    def _replay_node(self, node: TreeNode) -> int:
        """Materialize a virtual candidate by replaying its path from the root."""
        path = node.path_from_root()
        self.stats.replays += 1

        bugs_before = len(self.executor.bugs)
        tests_before = len(self.executor.test_cases)
        paths_before = self.executor.paths_completed
        instructions_before = self.executor.total_instructions
        solver_before = self.executor.solver.stats.snapshot()

        outcome = replay_path(self.executor, self.state_factory, path)

        # Work done during replay is accounted as replay (non-useful) work,
        # and anything "discovered" along the replayed prefix was already
        # discovered by the worker that explored it first.
        del self.executor.bugs[bugs_before:]
        del self.executor.test_cases[tests_before:]
        self.executor.paths_completed = paths_before
        replayed = self.executor.total_instructions - instructions_before
        self.stats.replay_instructions += replayed
        solver_delta = self.executor.solver.stats.delta_since(solver_before)
        self.stats.replay_solver_queries += solver_delta["queries"]
        self.stats.replay_cache_hits += solver_delta["cache_hits"]

        if not outcome.succeeded:
            self.stats.broken_replays += 1
            node.mark_dead()
            self._remove_candidate(node)
            return max(outcome.instructions, 1)

        # Interior nodes along the path are dead; off-path siblings are fences.
        interior = self.tree.root
        for index in path[:-1]:
            child = interior.children.get(index)
            if child is None:
                child = interior.add_child(index, status=NodeStatus.VIRTUAL,
                                           life=NodeLife.DEAD)
            interior = child
            if not interior.is_dead:
                interior.mark_dead()
        for fence_path, fence_state in outcome.fence_states:
            fence_node = self.tree.ensure_path(list(fence_path),
                                               status=NodeStatus.MATERIALIZED,
                                               life=NodeLife.FENCE)
            if fence_node.node_id in self.candidates:
                # Never demote one of our own candidates to a fence.
                continue
            fence_node.state = fence_state
            if not fence_node.is_fence:
                fence_node.mark_fence()

        node.materialize(outcome.state)
        if not node.is_candidate:
            node.mark_candidate()
            self._add_candidate(node)
        return max(outcome.instructions, 1)

    # -- job transfer -----------------------------------------------------------------------

    def export_jobs(self, count: int) -> JobTree:
        """Give away up to ``count`` candidate nodes as a path-encoded job tree.

        Exported nodes become fence nodes locally (they are now on the
        boundary between this worker's work and the destination's), which
        prevents redundant exploration (§3.2).
        """
        if count <= 0 or not self.candidates:
            return JobTree()
        # Prefer to part with the most recently created (deepest) candidates:
        # the local strategy tends to be working near the older/shallower part
        # of its frontier, so these are the least disruptive to give away.
        ordered = sorted(self.candidates.values(), key=lambda n: -n.node_id)
        selected = ordered[:count]
        jobs: List[Job] = []
        for node in selected:
            jobs.append(Job(tuple(node.path_from_root())))
            node.mark_fence()
            self._remove_candidate(node)
            self.stats.jobs_exported += 1
        job_tree = JobTree.from_jobs(jobs)
        self.stats.transfers += 1
        self.stats.transfer_encoded_nodes += job_tree.encoded_size()
        self.stats.transfer_naive_nodes += JobTree.naive_size(jobs)
        return job_tree

    def import_jobs(self, job_tree: JobTree) -> int:
        """Add the leaves of an incoming job tree to the frontier as virtual nodes."""
        imported = 0
        for job in job_tree.jobs():
            node = self.tree.ensure_path(list(job.path),
                                         status=NodeStatus.VIRTUAL,
                                         life=NodeLife.CANDIDATE)
            if node.is_dead or node.is_fence:
                # The node was already explored here (can only happen if the
                # same path bounced back); revive it as a candidate.
                node.mark_candidate()
            if node.node_id not in self.candidates:
                self._add_candidate(node)
                imported += 1
                self.stats.jobs_imported += 1
        return imported

    # -- messaging ----------------------------------------------------------------------------

    def send_status(self, transport: Transport, round_index: int) -> None:
        transport.send(Message(
            kind=MessageKind.STATUS_UPDATE,
            sender=self.worker_id,
            recipient=LOAD_BALANCER_ID,
            payload={
                "queue_length": self.queue_length,
                "useful_instructions": self.stats.useful_instructions,
                "coverage_bits": self.coverage_view.snapshot_bits(),
                "round": round_index,
            },
        ))

    def handle_messages(self, transport: Transport) -> int:
        """Process all pending messages; returns the number of states received."""
        states_received = 0
        for message in transport.receive_all(self.worker_id):
            if message.kind == MessageKind.TRANSFER_REQUEST:
                destination = int(message.payload["destination"])
                count = int(message.payload["job_count"])
                job_tree = self.export_jobs(count)
                if len(job_tree):
                    transport.send(Message(
                        kind=MessageKind.JOB_TRANSFER,
                        sender=self.worker_id,
                        recipient=destination,
                        payload={"jobs": job_tree.encode(),
                                 "count": len(job_tree)},
                    ), size_hint=job_tree.encoded_size())
            elif message.kind == MessageKind.JOB_TRANSFER:
                job_tree = JobTree.decode(message.payload["jobs"])
                states_received += self.import_jobs(job_tree)
            elif message.kind == MessageKind.COVERAGE_UPDATE:
                bits = int(message.payload["coverage_bits"])
                new_lines = self.coverage_view.merge_global(bits)
                self.strategy.merge_global_coverage(new_lines)
        return states_received
