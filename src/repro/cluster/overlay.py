"""Execution-tree overlays; concretely, the global coverage bit vector.

Section 3.3: "Global strategies are implemented in Cloud9 using its interface
for building overlays on the execution tree structure. [...] coverage is
represented as a bit vector, with one bit for every line of code [...] The
current version of the bit vector is piggybacked on the status updates sent
to the load balancer.  The LB maintains the current global coverage vector
and, when it receives an updated coverage bit vector, ORs it into the current
global coverage.  The result is then sent back to the worker, which in turn
ORs this global bit vector into its own."
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.engine.coverage import CoverageBitVector


class CoverageOverlay:
    """The load-balancer side of the coverage overlay."""

    def __init__(self, line_count: int):
        self.line_count = line_count
        self.global_vector = CoverageBitVector(line_count)
        self.updates_received = 0

    def merge_from_worker(self, worker_bits: int) -> int:
        """OR a worker's vector into the global one; return the merged bits."""
        self.updates_received += 1
        incoming = CoverageBitVector(self.line_count, worker_bits)
        self.global_vector.or_with(incoming)
        return self.global_vector.as_int()

    @property
    def covered_count(self) -> int:
        return self.global_vector.count()

    @property
    def coverage_percent(self) -> float:
        return self.global_vector.percent()

    def covered_lines(self) -> Set[int]:
        return self.global_vector.covered_lines()


class WorkerCoverageView:
    """The worker side: local coverage plus the last global vector received."""

    def __init__(self, line_count: int):
        self.line_count = line_count
        self.local = CoverageBitVector(line_count)
        self.global_view = CoverageBitVector(line_count)

    def cover(self, lines: Iterable[int]) -> None:
        for line in lines:
            self.local.set(line)

    def snapshot_bits(self) -> int:
        """Bits to piggyback on the next status update."""
        return self.local.as_int()

    def merge_global(self, bits: int) -> Set[int]:
        """OR the LB's merged vector into the local view; return new lines.

        "New" means new *to this worker*: lines the load balancer learned
        from other workers that are neither in our local vector nor in any
        global vector received before.  (An earlier version ORed ``local``
        into ``global_view`` before comparing counts, so purely local growth
        was misreported as LB-driven change while the returned line set --
        computed against ``local`` only -- could simultaneously be empty.)
        """
        incoming = CoverageBitVector(self.line_count, bits)
        known = self.global_view.union(self.local)
        new_lines = incoming.difference(known).covered_lines()
        self.global_view.or_with(incoming)
        return new_lines

    def known_covered(self) -> Set[int]:
        return self.global_view.union(self.local).covered_lines()
