"""A static-partitioning baseline, for comparison with dynamic balancing.

Section 2 of the paper explains why Cloud9 does *not* statically divide the
execution tree: "when running on large programs, this approach leads to high
workload imbalance among nodes, making the entire cluster proceed at the pace
of the slowest node"; §8 discusses the same limitation in the static-
partitioning parallel JPF of Staats & Pasareanu [2010].

This module implements that baseline so the claim can be measured on the same
substrate (see ``benchmarks/bench_ablation_static_vs_dynamic.py``):

1. a short *bootstrap* exploration expands the tree from the root until it
   has at least one frontier state per requested partition (this mimics the
   offline pre-computation of disjoint preconditions);
2. the frontier states' fork-trace prefixes are dealt round-robin to the
   workers, each worker importing its share as path-encoded jobs exactly as a
   Cloud9 worker would;
3. the workers then explore **independently**: no load balancer, no job
   transfers, no coverage overlay.  A worker that exhausts its partition
   early simply idles, which is precisely the imbalance the paper's dynamic
   approach removes.

The run loop mirrors :class:`~repro.cluster.coordinator.Cloud9Cluster`'s
virtual-time rounds and produces the same :class:`ClusterResult`, so the two
approaches can be compared metric for metric.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Set, Tuple

from repro.cluster.coordinator import (
    ClusterResult,
    ExecutorFactory,
    StateFactory,
    _dedupe_bugs,
)
from repro.cluster.jobs import Job, JobTree
from repro.cluster.stats import RoundSnapshot, TransferCost
from repro.cluster.worker import DEFAULT_STRATEGY, Worker
from repro.engine.errors import BugReport
from repro.engine.limits import ExplorationLimits, effective_limits
from repro.engine.test_case import TestCase
from repro.solver.cache import aggregate_cache_counters


@dataclass
class StaticPartitionConfig:
    """Configuration of the static-partitioning baseline."""

    num_workers: int = 2
    instructions_per_round: int = 500
    # How many partitions to carve out per worker during the bootstrap split.
    partitions_per_worker: int = 1
    # Hard limits on the bootstrap exploration itself.
    max_bootstrap_steps: int = 2_000
    # None = "resolve at build time", same contract as ClusterConfig.strategy.
    strategy: Optional[str] = None
    max_rounds: int = 10_000

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.instructions_per_round < 1:
            raise ValueError("instructions_per_round must be positive")
        if self.partitions_per_worker < 1:
            raise ValueError("partitions_per_worker must be positive")


@dataclass
class BootstrapOutcome:
    """What the pre-partitioning exploration produced."""

    prefixes: List[Tuple[int, ...]]
    instructions: int = 0
    paths_completed: int = 0
    bugs: List[BugReport] = None
    test_cases: List[TestCase] = None
    covered_lines: Set[int] = None

    def __post_init__(self) -> None:
        self.bugs = self.bugs or []
        self.test_cases = self.test_cases or []
        self.covered_lines = self.covered_lines or set()


class StaticPartitionCluster:
    """Statically partitioned parallel symbolic execution (the §2 strawman)."""

    def __init__(self, executor_factory: ExecutorFactory,
                 state_factory: StateFactory,
                 config: Optional[StaticPartitionConfig] = None):
        self.config = config or StaticPartitionConfig()
        self.executor_factory = executor_factory
        self.state_factory = state_factory
        self.workers: List[Worker] = []
        self.bootstrap: Optional[BootstrapOutcome] = None
        self._build()

    # -- bootstrap split ------------------------------------------------------------

    def _bootstrap_split(self) -> BootstrapOutcome:
        """Expand the tree breadth-first until there is work for every worker."""
        config = self.config
        wanted = config.num_workers * config.partitions_per_worker
        executor = self.executor_factory()
        frontier: Deque = deque([self.state_factory(executor)])
        steps = 0

        while frontier and len(frontier) < wanted and steps < config.max_bootstrap_steps:
            state = frontier.popleft()
            result = executor.step(state)
            steps += 1
            for child in result.children:
                if child.is_running:
                    frontier.append(child)

        prefixes = [tuple(state.fork_trace) for state in frontier]
        return BootstrapOutcome(
            prefixes=prefixes,
            instructions=executor.total_instructions,
            paths_completed=executor.paths_completed,
            bugs=list(executor.bugs),
            test_cases=list(executor.test_cases),
            covered_lines=set(executor.covered_lines),
        )

    def _build(self) -> None:
        self.bootstrap = self._bootstrap_split()
        for index in range(self.config.num_workers):
            worker_id = index + 1
            executor = self.executor_factory()
            worker = Worker(worker_id, executor, self.state_factory,
                            strategy_name=self.config.strategy or DEFAULT_STRATEGY)
            self.workers.append(worker)
        # Deal the partition prefixes round-robin; nothing will ever move
        # between workers afterwards.
        per_worker: List[List[Job]] = [[] for _ in self.workers]
        for i, prefix in enumerate(self.bootstrap.prefixes):
            per_worker[i % len(self.workers)].append(Job(tuple(prefix)))
        for worker, jobs in zip(self.workers, per_worker):
            if jobs:
                worker.import_jobs(JobTree.from_jobs(jobs))

    # -- helpers -----------------------------------------------------------------------

    def _total_candidates(self) -> int:
        return sum(w.queue_length for w in self.workers)

    def _all_covered_lines(self) -> Set[int]:
        covered: Set[int] = set(self.bootstrap.covered_lines)
        for worker in self.workers:
            covered.update(worker.executor.covered_lines)
        return covered

    def idle_worker_count(self) -> int:
        """Workers with nothing left to do (the imbalance the paper measures)."""
        return sum(1 for w in self.workers if not w.has_work)

    # -- main loop -----------------------------------------------------------------------

    def run(self, max_rounds: Optional[int] = None,
            target_coverage_percent: Optional[float] = None,
            max_paths: Optional[int] = None,
            stop_on_first_bug: bool = False,
            max_wall_time: Optional[float] = None,
            max_instructions: Optional[int] = None,
            limits: Optional[ExplorationLimits] = None) -> ClusterResult:
        """Run rounds until exhaustion, a goal, or a budget is spent.

        Accepts the same ``limits`` bundle as
        :meth:`~repro.cluster.coordinator.Cloud9Cluster.run`.
        """
        lim = effective_limits(limits, max_rounds=max_rounds,
                               coverage_target=target_coverage_percent,
                               max_paths=max_paths,
                               stop_on_first_bug=stop_on_first_bug,
                               max_wall_time=max_wall_time,
                               max_instructions=max_instructions)
        max_rounds, target_coverage_percent = lim.max_rounds, lim.coverage_target
        max_paths, stop_on_first_bug = lim.max_paths, lim.stop_on_first_bug
        max_wall_time, max_instructions = lim.max_wall_time, lim.max_instructions
        config = self.config
        limit = max_rounds if max_rounds is not None else config.max_rounds
        line_count = self.workers[0].executor.program.line_count
        result = ClusterResult(num_workers=config.num_workers,
                               line_count=line_count)
        start = time.monotonic()
        instructions_executed = 0

        round_index = 0
        while round_index < limit:
            useful_before = sum(w.stats.useful_instructions for w in self.workers)
            replay_before = sum(w.stats.replay_instructions for w in self.workers)
            for worker in self.workers:
                if worker.has_work:
                    worker.explore(config.instructions_per_round)
            useful_delta = sum(w.stats.useful_instructions for w in self.workers) - useful_before
            replay_delta = sum(w.stats.replay_instructions for w in self.workers) - replay_before
            instructions_executed += useful_delta + replay_delta

            covered = self._all_covered_lines()
            coverage_percent = 100.0 * len(covered) / line_count if line_count else 0.0
            paths_completed = (self.bootstrap.paths_completed
                               + sum(w.paths_completed for w in self.workers))
            bugs_found = (len(self.bootstrap.bugs)
                          + sum(len(w.bugs) for w in self.workers))
            result.timeline.record(RoundSnapshot(
                round_index=round_index,
                queue_lengths={w.worker_id: w.queue_length for w in self.workers},
                total_candidates=self._total_candidates(),
                states_transferred=0,
                useful_instructions=useful_delta,
                replay_instructions=replay_delta,
                covered_lines=len(covered),
                coverage_percent=coverage_percent,
                paths_completed=paths_completed,
                bugs_found=bugs_found,
                load_balancing_enabled=False,
                elapsed=time.monotonic() - start,
            ))
            round_index += 1

            if target_coverage_percent is not None and coverage_percent >= target_coverage_percent:
                result.goal_reached = True
                break
            if max_paths is not None and paths_completed >= max_paths:
                result.goal_reached = True
                break
            if stop_on_first_bug and bugs_found:
                result.goal_reached = True
                break
            if self._total_candidates() == 0:
                result.exhausted = True
                break
            # Budget limits (spent, not reached: goal_reached stays False).
            if max_instructions is not None and instructions_executed >= max_instructions:
                break
            if max_wall_time is not None and time.monotonic() - start >= max_wall_time:
                break

        result.wall_time = time.monotonic() - start
        return self._finalize(result, round_index)

    def _finalize(self, result: ClusterResult, rounds: int) -> ClusterResult:
        result.rounds_executed = rounds
        result.paths_completed = (self.bootstrap.paths_completed
                                  + sum(w.paths_completed for w in self.workers))
        result.total_useful_instructions = (
            self.bootstrap.instructions
            + sum(w.stats.useful_instructions for w in self.workers))
        result.total_replay_instructions = sum(
            w.stats.replay_instructions for w in self.workers)
        result.covered_lines = self._all_covered_lines()
        result.coverage_percent = (100.0 * len(result.covered_lines) / result.line_count
                                   if result.line_count else 0.0)
        all_bugs: List[BugReport] = list(self.bootstrap.bugs)
        result.test_cases.extend(self.bootstrap.test_cases)
        for worker in self.workers:
            all_bugs.extend(worker.bugs)
            result.test_cases.extend(worker.test_cases)
            result.worker_stats[worker.worker_id] = worker.stats
        result.bugs = _dedupe_bugs(all_bugs)
        result.transfer_cost = TransferCost.from_worker_stats(
            result.worker_stats.values())
        result.cache_stats = aggregate_cache_counters(
            w.executor.solver.cache_counters() for w in self.workers)
        return result

    # -- invariants (used by the test suite) ---------------------------------------------

    def check_partition_disjointness(self) -> Tuple[bool, str]:
        """No candidate path may be owned by two workers (same as Cloud9)."""
        seen = {}
        for worker in self.workers:
            for path in worker.frontier_paths():
                if path in seen:
                    return False, ("path %s assigned to workers %d and %d"
                                   % (path, seen[path], worker.worker_id))
                seen[path] = worker.worker_id
        return True, ""
