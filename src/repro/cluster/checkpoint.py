"""Cluster checkpoints: enough state to resume a killed run.

A running cluster's durable state is small: the global exploration frontier
(as path-encoded jobs, the same representation transfers use, §3.2), the
global coverage bit vector (§3.3), cumulative result counters, and the
per-worker strategy seeds.  Program states are deliberately excluded -- a
resumed cluster re-materializes the frontier by replaying the paths, exactly
as a job transfer would.

Checkpoints serialize to plain JSON so a resumed run needs nothing beyond
the spec registry (process backend) or the test object (in-process backends)
to rebuild its programs.  Bug reports and generated test cases from before
the checkpoint stay in the interrupted run's result object; a resumed run
re-finds only what lies beyond the checkpointed frontier, while coverage and
cumulative path counts carry over.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["ClusterCheckpoint"]


@dataclass
class ClusterCheckpoint:
    """A resumable snapshot of one cluster run, taken between rounds."""

    #: Virtual-time round after which the snapshot was taken.
    round_index: int
    #: The global exploration frontier: every live worker's candidate paths.
    frontier_paths: List[Tuple[int, ...]]
    #: The load balancer's merged coverage bit vector, packed into an int.
    coverage_bits: int
    line_count: int
    #: Cumulative counters at checkpoint time (including any earlier resume).
    paths_completed: int = 0
    useful_instructions: int = 0
    replay_instructions: int = 0
    #: Per-worker counter snapshots (informational; not restored into workers).
    worker_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Search-strategy seeds per worker, recorded so an identical cluster can
    #: be rebuilt (workers deterministically seed by their worker id, so a
    #: same-shape resume reproduces them; the seeds are not pushed into the
    #: resumed workers).
    strategy_seeds: Dict[int, int] = field(default_factory=dict)
    #: Identity of the test this checkpoint belongs to, when known.
    spec_name: Optional[str] = None
    spec_params: Dict[str, object] = field(default_factory=dict)
    test_name: Optional[str] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        self.frontier_paths = [tuple(int(i) for i in path)
                               for path in self.frontier_paths]
        self.worker_stats = {int(k): dict(v)
                             for k, v in self.worker_stats.items()}
        self.strategy_seeds = {int(k): int(v)
                               for k, v in self.strategy_seeds.items()}

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        payload = asdict(self)
        payload["frontier_paths"] = [list(p) for p in self.frontier_paths]
        # JSON keys are strings; __post_init__ re-ints them on load.
        payload["coverage_bits"] = hex(self.coverage_bits)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterCheckpoint":
        payload = json.loads(text)
        payload["coverage_bits"] = int(payload["coverage_bits"], 16)
        return cls(**payload)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ClusterCheckpoint":
        with open(path) as handle:
            return cls.from_json(handle.read())

    @classmethod
    def coerce(cls, value: Union["ClusterCheckpoint", str]) -> "ClusterCheckpoint":
        """Accept either a checkpoint object or a path to a saved one."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.load(value)
        raise TypeError("resume_from must be a ClusterCheckpoint or a path, "
                        "got %r" % (type(value).__name__,))

    # -- convenience --------------------------------------------------------------

    @property
    def coverage_percent(self) -> float:
        if not self.line_count:
            return 0.0
        return 100.0 * bin(self.coverage_bits).count("1") / self.line_count

    def covered_lines(self) -> set:
        return {i for i in range(self.line_count)
                if self.coverage_bits >> i & 1}
