"""Cluster checkpoints: enough state to resume a killed run.

A running cluster's durable state is small: the global exploration frontier
(as path-encoded jobs, the same representation transfers use, §3.2), the
global coverage bit vector (§3.3), cumulative result counters, and the
per-worker strategy seeds.  Program states are deliberately excluded -- a
resumed cluster re-materializes the frontier by replaying the paths, exactly
as a job transfer would.

Checkpoints serialize to plain JSON so a resumed run needs nothing beyond
the spec registry (process backend) or the test object (in-process backends)
to rebuild its programs.  They are *self-contained*: bug reports and
generated test-case inputs found before the snapshot are persisted alongside
the frontier (``bug_reports`` / ``test_cases``), and the elapsed wall time
is carried in ``wall_time``, so a ``resume_from=`` run's final result
reports the pre-crash bugs and cumulative timing instead of only what the
resumed segment re-finds.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.engine.errors import BugKind, BugReport
from repro.engine.test_case import TestCase

__all__ = ["ClusterCheckpoint"]


@dataclass
class ClusterCheckpoint:
    """A resumable snapshot of one cluster run, taken between rounds."""

    #: Virtual-time round after which the snapshot was taken.
    round_index: int
    #: The global exploration frontier: every live worker's candidate paths.
    frontier_paths: List[Tuple[int, ...]]
    #: The load balancer's merged coverage bit vector, packed into an int.
    coverage_bits: int
    line_count: int
    #: Cumulative counters at checkpoint time (including any earlier resume).
    paths_completed: int = 0
    useful_instructions: int = 0
    replay_instructions: int = 0
    #: Cumulative wall-clock seconds spent exploring up to this snapshot
    #: (including segments before any earlier resume); a resumed run adds
    #: its own elapsed time on top when reporting ``ClusterResult.wall_time``.
    wall_time: float = 0.0
    #: Bug reports found before the snapshot, JSON-encoded via
    #: :meth:`encode_bug` (the nested test case, if any, is dropped; the
    #: generated inputs live in ``test_cases``).
    bug_reports: List[Dict[str, Any]] = field(default_factory=list)
    #: Generated test cases (concrete inputs) found before the snapshot,
    #: JSON-encoded via :meth:`encode_test_case`.
    test_cases: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-worker counter snapshots (informational; not restored into workers).
    worker_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Search-strategy seeds per worker, recorded so an identical cluster can
    #: be rebuilt (workers deterministically seed by their worker id, so a
    #: same-shape resume reproduces them; the seeds are not pushed into the
    #: resumed workers).
    strategy_seeds: Dict[int, int] = field(default_factory=dict)
    #: Identity of the test this checkpoint belongs to, when known.
    spec_name: Optional[str] = None
    spec_params: Dict[str, object] = field(default_factory=dict)
    test_name: Optional[str] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        self.frontier_paths = [tuple(int(i) for i in path)
                               for path in self.frontier_paths]
        self.worker_stats = {int(k): dict(v)
                             for k, v in self.worker_stats.items()}
        self.strategy_seeds = {int(k): int(v)
                               for k, v in self.strategy_seeds.items()}
        self.bug_reports = [dict(b) for b in self.bug_reports]
        self.test_cases = [dict(t) for t in self.test_cases]

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        payload = asdict(self)
        payload["frontier_paths"] = [list(p) for p in self.frontier_paths]
        # JSON keys are strings; __post_init__ re-ints them on load.
        payload["coverage_bits"] = hex(self.coverage_bits)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterCheckpoint":
        payload = json.loads(text)
        payload["coverage_bits"] = int(payload["coverage_bits"], 16)
        return cls(**payload)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ClusterCheckpoint":
        with open(path) as handle:
            return cls.from_json(handle.read())

    @classmethod
    def coerce(cls, value: Union["ClusterCheckpoint", str]) -> "ClusterCheckpoint":
        """Accept either a checkpoint object or a path to a saved one."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.load(value)
        raise TypeError("resume_from must be a ClusterCheckpoint or a path, "
                        "got %r" % (type(value).__name__,))

    # -- bug / test-case payloads (self-contained resume) --------------------------

    @staticmethod
    def encode_bug(bug: BugReport) -> Dict[str, object]:
        """JSON-safe form of a bug report (nested test case dropped)."""
        return {"kind": bug.kind.value, "message": bug.message,
                "state_id": bug.state_id, "line": bug.line,
                "function": bug.function}

    def decode_bugs(self) -> List[BugReport]:
        return [BugReport(kind=BugKind(str(entry["kind"])),
                          message=str(entry.get("message", "")),
                          state_id=int(entry.get("state_id", -1)),
                          line=entry.get("line"),
                          function=entry.get("function"))
                for entry in self.bug_reports]

    @staticmethod
    def encode_test_case(case: TestCase) -> Dict[str, object]:
        """JSON-safe form of a generated test case (bytes as hex)."""
        return {"state_id": case.state_id,
                "inputs": {name: value.hex()
                           for name, value in case.inputs.items()},
                "path_length": case.path_length,
                "fork_trace": list(case.fork_trace),
                "exit_code": case.exit_code,
                "is_error": case.is_error,
                "error_summary": case.error_summary}

    def decode_test_cases(self) -> List[TestCase]:
        cases: List[TestCase] = []
        for entry in self.test_cases:
            cases.append(TestCase(
                state_id=int(entry.get("state_id", -1)),
                inputs={name: bytes.fromhex(value) for name, value
                        in dict(entry.get("inputs", {})).items()},
                path_length=int(entry.get("path_length", 0)),
                fork_trace=[int(i) for i in entry.get("fork_trace", [])],
                exit_code=entry.get("exit_code"),
                is_error=bool(entry.get("is_error", False)),
                error_summary=entry.get("error_summary")))
        return cases

    # -- convenience --------------------------------------------------------------

    @property
    def coverage_percent(self) -> float:
        if not self.line_count:
            return 0.0
        return 100.0 * bin(self.coverage_bits).count("1") / self.line_count

    def covered_lines(self) -> Set[int]:
        return {i for i in range(self.line_count)
                if self.coverage_bits >> i & 1}
