"""The cluster runtime: workers, load balancer and virtual time.

The paper's prototype runs workers on separate machines and measures wall
clock.  This reproduction runs the same protocol on a simulated fabric with a
*virtual clock*: time advances in rounds, every worker executes up to a fixed
instruction budget per round, status updates and balancing happen on their
configured intervals, and all timeline metrics (useful work, queue lengths,
state transfers, coverage) are recorded per round.  The scalability
experiments then compare rounds-to-goal and useful-work-per-round across
cluster sizes, which is exactly the shape of Figures 7-13.

An optional thread-backed runner for wall-clock parallelism is provided in
:mod:`repro.cluster.threaded`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cluster.autoscale import AutoscalePolicy, Autoscaler
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.jobs import Job, JobTree
from repro.cluster.load_balancer import LoadBalancer, TransferCommand
from repro.cluster.stats import ClusterTimeline, RoundSnapshot, TransferCost, WorkerStats
from repro.cluster.transport import LOAD_BALANCER_ID, Message, MessageKind, Transport
from repro.cluster.worker import DEFAULT_STRATEGY, Worker
from repro.engine.coverage import CoverageBitVector
from repro.engine.errors import BugReport
from repro.engine.executor import SymbolicExecutor
from repro.engine.limits import ExplorationLimits, effective_limits
from repro.engine.state import ExecutionState
from repro.engine.test_case import TestCase
from repro.obs import schema as trace_schema
from repro.obs.status import StatusServer
from repro.obs.trace import NULL_TRACER, Tracer
from repro.solver.cache import aggregate_cache_counters

ExecutorFactory = Callable[[], SymbolicExecutor]
StateFactory = Callable[[SymbolicExecutor], ExecutionState]


@dataclass
class ClusterConfig:
    """Configuration of a simulated Cloud9 cluster."""

    num_workers: int = 2
    instructions_per_round: int = 500
    status_update_interval: int = 1
    balance_interval: int = 1
    delta: float = 1.0
    min_transfer: int = 1
    # None = "resolve at build time": a SymbolicTest substitutes its own
    # strategy, a bare cluster falls back to DEFAULT_STRATEGY.  (A concrete
    # default here used to silently override the test's strategy.)
    strategy: Optional[str] = None
    load_balancing_enabled: bool = True
    # Disable load balancing from this round on (None = never): Fig. 13.
    disable_balancing_after_round: Optional[int] = None
    transport_delay_rounds: int = 0
    max_rounds: int = 10_000
    #: Write a :class:`~repro.cluster.checkpoint.ClusterCheckpoint` every N
    #: rounds (None = never).  The latest checkpoint is kept on the cluster
    #: (``last_checkpoint``) and, when ``checkpoint_path`` is set, saved to
    #: that file so a killed run can resume via ``run(resume_from=...)``.
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    #: Autoscaling policy driving elastic membership from the round hook
    #: (None = fixed size; ``True`` = default :class:`AutoscalePolicy`).
    #: ``num_workers`` is the *initial* size; the policy's min/max bound it
    #: from there.
    autoscale: Optional[AutoscalePolicy] = None
    #: Jobs a retiring worker hands over per round.  ``remove_worker`` no
    #: longer drains the whole frontier synchronously: the worker stays a
    #: *draining* member (not exploring, not balanced) and exports at most
    #: this many jobs per round until empty, so scale-down never stalls a
    #: round on a large frontier.
    drain_chunk: int = 16
    #: Bind a read-only live-status endpoint (:mod:`repro.obs.status`) on
    #: this ``host:port`` for the duration of the run (``"127.0.0.1:0"``
    #: picks a free port; see ``cluster.status_address``).  None = no server.
    status_listen: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.instructions_per_round < 1:
            raise ValueError("instructions_per_round must be positive")
        if self.drain_chunk < 1:
            raise ValueError("drain_chunk must be positive")
        self.autoscale = AutoscalePolicy.coerce(self.autoscale)


@dataclass
class ClusterResult:
    """Summary and timeline of one cluster run."""

    num_workers: int
    rounds_executed: int = 0
    exhausted: bool = False
    goal_reached: bool = False
    paths_completed: int = 0
    total_useful_instructions: int = 0
    total_replay_instructions: int = 0
    coverage_percent: float = 0.0
    covered_lines: Set[int] = field(default_factory=set)
    line_count: int = 0
    bugs: List[BugReport] = field(default_factory=list)
    test_cases: List[TestCase] = field(default_factory=list)
    worker_stats: Dict[int, WorkerStats] = field(default_factory=dict)
    timeline: ClusterTimeline = field(default_factory=ClusterTimeline)
    total_states_transferred: int = 0
    transfer_commands: int = 0
    messages_sent: int = 0
    # Real elapsed seconds of the run (rounds are virtual time, but the
    # threaded cluster's wall-clock speedup is only visible here).
    wall_time: float = 0.0
    # Wire cost of the path-encoded job transfers (prefix-sharing savings).
    transfer_cost: TransferCost = field(default_factory=TransferCost)
    # Aggregated solver-cache hit/miss counters across all worker solvers.
    cache_stats: Dict[str, float] = field(default_factory=dict)
    # Fault tolerance and elasticity (§2.3: workers may die, join and leave).
    worker_failures: int = 0
    jobs_recovered: int = 0
    respawns: int = 0
    # Last-known counters of workers that died mid-run (their final results
    # were lost; survivors re-explored their territory, so these are kept
    # separate from the totals to avoid double counting).
    failed_worker_stats: Dict[int, WorkerStats] = field(default_factory=dict)
    # Round index of the checkpoint this run resumed from (None = fresh run).
    resumed_from_round: Optional[int] = None
    # Elastic-membership accounting: workers that joined/left (voluntarily
    # or via autoscaling) and the largest live membership the run reached.
    # The per-round trace is ``timeline`` (RoundSnapshot.num_workers).
    workers_added: int = 0
    workers_removed: int = 0
    peak_workers: int = 0
    # TCP-transport liveness accounting (repro.net): worker deaths detected
    # by heartbeat silence specifically, and agents admitted into an
    # already-running cluster (respawn replacements + elastic joins).
    heartbeat_misses: int = 0
    agents_reconnected: int = 0

    @property
    def useful_instructions_per_worker(self) -> float:
        if not self.num_workers:
            return 0.0
        return self.total_useful_instructions / self.num_workers

    @property
    def replay_overhead(self) -> float:
        total = self.total_useful_instructions + self.total_replay_instructions
        return self.total_replay_instructions / total if total else 0.0

    def rounds_to_coverage(self, target_percent: float) -> Optional[int]:
        return self.timeline.rounds_to_coverage(target_percent)

    def bug_summaries(self) -> List[str]:
        return sorted({b.summary() for b in self.bugs})


def _dedupe_bugs(bugs: Sequence[BugReport]) -> List[BugReport]:
    seen: Set[Tuple[object, ...]] = set()
    unique: List[BugReport] = []
    for bug in bugs:
        key = (bug.kind, bug.message, bug.function, bug.line)
        if key not in seen:
            seen.add(key)
            unique.append(bug)
    return unique


class Cloud9Cluster:
    """The public front end: build a cluster and run a symbolic-testing goal."""

    #: Name this backend reports in trace/status events (the threaded
    #: subclass overrides it).
    backend_name = "cluster"

    def __init__(self, executor_factory: ExecutorFactory,
                 state_factory: StateFactory,
                 config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        self.executor_factory = executor_factory
        self.state_factory = state_factory
        self.transport = Transport(self.config.transport_delay_rounds)
        self.workers: List[Worker] = []
        self.load_balancer: Optional[LoadBalancer] = None
        #: Optional callback invoked at the start of every round as
        #: ``round_hook(round_index, cluster)`` -- the supported place to
        #: exercise elastic membership (add/remove workers) mid-run.
        self.round_hook: Optional[Callable[[int, "Cloud9Cluster"], None]] = None
        #: The Autoscaler driving the current run (None unless
        #: ``config.autoscale`` is set; fresh per ``run()`` call).
        self.autoscaler: Optional[Autoscaler] = None
        #: Most recent checkpoint written by this run (None until the first).
        self.last_checkpoint: Optional[ClusterCheckpoint] = None
        # Workers retiring incrementally: no longer exploring or balanced,
        # handing over drain_chunk jobs per round until empty.
        self._draining: List[Worker] = []
        # Workers that left via remove_worker; their results still count.
        self._departed: List[Worker] = []
        # Elastic-membership accounting (reported on ClusterResult).
        self._workers_added = 0
        self._workers_removed = 0
        self._peak_workers = 0
        # Carried-over counters when resuming from a checkpoint.
        self._base_paths = 0
        self._base_useful = 0
        self._base_replay = 0
        self._base_wall = 0.0
        self._base_covered: Set[int] = set()
        self._base_bugs: List[BugReport] = []
        self._base_tests: List[TestCase] = []
        self._resumed_from_round: Optional[int] = None
        self._run_started = 0.0
        #: Structured event trace of the current run (:mod:`repro.obs.trace`);
        #: the no-op tracer outside a traced ``run()``.
        self.tracer = NULL_TRACER
        #: Live-status endpoint of the current run (None unless
        #: ``config.status_listen`` is set; fresh per ``run()``).
        self.status_server: Optional[StatusServer] = None
        self._build()
        self._peak_workers = len(self.workers)

    # -- construction ------------------------------------------------------------------

    def _build(self) -> None:
        program_line_count = None
        for index in range(self.config.num_workers):
            worker_id = index + 1
            executor = self.executor_factory()
            if program_line_count is None:
                program_line_count = executor.program.line_count
            worker = Worker(worker_id, executor, self.state_factory,
                            strategy_name=self.config.strategy or DEFAULT_STRATEGY)
            self.workers.append(worker)
        self.load_balancer = LoadBalancer(
            line_count=program_line_count or 0,
            delta=self.config.delta,
            min_transfer=self.config.min_transfer)
        for worker in self.workers:
            self.load_balancer.register_worker(worker.worker_id)
        # The first worker to join receives the seed job (§3.1).
        self.workers[0].seed()

    # -- elastic membership (workers join and leave between rounds, §2.3) ---------------

    @property
    def live_worker_ids(self) -> List[int]:
        """Ids of the live (exploring) members, excluding draining ones."""
        return [w.worker_id for w in self.workers]

    def _next_worker_id(self) -> int:
        used = [w.worker_id for w in self.workers]
        used.extend(w.worker_id for w in self._draining)
        used.extend(w.worker_id for w in self._departed)
        return max(used, default=0) + 1

    def add_worker(self) -> int:
        """Join a fresh, empty worker; the load balancer will feed it.

        Returns the new worker id.  Callable between rounds (e.g. from
        ``round_hook``) or between ``run()`` calls.
        """
        worker_id = self._next_worker_id()
        executor = self.executor_factory()
        worker = Worker(worker_id, executor, self.state_factory,
                        strategy_name=self.config.strategy or DEFAULT_STRATEGY)
        self.workers.append(worker)
        # Seed the newcomer's report with the mean queue length: until its
        # first real status arrives, a fabricated zero would skew
        # queue_length_spread() and draw spurious transfers.
        self.load_balancer.register_worker(
            worker_id,
            queue_length=round(self.load_balancer.mean_queue_length()))
        # A joining worker starts from the merged global coverage (§3.3).
        bits = self.load_balancer.overlay.global_vector.as_int()
        if bits:
            worker.strategy.merge_global_coverage(
                worker.coverage_view.merge_global(bits))
        self._workers_added += 1
        self._peak_workers = max(self._peak_workers, len(self.workers))
        self.tracer.emit(trace_schema.WORKER_JOINED, worker=worker_id,
                         workers=len(self.workers))
        return worker_id

    @property
    def status_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the live-status endpoint, if one is running."""
        return self.status_server.address if self.status_server else None

    def remove_worker(self, worker_id: int) -> int:
        """Start retiring a worker, handing its frontier over incrementally.

        The worker immediately stops exploring and leaves the load
        balancer's view -- its report and any in-flight transfer estimates
        naming it are purged atomically, with job trees already on the wire
        to it re-routed -- but its frontier drains in ``drain_chunk``-sized
        job exports across the following rounds (it stays a *draining*
        member until empty), so removal never stalls a round.  Its results
        (paths, bugs, coverage, stats) still count toward the final
        :class:`ClusterResult`.  Returns the number of jobs handed over in
        the first drain chunk.
        """
        worker = next((w for w in self.workers if w.worker_id == worker_id), None)
        if worker is None:
            raise ValueError("no live worker with id %d" % worker_id)
        if len(self.workers) == 1:
            raise ValueError("cannot remove the last worker")
        self.workers.remove(worker)
        self._draining.append(worker)
        self._workers_removed += 1
        self.tracer.emit(trace_schema.WORKER_DRAINING, worker=worker_id,
                         queue=worker.queue_length)
        survivors = sorted(self.workers, key=lambda w: w.queue_length)

        # Purge the departed worker from the balancer atomically: messages
        # already addressed to it are re-routed (with the receiving
        # survivor's queue estimate credited) or cancelled (with the
        # in-flight estimates rolled back), then its report is dropped.
        for message in self.transport.drop_messages(
                lambda m: m.recipient == worker_id):
            if message.kind == MessageKind.JOB_TRANSFER:
                moved = survivors[0].import_jobs(
                    JobTree.decode(message.payload["jobs"]))
                self._credit_report(survivors[0].worker_id, moved)
            elif message.kind == MessageKind.TRANSFER_REQUEST:
                self.load_balancer.cancel_transfer(TransferCommand(
                    source=worker_id,
                    destination=int(message.payload["destination"]),
                    job_count=int(message.payload["job_count"])))
        # Transfer requests at other workers naming it as the destination.
        for message in self.transport.drop_messages(
                lambda m: (m.kind == MessageKind.TRANSFER_REQUEST
                           and int(m.payload["destination"]) == worker_id)):
            self.load_balancer.cancel_transfer(TransferCommand(
                source=message.recipient,
                destination=worker_id,
                job_count=int(message.payload["job_count"])))
        self.load_balancer.deregister_worker(worker_id)

        return self._drain_once(worker)

    def _credit_report(self, worker_id: int, jobs: int) -> None:
        """Adjust a worker's cached queue-length estimate after a direct
        (non-status) job hand-over so the next balance() does not plan
        against a stale length."""
        if jobs <= 0:
            return
        report = self.load_balancer.reports.get(worker_id)
        if report is not None:
            report.queue_length += jobs

    def _drain_once(self, worker: Worker) -> int:
        """Export one drain chunk from a draining worker to the least-loaded
        survivor; retires the worker once its frontier is empty."""
        moved = 0
        if worker.queue_length and self.workers:
            job_tree = worker.export_jobs(self.config.drain_chunk)
            if len(job_tree):
                target = min(self.workers, key=lambda w: w.queue_length)
                moved = target.import_jobs(job_tree)
                self._credit_report(target.worker_id, moved)
        if worker.queue_length == 0 and worker in self._draining:
            self._draining.remove(worker)
            self._departed.append(worker)
            self.tracer.emit(trace_schema.WORKER_LEFT, worker=worker.worker_id,
                             workers=len(self.workers))
        return moved

    def _advance_drains(self) -> None:
        for worker in list(self._draining):
            self._drain_once(worker)

    # -- checkpoint / resume -------------------------------------------------------------

    def _members(self) -> List[Worker]:
        """Everyone whose results count: live, draining and departed."""
        return self.workers + self._draining + self._departed

    def _coverage_bits(self) -> int:
        bits = self.load_balancer.overlay.global_vector.as_int()
        line_count = self.load_balancer.overlay.line_count
        for worker in self._members():
            bits |= CoverageBitVector.from_lines(
                line_count, worker.executor.covered_lines).as_int()
        for line in self._base_covered:
            if 0 <= line < line_count:
                bits |= 1 << line
        return bits

    def _all_bugs(self) -> List[BugReport]:
        bugs = list(self._base_bugs)
        for worker in self._members():
            bugs.extend(worker.bugs)
        return bugs

    def _all_test_cases(self) -> List[TestCase]:
        cases = list(self._base_tests)
        for worker in self._members():
            cases.extend(worker.test_cases)
        return cases

    def _write_checkpoint(self, round_index: int) -> ClusterCheckpoint:
        frontier: List[Tuple[int, ...]] = []
        for worker in self.workers + self._draining:
            frontier.extend(sorted(worker.frontier_paths()))
        members = self._members()
        checkpoint = ClusterCheckpoint(
            round_index=round_index,
            frontier_paths=sorted(frontier),
            coverage_bits=self._coverage_bits(),
            line_count=self.load_balancer.overlay.line_count,
            paths_completed=(self._base_paths
                            + sum(w.paths_completed for w in members)),
            useful_instructions=(self._base_useful + sum(
                w.stats.useful_instructions for w in members)),
            replay_instructions=(self._base_replay + sum(
                w.stats.replay_instructions for w in members)),
            wall_time=(self._base_wall
                       + (time.monotonic() - self._run_started)),
            bug_reports=[ClusterCheckpoint.encode_bug(b)
                         for b in _dedupe_bugs(self._all_bugs())],
            test_cases=[ClusterCheckpoint.encode_test_case(t)
                        for t in self._all_test_cases()],
            worker_stats={w.worker_id: w.stats.as_dict() for w in self.workers},
            strategy_seeds={w.worker_id: w.worker_id for w in self.workers},
        )
        if self.config.checkpoint_path:
            checkpoint.save(self.config.checkpoint_path)
        self.last_checkpoint = checkpoint
        return checkpoint

    def _restore(self, checkpoint: Union[ClusterCheckpoint, str]) -> None:
        checkpoint = ClusterCheckpoint.coerce(checkpoint)
        for worker in self.workers:
            worker.unseed()
        for index, path in enumerate(sorted(checkpoint.frontier_paths)):
            worker = self.workers[index % len(self.workers)]
            worker.import_jobs(JobTree.from_jobs([Job(tuple(path))]))
        self.load_balancer.overlay.merge_from_worker(checkpoint.coverage_bits)
        for worker in self.workers:
            worker.strategy.merge_global_coverage(
                worker.coverage_view.merge_global(checkpoint.coverage_bits))
        self._base_paths = checkpoint.paths_completed
        self._base_useful = checkpoint.useful_instructions
        self._base_replay = checkpoint.replay_instructions
        self._base_wall = checkpoint.wall_time
        self._base_covered = checkpoint.covered_lines()
        self._base_bugs = checkpoint.decode_bugs()
        self._base_tests = checkpoint.decode_test_cases()
        self._resumed_from_round = checkpoint.round_index

    # -- helpers -----------------------------------------------------------------------

    def _balancing_active(self, round_index: int) -> bool:
        if not self.config.load_balancing_enabled:
            return False
        cutoff = self.config.disable_balancing_after_round
        if cutoff is not None and round_index >= cutoff:
            return False
        return True

    def _total_candidates(self) -> int:
        # Draining workers' outstanding jobs count: they are still part of
        # the global frontier (survivors receive them chunk by chunk).
        return sum(w.queue_length for w in self.workers + self._draining)

    def _all_covered_lines(self) -> Set[int]:
        covered: Set[int] = set(self._base_covered)
        for worker in self._members():
            covered.update(worker.executor.covered_lines)
        return covered

    # -- main loop -----------------------------------------------------------------------

    def _explore_round(self) -> None:
        """Step every busy worker by one round's instruction budget.

        Extracted as a hook so :class:`~repro.cluster.threaded.ThreadedCloud9Cluster`
        can run the (share-nothing) workers on OS threads instead.
        """
        for worker in self.workers:
            if worker.has_work:
                worker.explore(self.config.instructions_per_round)

    def run(self, max_rounds: Optional[int] = None,
            target_coverage_percent: Optional[float] = None,
            max_paths: Optional[int] = None,
            stop_on_first_bug: bool = False,
            max_wall_time: Optional[float] = None,
            max_instructions: Optional[int] = None,
            limits: Optional[ExplorationLimits] = None,
            resume_from: Optional[Union[ClusterCheckpoint, str]] = None
            ) -> ClusterResult:
        """Run rounds until exhaustion, a goal, or a budget is spent.

        Limits may be given as explicit kwargs or bundled in an
        :class:`~repro.engine.limits.ExplorationLimits`; explicit kwargs win.
        ``limits.coverage_target`` maps to ``target_coverage_percent`` and
        ``limits.max_steps`` does not apply to cluster runs.

        ``resume_from`` (a :class:`~repro.cluster.checkpoint.ClusterCheckpoint`
        or a path to a saved one) restores a checkpointed frontier, coverage
        and counters instead of starting from the seed job.

        ``limits.trace_path`` turns on structured event tracing for the run,
        and ``config.status_listen`` serves a live status snapshot
        (:mod:`repro.obs`); both are torn down when the run returns.
        """
        lim = effective_limits(limits, max_rounds=max_rounds,
                               coverage_target=target_coverage_percent,
                               max_paths=max_paths,
                               stop_on_first_bug=stop_on_first_bug,
                               max_wall_time=max_wall_time,
                               max_instructions=max_instructions)
        tracer = Tracer(lim.trace_path) if lim.trace_path else NULL_TRACER
        self.tracer = tracer
        self.status_server = (StatusServer(self.config.status_listen)
                              if self.config.status_listen else None)
        try:
            return self._run(lim, resume_from)
        finally:
            self.tracer = NULL_TRACER
            tracer.close()
            if self.status_server is not None:
                self.status_server.close()
                self.status_server = None

    def _run(self, lim: ExplorationLimits,
             resume_from: Optional[Union[ClusterCheckpoint, str]]
             ) -> ClusterResult:
        if resume_from is not None:
            self._restore(resume_from)
        max_rounds, target_coverage_percent = lim.max_rounds, lim.coverage_target
        max_paths, stop_on_first_bug = lim.max_paths, lim.stop_on_first_bug
        max_wall_time, max_instructions = lim.max_wall_time, lim.max_instructions
        config = self.config
        limit = max_rounds if max_rounds is not None else config.max_rounds
        line_count = self.workers[0].executor.program.line_count
        result = ClusterResult(num_workers=config.num_workers,
                               line_count=line_count)
        start = time.monotonic()
        self._run_started = start
        instructions_executed = 0
        self.autoscaler = (Autoscaler(config.autoscale)
                           if config.autoscale is not None else None)
        tracer = self.tracer
        tracer.emit(trace_schema.RUN_STARTED, backend=self.backend_name,
                    workers=len(self.workers), line_count=line_count,
                    resumed_from_round=self._resumed_from_round)
        traced_bugs = 0

        round_index = 0
        while round_index < limit:
            if self.round_hook is not None:
                self.round_hook(round_index, self)
            if self.autoscaler is not None:
                self.autoscaler(round_index, self)
            self._advance_drains()
            self._peak_workers = max(self._peak_workers, len(self.workers))
            balancing = self._balancing_active(round_index)
            # Unified checkpoint cadence across backends: a snapshot lands
            # after every checkpoint_every *completed* rounds.
            checkpoint_due = bool(
                config.checkpoint_every
                and (round_index + 1) % config.checkpoint_every == 0)
            self.transport.advance_round()

            # 1. Deliver pending messages (job transfers, coverage, requests).
            states_transferred = 0
            for worker in self.workers:
                states_transferred += worker.handle_messages(self.transport)

            # 2. Explore for one round of virtual time.
            work_before = {w.worker_id: (w.stats.useful_instructions,
                                         w.stats.replay_instructions)
                           for w in self.workers}
            self._explore_round()
            work_delta = {
                w.worker_id: (
                    w.stats.useful_instructions - work_before[w.worker_id][0],
                    w.stats.replay_instructions - work_before[w.worker_id][1])
                for w in self.workers if w.worker_id in work_before}
            useful_delta = sum(d[0] for d in work_delta.values()) + sum(
                w.stats.useful_instructions for w in self.workers
                if w.worker_id not in work_before)
            replay_delta = sum(d[1] for d in work_delta.values()) + sum(
                w.stats.replay_instructions for w in self.workers
                if w.worker_id not in work_before)
            instructions_executed += useful_delta + replay_delta

            # 3. Status updates to the LB and balancing decisions.
            if round_index % config.status_update_interval == 0:
                for worker in self.workers:
                    worker.send_status(self.transport, round_index)
                for message in self.transport.receive_all(LOAD_BALANCER_ID):
                    if message.kind != MessageKind.STATUS_UPDATE:
                        continue
                    merged_bits = self.load_balancer.receive_status(
                        worker_id=message.sender,
                        queue_length=int(message.payload["queue_length"]),
                        useful_instructions=int(message.payload["useful_instructions"]),
                        coverage_bits=int(message.payload["coverage_bits"]),
                        round_index=round_index)
                    self.transport.send(Message(
                        kind=MessageKind.COVERAGE_UPDATE,
                        sender=LOAD_BALANCER_ID,
                        recipient=message.sender,
                        payload={"coverage_bits": merged_bits}))
            if balancing and round_index % config.balance_interval == 0:
                for command in self.load_balancer.balance(round_index):
                    result.transfer_commands += 1
                    tracer.emit(trace_schema.JOB_TRANSFERRED, round=round_index,
                                source=command.source,
                                destination=command.destination,
                                jobs=command.job_count)
                    self.transport.send(Message(
                        kind=MessageKind.TRANSFER_REQUEST,
                        sender=LOAD_BALANCER_ID,
                        recipient=command.source,
                        payload={"destination": command.destination,
                                 "job_count": command.job_count}))

            # 4. Record the round.
            covered = self._all_covered_lines()
            coverage_percent = 100.0 * len(covered) / line_count if line_count else 0.0
            paths_completed = (self._base_paths
                               + sum(w.paths_completed
                                     for w in self._members()))
            bugs_found = sum(len(w.bugs) for w in self._members())
            elapsed = time.monotonic() - start
            result.timeline.record(RoundSnapshot(
                round_index=round_index,
                queue_lengths={w.worker_id: w.queue_length for w in self.workers},
                total_candidates=self._total_candidates(),
                states_transferred=states_transferred,
                useful_instructions=useful_delta,
                replay_instructions=replay_delta,
                covered_lines=len(covered),
                coverage_percent=coverage_percent,
                paths_completed=paths_completed,
                bugs_found=bugs_found,
                load_balancing_enabled=balancing,
                num_workers=len(self.workers),
                elapsed=elapsed,
            ))
            result.total_states_transferred += states_transferred
            if tracer.enabled:
                if bugs_found > traced_bugs:
                    tracer.emit(trace_schema.BUG_FOUND, round=round_index,
                                bugs=bugs_found, new=bugs_found - traced_bugs)
                    traced_bugs = bugs_found
                tracer.emit(
                    trace_schema.ROUND_COMPLETED, round=round_index,
                    elapsed=round(elapsed, 6),
                    coverage_percent=round(coverage_percent, 3),
                    covered_lines=len(covered), paths=paths_completed,
                    candidates=self._total_candidates(),
                    workers=len(self.workers),
                    useful=useful_delta, replay=replay_delta,
                    transferred=states_transferred,
                    queues={w.worker_id: w.queue_length for w in self.workers},
                    workers_detail={
                        w.worker_id: {
                            "useful": work_delta.get(w.worker_id, (0, 0))[0],
                            "replay": work_delta.get(w.worker_id, (0, 0))[1],
                            "queue": w.queue_length}
                        for w in self.workers})
            if self.status_server is not None:
                self.status_server.update({
                    "backend": self.backend_name,
                    "round": round_index,
                    "elapsed": round(elapsed, 3),
                    "coverage_percent": round(coverage_percent, 3),
                    "covered_lines": len(covered),
                    "paths_completed": paths_completed,
                    "bugs_found": bugs_found,
                    "candidates": self._total_candidates(),
                    "live_workers": [w.worker_id for w in self.workers],
                    "draining_workers": [w.worker_id for w in self._draining],
                    "queues": {w.worker_id: w.queue_length
                               for w in self.workers},
                })
            round_index += 1

            # 4b. Periodic checkpoint (between rounds, after status merge).
            if checkpoint_due:
                self._write_checkpoint(round_index)
                tracer.emit(trace_schema.CHECKPOINT_WRITTEN, round=round_index,
                            path=config.checkpoint_path)

            # 5. Termination checks.
            if target_coverage_percent is not None and coverage_percent >= target_coverage_percent:
                result.goal_reached = True
                break
            if max_paths is not None and paths_completed >= max_paths:
                result.goal_reached = True
                break
            if stop_on_first_bug and bugs_found:
                result.goal_reached = True
                break
            if self._total_candidates() == 0 and self.transport.work_idle:
                result.exhausted = True
                break
            # Budget limits (spent, not reached: goal_reached stays False).
            if max_instructions is not None and instructions_executed >= max_instructions:
                break
            if max_wall_time is not None and time.monotonic() - start >= max_wall_time:
                break

        # Cumulative across resume_from= segments: the checkpoint carries the
        # wall time already spent, this run adds its own elapsed time.
        result.wall_time = self._base_wall + (time.monotonic() - start)
        final = self._finalize(result, round_index)
        if tracer.enabled:
            tracer.emit(trace_schema.SOLVER_QUERY,
                        **{k: v for k, v in final.cache_stats.items()
                           if isinstance(v, int) and v})
            tracer.emit(trace_schema.RUN_FINISHED, rounds=final.rounds_executed,
                        paths=final.paths_completed,
                        coverage_percent=round(final.coverage_percent, 3),
                        bugs=len(final.bugs),
                        useful=final.total_useful_instructions,
                        replay=final.total_replay_instructions,
                        exhausted=final.exhausted,
                        goal_reached=final.goal_reached,
                        wall_time=round(final.wall_time, 6))
        return final

    def _finalize(self, result: ClusterResult, rounds: int) -> ClusterResult:
        members = self._members()
        result.num_workers = len(self.workers)
        result.rounds_executed = rounds
        result.resumed_from_round = self._resumed_from_round
        result.workers_added = self._workers_added
        result.workers_removed = self._workers_removed
        result.peak_workers = max(self._peak_workers, len(self.workers))
        result.paths_completed = (self._base_paths
                                  + sum(w.paths_completed for w in members))
        result.total_useful_instructions = self._base_useful + sum(
            w.stats.useful_instructions for w in members)
        result.total_replay_instructions = self._base_replay + sum(
            w.stats.replay_instructions for w in members)
        result.covered_lines = self._all_covered_lines()
        result.coverage_percent = (100.0 * len(result.covered_lines) / result.line_count
                                   if result.line_count else 0.0)
        all_bugs: List[BugReport] = list(self._base_bugs)
        result.test_cases.extend(self._base_tests)
        for worker in members:
            all_bugs.extend(worker.bugs)
            result.test_cases.extend(worker.test_cases)
            result.worker_stats[worker.worker_id] = worker.stats
        result.bugs = _dedupe_bugs(all_bugs)
        result.jobs_recovered = sum(
            w.stats.jobs_recovered for w in members)
        result.messages_sent = self.transport.messages_sent
        result.transfer_cost = TransferCost.from_worker_stats(
            result.worker_stats.values())
        result.cache_stats = aggregate_cache_counters(
            w.executor.solver.cache_counters() for w in members)
        return result

    # -- invariants (used by the test suite) -------------------------------------------------

    def check_frontier_invariants(self) -> Tuple[bool, str]:
        """Disjointness of worker frontiers (§3.2 Summary): no path is a
        candidate on two workers at once.  (Completeness is checked by the
        integration tests by comparing explored paths against a single-node
        exhaustive run.)"""
        seen: Dict[Tuple[int, ...], int] = {}
        for worker in self.workers + self._draining:
            for path in worker.frontier_paths():
                if path in seen:
                    return False, ("path %s is a candidate on workers %d and %d"
                                   % (path, seen[path], worker.worker_id))
                seen[path] = worker.worker_id
        return True, ""
