"""The in-process cluster backend: workers, virtual time, simulated fabric.

The paper's prototype runs workers on separate machines and measures wall
clock.  This backend runs the same protocol on a simulated fabric with a
*virtual clock*: time advances in rounds, every worker executes up to a fixed
instruction budget per round, status updates and balancing happen on their
configured intervals, and all timeline metrics (useful work, queue lengths,
state transfers, coverage) are recorded per round.  The scalability
experiments then compare rounds-to-goal and useful-work-per-round across
cluster sizes, which is exactly the shape of Figures 7-13.

The round protocol itself -- the loop, membership, checkpoint cadence,
termination, finalization -- lives in :class:`repro.cluster.core.CoordinatorCore`;
this module contributes the in-process member type (:class:`~repro.cluster.worker.Worker`
over the simulated :class:`~repro.cluster.transport.Transport`) and the
backend hooks.  An optional thread-backed runner for wall-clock parallelism
is provided in :mod:`repro.cluster.threaded`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.checkpoint import ClusterCheckpoint
from repro.cluster.core import (ClusterResult, CoordinatorCore, MemberFinal,
                                RoundWork, _dedupe_bugs, backend_hook)
from repro.cluster.jobs import Job, JobTree
from repro.cluster.load_balancer import LoadBalancer, TransferCommand
from repro.cluster.transport import LOAD_BALANCER_ID, Message, MessageKind, Transport
from repro.cluster.worker import DEFAULT_STRATEGY, Worker
from repro.engine.coverage import CoverageBitVector
from repro.engine.errors import BugReport
from repro.engine.executor import SymbolicExecutor
from repro.engine.state import ExecutionState
from repro.engine.test_case import TestCase
from repro.obs import schema as trace_schema

ExecutorFactory = Callable[[], SymbolicExecutor]
StateFactory = Callable[[SymbolicExecutor], ExecutionState]

__all__ = ["ClusterConfig", "ClusterResult", "Cloud9Cluster",
           "ExecutorFactory", "StateFactory", "_dedupe_bugs"]


@dataclass
class ClusterConfig:
    """Configuration of a simulated Cloud9 cluster."""

    num_workers: int = 2
    instructions_per_round: int = 500
    status_update_interval: int = 1
    balance_interval: int = 1
    delta: float = 1.0
    min_transfer: int = 1
    # None = "resolve at build time": a SymbolicTest substitutes its own
    # strategy, a bare cluster falls back to DEFAULT_STRATEGY.  (A concrete
    # default here used to silently override the test's strategy.)
    strategy: Optional[str] = None
    load_balancing_enabled: bool = True
    # Disable load balancing from this round on (None = never): Fig. 13.
    disable_balancing_after_round: Optional[int] = None
    transport_delay_rounds: int = 0
    max_rounds: int = 10_000
    #: Write a :class:`~repro.cluster.checkpoint.ClusterCheckpoint` every N
    #: rounds (None = never).  The latest checkpoint is kept on the cluster
    #: (``last_checkpoint``) and, when ``checkpoint_path`` is set, saved to
    #: that file so a killed run can resume via ``run(resume_from=...)``.
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    #: Autoscaling policy driving elastic membership from the round hook
    #: (None = fixed size; ``True`` = default :class:`AutoscalePolicy`).
    #: ``num_workers`` is the *initial* size; the policy's min/max bound it
    #: from there.
    autoscale: Optional[AutoscalePolicy] = None
    #: Jobs a retiring worker hands over per round.  ``remove_worker`` no
    #: longer drains the whole frontier synchronously: the worker stays a
    #: *draining* member (not exploring, not balanced) and exports at most
    #: this many jobs per round until empty, so scale-down never stalls a
    #: round on a large frontier.
    drain_chunk: int = 16
    #: Bind a read-only live-status endpoint (:mod:`repro.obs.status`) on
    #: this ``host:port`` for the duration of the run (``"127.0.0.1:0"``
    #: picks a free port; see ``cluster.status_address``).  None = no server.
    status_listen: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if self.instructions_per_round < 1:
            raise ValueError("instructions_per_round must be positive")
        if self.drain_chunk < 1:
            raise ValueError("drain_chunk must be positive")
        self.autoscale = AutoscalePolicy.coerce(self.autoscale)


class Cloud9Cluster(CoordinatorCore):
    """The public front end: build a cluster and run a symbolic-testing goal."""

    #: Name this backend reports in trace/status events (the threaded
    #: subclass overrides it).
    backend_name = "cluster"

    def __init__(self, executor_factory: ExecutorFactory,
                 state_factory: StateFactory,
                 config: Optional[ClusterConfig] = None):
        super().__init__(config or ClusterConfig())
        self.config: ClusterConfig
        self.executor_factory = executor_factory
        self.state_factory = state_factory
        self.transport = Transport(self.config.transport_delay_rounds)
        self.workers: List[Worker] = []
        # Workers that left via remove_worker; their results still count.
        self._departed: List[Worker] = []
        self._build()
        self._peak_workers = len(self.workers)

    # -- construction ------------------------------------------------------------------

    def _build(self) -> None:
        program_line_count = None
        for index in range(self.config.num_workers):
            worker_id = index + 1
            executor = self.executor_factory()
            if program_line_count is None:
                program_line_count = executor.program.line_count
            worker = Worker(worker_id, executor, self.state_factory,
                            strategy_name=self.config.strategy or DEFAULT_STRATEGY)
            self.workers.append(worker)
        self.load_balancer = LoadBalancer(
            line_count=program_line_count or 0,
            delta=self.config.delta,
            min_transfer=self.config.min_transfer)
        for worker in self.workers:
            self.load_balancer.register_worker(worker.worker_id)
        # The first worker to join receives the seed job (§3.1).
        self.workers[0].seed()

    # -- membership hooks (workers join and leave between rounds, §2.3) -----------------

    def _live_members(self) -> List[Worker]:
        return self.workers

    def _next_worker_id(self) -> int:
        used = [w.worker_id for w in self.workers]
        used.extend(w.worker_id for w in self._draining)
        used.extend(w.worker_id for w in self._departed)
        return max(used, default=0) + 1

    def _admit_member(self) -> Worker:
        worker_id = self._next_worker_id()
        executor = self.executor_factory()
        worker = Worker(worker_id, executor, self.state_factory,
                        strategy_name=self.config.strategy or DEFAULT_STRATEGY)
        self.workers.append(worker)
        # Seed the newcomer's report with the mean queue length: until its
        # first real status arrives, a fabricated zero would skew
        # queue_length_spread() and draw spurious transfers.
        self.load_balancer.register_worker(
            worker_id,
            queue_length=round(self.load_balancer.mean_queue_length()))
        # A joining worker starts from the merged global coverage (§3.3).
        bits = self.load_balancer.overlay.global_vector.as_int()
        if bits:
            worker.strategy.merge_global_coverage(
                worker.coverage_view.merge_global(bits))
        return worker

    def _purge_departing(self, worker: Worker) -> None:
        worker_id = worker.worker_id
        survivors = sorted(self.workers, key=lambda w: w.queue_length)

        # Purge the departed worker from the balancer atomically: messages
        # already addressed to it are re-routed (with the receiving
        # survivor's queue estimate credited) or cancelled (with the
        # in-flight estimates rolled back), then its report is dropped.
        for message in self.transport.drop_messages(
                lambda m: m.recipient == worker_id):
            if message.kind == MessageKind.JOB_TRANSFER:
                moved = survivors[0].import_jobs(
                    JobTree.decode(message.payload["jobs"]))
                self._credit_report(survivors[0].worker_id, moved)
            elif message.kind == MessageKind.TRANSFER_REQUEST:
                self.load_balancer.cancel_transfer(TransferCommand(
                    source=worker_id,
                    destination=int(message.payload["destination"]),
                    job_count=int(message.payload["job_count"])))
        # Transfer requests at other workers naming it as the destination.
        for message in self.transport.drop_messages(
                lambda m: (m.kind == MessageKind.TRANSFER_REQUEST
                           and int(m.payload["destination"]) == worker_id)):
            self.load_balancer.cancel_transfer(TransferCommand(
                source=message.recipient,
                destination=worker_id,
                job_count=int(message.payload["job_count"])))
        self.load_balancer.deregister_worker(worker_id)

    def _credit_report(self, worker_id: int, jobs: int) -> None:
        """Adjust a worker's cached queue-length estimate after a direct
        (non-status) job hand-over so the next balance() does not plan
        against a stale length."""
        if jobs <= 0:
            return
        report = self.load_balancer.reports.get(worker_id)
        if report is not None:
            report.queue_length += jobs

    def _drain_member(self, worker: Worker) -> int:
        moved = 0
        if worker.queue_length and self.workers:
            job_tree = worker.export_jobs(self.config.drain_chunk)
            if len(job_tree):
                target = min(self.workers, key=lambda w: w.queue_length)
                moved = target.import_jobs(job_tree)
                self._credit_report(target.worker_id, moved)
        if worker.queue_length == 0 and worker in self._draining:
            self._draining.remove(worker)
            self._departed.append(worker)
            self._note_member_left(worker.worker_id)
        return moved

    # -- checkpoint / resume -------------------------------------------------------------

    def _members(self) -> List[Worker]:
        """Everyone whose results count: live, draining and departed."""
        return self.workers + self._draining + self._departed

    def _coverage_bits(self) -> int:
        bits = self.load_balancer.overlay.global_vector.as_int()
        line_count = self.load_balancer.overlay.line_count
        for worker in self._members():
            bits |= CoverageBitVector.from_lines(
                line_count, worker.executor.covered_lines).as_int()
        for line in self._base_covered:
            if 0 <= line < line_count:
                bits |= 1 << line
        return bits

    def _all_bugs(self) -> List[BugReport]:
        bugs = list(self._base_bugs)
        for worker in self._members():
            bugs.extend(worker.bugs)
        return bugs

    def _all_test_cases(self) -> List[TestCase]:
        cases = list(self._base_tests)
        for worker in self._members():
            cases.extend(worker.test_cases)
        return cases

    def _write_checkpoint(self, round_index: int) -> ClusterCheckpoint:
        frontier: List[Tuple[int, ...]] = []
        for worker in self.workers + self._draining:
            frontier.extend(sorted(worker.frontier_paths()))
        members = self._members()
        checkpoint = ClusterCheckpoint(
            round_index=round_index,
            frontier_paths=sorted(frontier),
            coverage_bits=self._coverage_bits(),
            line_count=self.load_balancer.overlay.line_count,
            paths_completed=(self._base_paths
                            + sum(w.paths_completed for w in members)),
            useful_instructions=(self._base_useful + sum(
                w.stats.useful_instructions for w in members)),
            replay_instructions=(self._base_replay + sum(
                w.stats.replay_instructions for w in members)),
            wall_time=(self._base_wall
                       + (time.monotonic() - self._run_started)),
            bug_reports=[ClusterCheckpoint.encode_bug(b)
                         for b in _dedupe_bugs(self._all_bugs())],
            test_cases=[ClusterCheckpoint.encode_test_case(t)
                        for t in self._all_test_cases()],
            worker_stats={w.worker_id: w.stats.as_dict() for w in self.workers},
            strategy_seeds={w.worker_id: w.worker_id for w in self.workers},
        )
        if self.config.checkpoint_path:
            checkpoint.save(self.config.checkpoint_path)
        self.last_checkpoint = checkpoint
        return checkpoint

    def _restore(self, checkpoint: Union[ClusterCheckpoint, str]) -> None:
        checkpoint = ClusterCheckpoint.coerce(checkpoint)
        for worker in self.workers:
            worker.unseed()
        for index, path in enumerate(sorted(checkpoint.frontier_paths)):
            worker = self.workers[index % len(self.workers)]
            worker.import_jobs(JobTree.from_jobs([Job(tuple(path))]))
        self.load_balancer.overlay.merge_from_worker(checkpoint.coverage_bits)
        for worker in self.workers:
            worker.strategy.merge_global_coverage(
                worker.coverage_view.merge_global(checkpoint.coverage_bits))
        self._base_paths = checkpoint.paths_completed
        self._base_useful = checkpoint.useful_instructions
        self._base_replay = checkpoint.replay_instructions
        self._base_wall = checkpoint.wall_time
        self._base_covered = checkpoint.covered_lines()
        self._base_bugs = checkpoint.decode_bugs()
        self._base_tests = checkpoint.decode_test_cases()
        self._resumed_from_round = checkpoint.round_index

    def _take_checkpoint(self, round_index: int) -> None:
        self._write_checkpoint(round_index)

    def _begin_run(self, result: ClusterResult,
                   resume_from: Optional[Union[ClusterCheckpoint, str]]
                   ) -> None:
        if resume_from is not None:
            self._restore(resume_from)

    # -- round-phase hooks ---------------------------------------------------------------

    def _line_count(self) -> int:
        return self.workers[0].executor.program.line_count

    def _all_covered_lines(self) -> Set[int]:
        covered: Set[int] = set(self._base_covered)
        for worker in self._members():
            covered.update(worker.executor.covered_lines)
        return covered

    @backend_hook
    def _explore_round(self) -> None:
        """Step every busy worker by one round's instruction budget.

        Extracted as a hook so :class:`~repro.cluster.threaded.ThreadedCloud9Cluster`
        can run the (share-nothing) workers on OS threads instead.
        """
        for worker in self.workers:
            if worker.has_work:
                worker.explore(self.config.instructions_per_round)

    def _pre_round(self, result: ClusterResult) -> None:
        self._advance_drains()

    def _explore_phase(self, result: ClusterResult, round_index: int,
                       checkpoint_due: bool) -> RoundWork:
        self.transport.advance_round()

        # 1. Deliver pending messages (job transfers, coverage, requests).
        states_transferred = 0
        for worker in self.workers:
            states_transferred += worker.handle_messages(self.transport)

        # 2. Explore for one round of virtual time.
        work_before = {w.worker_id: (w.stats.useful_instructions,
                                     w.stats.replay_instructions)
                       for w in self.workers}
        self._explore_round()
        work_delta = {
            w.worker_id: (
                w.stats.useful_instructions - work_before[w.worker_id][0],
                w.stats.replay_instructions - work_before[w.worker_id][1])
            for w in self.workers if w.worker_id in work_before}
        useful_delta = sum(d[0] for d in work_delta.values()) + sum(
            w.stats.useful_instructions for w in self.workers
            if w.worker_id not in work_before)
        replay_delta = sum(d[1] for d in work_delta.values()) + sum(
            w.stats.replay_instructions for w in self.workers
            if w.worker_id not in work_before)
        detail = {
            w.worker_id: {
                "useful": work_delta.get(w.worker_id, (0, 0))[0],
                "replay": work_delta.get(w.worker_id, (0, 0))[1],
                "queue": w.queue_length}
            for w in self.workers}
        return RoundWork(useful_delta=useful_delta, replay_delta=replay_delta,
                         states_transferred=states_transferred, detail=detail)

    def _status_phase(self, round_index: int) -> None:
        for worker in self.workers:
            worker.send_status(self.transport, round_index)
        for message in self.transport.receive_all(LOAD_BALANCER_ID):
            if message.kind != MessageKind.STATUS_UPDATE:
                continue
            merged_bits = self.load_balancer.receive_status(
                worker_id=message.sender,
                queue_length=int(message.payload["queue_length"]),
                useful_instructions=int(message.payload["useful_instructions"]),
                coverage_bits=int(message.payload["coverage_bits"]),
                round_index=round_index)
            self.transport.send(Message(
                kind=MessageKind.COVERAGE_UPDATE,
                sender=LOAD_BALANCER_ID,
                recipient=message.sender,
                payload={"coverage_bits": merged_bits}))

    def _dispatch_transfer(self, command: TransferCommand,
                           result: ClusterResult, round_index: int) -> int:
        # The request is queued on the virtual fabric; the states it moves
        # are counted in the round that delivers the JOB_TRANSFER message.
        result.transfer_commands += 1
        self.tracer.emit(trace_schema.JOB_TRANSFERRED, round=round_index,
                         source=command.source,
                         destination=command.destination,
                         jobs=command.job_count)
        self.transport.send(Message(
            kind=MessageKind.TRANSFER_REQUEST,
            sender=LOAD_BALANCER_ID,
            recipient=command.source,
            payload={"destination": command.destination,
                     "job_count": command.job_count}))
        return 0

    # -- observation hooks ---------------------------------------------------------------

    def _covered_line_count(self) -> int:
        return len(self._all_covered_lines())

    def _paths_completed(self) -> int:
        return (self._base_paths
                + sum(w.paths_completed for w in self._members()))

    def _bugs_found(self) -> int:
        return sum(len(w.bugs) for w in self._members())

    def _work_idle(self) -> bool:
        return self.transport.work_idle

    # -- finalization hooks --------------------------------------------------------------

    def _collect_finals(self, result: ClusterResult) -> List[MemberFinal]:
        return [MemberFinal(
            worker_id=worker.worker_id,
            paths_completed=worker.paths_completed,
            useful_instructions=worker.stats.useful_instructions,
            replay_instructions=worker.stats.replay_instructions,
            covered_lines=set(worker.executor.covered_lines),
            bugs=list(worker.bugs),
            test_cases=list(worker.test_cases),
            stats=worker.stats,
            cache_counters=worker.executor.solver.cache_counters(),
            latency=worker.executor.solver.query_seconds,
        ) for worker in self._members()]

    def _finalize_extras(self, result: ClusterResult,
                         finals: List[MemberFinal]) -> None:
        result.jobs_recovered = sum(f.stats.jobs_recovered for f in finals)
        result.messages_sent = self.transport.messages_sent

    # -- invariants (used by the test suite) -------------------------------------------------

    def check_frontier_invariants(self) -> Tuple[bool, str]:
        """Disjointness of worker frontiers (§3.2 Summary): no path is a
        candidate on two workers at once.  (Completeness is checked by the
        integration tests by comparing explored paths against a single-node
        exhaustive run.)"""
        seen: Dict[Tuple[int, ...], int] = {}
        for worker in self.workers + self._draining:
            for path in worker.frontier_paths():
                if path in seen:
                    return False, ("path %s is a candidate on workers %d and %d"
                                   % (path, seen[path], worker.worker_id))
                seen[path] = worker.worker_id
        return True, ""
