"""The unified exploration API (one front end over every backend).

This package is the single supported way to execute symbolic tests:

* :class:`~repro.api.limits.ExplorationLimits` -- one bag of budgets/goals
  accepted uniformly by every backend (and by the lower-level ``run``
  methods of the engine and both clusters).
* :mod:`~repro.api.runner` -- the backend registry (``"single"``,
  ``"cluster"``, ``"static"``, ``"threaded"``, ``"process"``) behind
  ``SymbolicTest.run(backend=...)``.
* :class:`~repro.api.result.RunResult` -- the backend-independent result
  facade, adapting the legacy ``ExplorationResult``/``ClusterResult`` types
  so backends compare apples-to-apples.
* :class:`~repro.api.campaign.Campaign` -- batch execution of many tests
  and/or configuration grids with aggregated coverage, bugs and timelines.
"""

from repro.api.limits import UNLIMITED, ExplorationLimits, effective_limits
from repro.api.result import RunResult
from repro.api.runner import (
    ClusterRunner,
    ProcessRunner,
    Runner,
    SingleRunner,
    StaticPartitionRunner,
    ThreadedRunner,
    available_backends,
    get_runner,
    register_runner,
    run_test,
)
from repro.api.campaign import Campaign, CampaignEntry, CampaignResult

__all__ = [
    "ExplorationLimits",
    "UNLIMITED",
    "effective_limits",
    "RunResult",
    "Runner",
    "SingleRunner",
    "ClusterRunner",
    "StaticPartitionRunner",
    "ThreadedRunner",
    "ProcessRunner",
    "available_backends",
    "get_runner",
    "register_runner",
    "run_test",
    "Campaign",
    "CampaignEntry",
    "CampaignResult",
]
