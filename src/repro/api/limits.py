"""Public home of the uniform exploration limits.

The implementation lives in :mod:`repro.engine.limits` so the engine and
cluster layers can use it without importing :mod:`repro.api` back (the
package init pulls in the cluster layer).  Import from here in user code.
"""

from repro.engine.limits import UNLIMITED, ExplorationLimits, effective_limits

__all__ = ["ExplorationLimits", "UNLIMITED", "effective_limits"]
