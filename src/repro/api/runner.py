"""Execution backends behind one uniform ``run`` surface.

The paper's central promise is that the *same* symbolic test scales
transparently from one KLEE engine to a cluster; this module is where the
reproduction keeps that promise at the API level.  A :class:`Runner` turns a
``SymbolicTest`` plus :class:`~repro.api.limits.ExplorationLimits` into a
:class:`~repro.api.result.RunResult`, and the registry maps backend names to
runners so callers write::

    result = test.run(backend="cluster", workers=8, max_rounds=100)

Built-in backends:

* ``"single"``   -- one in-process engine (plain KLEE / 1-worker Cloud9).
* ``"cluster"``  -- the virtual-time Cloud9 cluster with dynamic load
  balancing (:class:`~repro.cluster.coordinator.Cloud9Cluster`).
* ``"static"``   -- the §2 static-partitioning strawman baseline.
* ``"threaded"`` -- the Cloud9 cluster with workers stepped on an OS thread
  pool each round (wall-clock parallelism on one machine, bounded by the
  GIL).
* ``"process"`` -- the multiprocess cluster (:mod:`repro.distrib`): worker
  processes on real cores, jobs shipped as path-encoded trees and replayed
  at the destination.  Requires a test built from a registered spec
  (:func:`repro.distrib.specs.resolve_test`) or an explicit ``spec=`` option,
  because live tests do not pickle.
* ``"tcp"`` -- the same coordinator over the socket transport
  (:mod:`repro.net`): workers are *agents* that dial in over TCP
  (``python -m repro.net.agent --connect HOST:PORT``), possibly from other
  machines, with heartbeat-based liveness.  Pass ``listen="0.0.0.0:4850"``
  to accept remote agents, or ``spawn_local_agents=True`` for a
  self-contained loopback cluster.

New backends register through :func:`register_runner`.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.cluster.coordinator import ClusterConfig
from repro.cluster.static_partition import StaticPartitionConfig
from repro.cluster.threaded import ThreadedCloud9Cluster
from repro.solver.cache import aggregate_cache_counters

from repro.api.limits import ExplorationLimits
from repro.api.result import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle: testing imports repro.api
    from repro.testing.symbolic_test import SymbolicTest

try:  # pragma: no cover - Protocol is stdlib from 3.8 on
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

__all__ = [
    "Runner",
    "SingleRunner",
    "ClusterRunner",
    "StaticPartitionRunner",
    "ThreadedRunner",
    "ProcessRunner",
    "TcpRunner",
    "available_backends",
    "get_runner",
    "register_runner",
    "run_test",
]


@runtime_checkable
class Runner(Protocol):
    """What a backend must provide to join the registry."""

    #: Registry key, e.g. ``"cluster"``.
    name: str

    def run(self, test: "SymbolicTest",
            limits: Optional[ExplorationLimits] = None,
            **options: object) -> RunResult:
        """Execute ``test`` under ``limits`` and adapt the outcome."""
        ...  # pragma: no cover


def _build_cluster_config(config_cls, workers: Optional[int],
                          options: Dict[str, object]):
    """Resolve a cluster config from either a ready config or loose kwargs."""
    config = options.pop("config", None)
    if config is not None:
        if workers is not None or options:
            extra = (["workers"] if workers is not None else []) + sorted(options)
            raise TypeError(
                "pass either a full config= or loose options, not both "
                "(got config plus %s)" % ", ".join(extra))
        if not isinstance(config, config_cls):
            raise TypeError("config must be a %s, got %r"
                            % (config_cls.__name__, type(config).__name__))
        return config
    kwargs: Dict[str, object] = dict(options)
    if workers is not None:
        kwargs["num_workers"] = workers
    return config_cls(**kwargs)


class SingleRunner:
    """Plain single-engine exploration ("1-worker Cloud9", i.e. KLEE)."""

    name = "single"

    def run(self, test: "SymbolicTest",
            limits: Optional[ExplorationLimits] = None,
            strategy: Optional[str] = None, **options: object) -> RunResult:
        if options:
            raise TypeError("unknown options for backend 'single': %s"
                            % ", ".join(sorted(options)))
        executor = test.build_executor()
        result = executor.run(
            initial_state=lambda: test.build_initial_state(executor),
            strategy=strategy or test.strategy,
            limits=limits,
        )
        cache_stats = aggregate_cache_counters(
            [executor.solver.cache_counters()])
        return RunResult.from_exploration(result, backend=self.name,
                                          test_name=test.name, limits=limits,
                                          cache_stats=cache_stats)


class ClusterRunner:
    """The dynamically load-balanced Cloud9 cluster on virtual time."""

    name = "cluster"
    config_cls = ClusterConfig
    cluster_class = None  # default of SymbolicTest.build_cluster

    def run(self, test: "SymbolicTest",
            limits: Optional[ExplorationLimits] = None,
            workers: Optional[int] = None,
            resume_from: Optional[object] = None,
            **options: object) -> RunResult:
        config = _build_cluster_config(self.config_cls, workers, options)
        cluster = test.build_cluster(config, cluster_class=self.cluster_class)
        result = cluster.run(limits=limits, resume_from=resume_from)
        return RunResult.from_cluster(result, backend=self.name,
                                      test_name=test.name)


class ThreadedRunner(ClusterRunner):
    """The same cluster protocol, with per-round worker steps on OS threads."""

    name = "threaded"
    cluster_class = ThreadedCloud9Cluster


class ProcessRunner:
    """The multiprocess cluster: worker processes with path-encoded job
    shipping (:mod:`repro.distrib`)."""

    name = "process"

    def run(self, test: "SymbolicTest",
            limits: Optional[ExplorationLimits] = None,
            workers: Optional[int] = None,
            spec: Optional[str] = None,
            spec_params: Optional[Dict[str, object]] = None,
            resume_from: Optional[object] = None,
            **options: object) -> RunResult:
        # Imported lazily: repro.distrib reaches back into the testing layer
        # (which imports repro.api), so a module-level import would cycle.
        from repro.distrib.cluster import ProcessCloud9Cluster, ProcessClusterConfig

        if spec is None and spec_params is None:
            # The test carries its own spec: workers rebuild this very
            # program, so its line count is authoritative.
            spec = test.spec_name
            spec_params = dict(test.spec_params)
            line_count: Optional[int] = test.program.line_count
        else:
            # Explicit spec= and/or spec_params= override: the spec may
            # build a different program; let the cluster resolve it to
            # measure the real line count.
            line_count = None
            if spec is None:
                spec = test.spec_name
        if spec is None:
            raise ValueError(
                "backend 'process' ships tests to worker processes by spec "
                "name, but %r carries none; build it with "
                "repro.distrib.specs.resolve_test(...) or pass spec=" % test.name)
        config = _build_cluster_config(ProcessClusterConfig, workers, options)
        if config.strategy is None:
            config = _dc_replace(config, strategy=test.strategy)
        cluster = ProcessCloud9Cluster(
            spec, spec_params=spec_params, config=config,
            line_count=line_count)
        result = cluster.run(limits=limits, resume_from=resume_from)
        return RunResult.from_cluster(result, backend=self.name,
                                      test_name=test.name)


class TcpRunner(ProcessRunner):
    """The process-cluster coordinator over the socket transport
    (:mod:`repro.net`): remote worker agents dial in over TCP."""

    name = "tcp"

    def run(self, test: "SymbolicTest",
            limits: Optional[ExplorationLimits] = None,
            **options: object) -> RunResult:
        # Loose options become a ProcessClusterConfig; default the carrier
        # to TCP (a full config= must already say transport="tcp").
        if "config" not in options:
            options.setdefault("transport", "tcp")
        return super().run(test, limits=limits, **options)


class StaticPartitionRunner:
    """The static-partitioning baseline the paper argues against (§2)."""

    name = "static"

    def run(self, test: "SymbolicTest",
            limits: Optional[ExplorationLimits] = None,
            workers: Optional[int] = None, **options: object) -> RunResult:
        config = _build_cluster_config(StaticPartitionConfig, workers, options)
        cluster = test.build_static_cluster(config)
        result = cluster.run(limits=limits)
        return RunResult.from_cluster(result, backend=self.name,
                                      test_name=test.name)


# -- the registry ---------------------------------------------------------------------

_RUNNERS: Dict[str, Runner] = {}


def register_runner(runner: Runner, replace: bool = False) -> Runner:
    """Add a backend to the registry under ``runner.name``."""
    name = getattr(runner, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("runner must carry a non-empty string .name")
    if not replace and name in _RUNNERS:
        raise ValueError("backend %r is already registered "
                         "(pass replace=True to override)" % name)
    _RUNNERS[name] = runner
    return runner


def get_runner(backend: str) -> Runner:
    try:
        return _RUNNERS[backend]
    except KeyError:
        raise ValueError("unknown backend %r (available: %s)"
                         % (backend, ", ".join(available_backends()))) from None


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_RUNNERS))


def run_test(test: "SymbolicTest", backend: str = "single",
             limits: Optional[ExplorationLimits] = None,
             **options: object) -> RunResult:
    """Dispatch one test to a registered backend.

    Limit fields (``max_paths=...``, ``coverage_target=...``, ...) may be
    passed directly among ``options``; they are folded into ``limits``.
    That includes ``trace_path=`` -- every backend then writes the run's
    structured JSONL event trace there (render it with
    ``python -m repro.obs.report``).  Everything else is forwarded to the
    backend (``workers=``, ``strategy=``, ``config=``, or any cluster-config
    field -- e.g. ``autoscale=`` an
    :class:`~repro.cluster.autoscale.AutoscalePolicy` to run the cluster
    backends elastically, or ``status_listen="127.0.0.1:0"`` to serve live
    run status from the coordinator, :mod:`repro.obs.status`).
    """
    limits = ExplorationLimits.pop_from(options, base=limits)
    return get_runner(backend).run(test, limits=limits, **options)


for _runner in (SingleRunner(), ClusterRunner(), StaticPartitionRunner(),
                ThreadedRunner(), ProcessRunner(), TcpRunner()):
    register_runner(_runner)
del _runner
