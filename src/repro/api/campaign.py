"""Batch execution of symbolic tests: the scenario-diversity engine.

A :class:`Campaign` collects runnable entries -- any mix of symbolic tests,
backends, limits and backend options -- and executes them through the
:mod:`repro.api.runner` registry, aggregating the unified
:class:`~repro.api.result.RunResult` outcomes.  Two common shapes:

* many tests, one configuration (``add_tests``): a regression battery or the
  Table 4 "does everything run" sweep;
* one test, a grid of configurations (``add_grid``): the scalability and
  ablation experiments (same workload across backends or worker counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, TYPE_CHECKING

from repro.engine.errors import BugReport

from repro.api.limits import ExplorationLimits
from repro.api.result import RunResult
from repro.api.runner import run_test

if TYPE_CHECKING:  # pragma: no cover - import cycle: testing imports repro.api
    from repro.testing.symbolic_test import SymbolicTest

__all__ = ["Campaign", "CampaignEntry", "CampaignResult"]


@dataclass
class CampaignEntry:
    """One scheduled run: a test bound to a backend, limits and options."""

    label: str
    test: "SymbolicTest"
    backend: str = "single"
    limits: Optional[ExplorationLimits] = None
    options: Dict[str, object] = field(default_factory=dict)

    def execute(self) -> RunResult:
        return run_test(self.test, backend=self.backend, limits=self.limits,
                        **dict(self.options))


@dataclass
class CampaignResult:
    """Aggregated outcome of one campaign run."""

    name: str
    results: Dict[str, RunResult] = field(default_factory=dict)

    # -- aggregation ------------------------------------------------------------------

    @property
    def total_paths(self) -> int:
        return sum(r.paths_completed for r in self.results.values())

    @property
    def total_useful_instructions(self) -> int:
        return sum(r.useful_instructions for r in self.results.values())

    @property
    def all_bugs(self) -> List[BugReport]:
        out: List[BugReport] = []
        for result in self.results.values():
            out.extend(result.bugs)
        return out

    def bug_summaries(self) -> List[str]:
        return sorted({b.summary() for b in self.all_bugs})

    def by_backend(self) -> Dict[str, List[RunResult]]:
        grouped: Dict[str, List[RunResult]] = {}
        for result in self.results.values():
            grouped.setdefault(result.backend, []).append(result)
        return grouped

    def combined_covered_lines(self, test_name: str) -> Set[int]:
        """Union of lines covered by every run of one test's program."""
        covered: Set[int] = set()
        for result in self.results.values():
            if result.test_name == test_name:
                covered.update(result.covered_lines)
        return covered

    def combined_coverage_percent(self, test_name: str) -> float:
        line_count = max((r.line_count for r in self.results.values()
                          if r.test_name == test_name), default=0)
        if not line_count:
            return 0.0
        return 100.0 * len(self.combined_covered_lines(test_name)) / line_count

    def timelines(self) -> Dict[str, object]:
        """Per-entry cluster timelines (entries without one are omitted)."""
        return {label: r.timeline for label, r in self.results.items()
                if r.timeline is not None}

    def summary_rows(self) -> List[Sequence[object]]:
        """(label, backend, workers, paths, coverage %, bugs, instructions)
        rows, ready for a text table."""
        return [
            (label, r.backend, r.num_workers, r.paths_completed,
             round(r.coverage_percent, 1), len(r.bugs), r.total_instructions)
            for label, r in self.results.items()
        ]


class Campaign:
    """An ordered batch of exploration runs over the unified API."""

    def __init__(self, name: str,
                 limits: Optional[ExplorationLimits] = None):
        self.name = name
        #: Default limits applied to entries that do not carry their own.
        self.default_limits = limits
        self.entries: List[CampaignEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- scheduling -------------------------------------------------------------------

    def _unique_label(self, base: str) -> str:
        existing = {entry.label for entry in self.entries}
        if base not in existing:
            return base
        index = 2
        while "%s#%d" % (base, index) in existing:
            index += 1
        return "%s#%d" % (base, index)

    def add(self, test: "SymbolicTest", backend: str = "single",
            limits: Optional[ExplorationLimits] = None,
            label: Optional[str] = None, **options: object) -> CampaignEntry:
        """Schedule one run.  Limit fields among ``options`` fold into
        ``limits``; the rest are backend options (``workers=``, ...).

        Generated labels are made unique automatically; an explicitly given
        duplicate label is an error (results are keyed by label).
        """
        if label is not None and any(e.label == label for e in self.entries):
            raise ValueError("duplicate campaign label %r" % label)
        limits = ExplorationLimits.pop_from(options,
                                            base=limits or self.default_limits)
        entry = CampaignEntry(
            label=label or self._unique_label("%s@%s" % (test.name, backend)),
            test=test, backend=backend, limits=limits, options=options)
        self.entries.append(entry)
        return entry

    def add_tests(self, tests: Iterable["SymbolicTest"],
                  backend: str = "single",
                  limits: Optional[ExplorationLimits] = None,
                  **options: object) -> List[CampaignEntry]:
        """Schedule a list of tests under one shared configuration."""
        return [self.add(test, backend=backend, limits=limits, **dict(options))
                for test in tests]

    def add_grid(self, test: "SymbolicTest",
                 grid: Iterable[Dict[str, object]],
                 limits: Optional[ExplorationLimits] = None) -> List[CampaignEntry]:
        """Schedule one test across a grid of configurations.

        Each grid point is a dict that may name ``backend``, ``label``,
        ``limits``, limit fields, and backend options, e.g.::

            campaign.add_grid(test, [
                {"backend": "single"},
                {"backend": "cluster", "workers": w} for w in (2, 4, 8) ...
            ])
        """
        entries = []
        for point in grid:
            point = dict(point)
            backend = point.pop("backend", "single")
            label = point.pop("label", None)
            point_limits = point.pop("limits", limits)
            entries.append(self.add(test, backend=backend, limits=point_limits,
                                    label=label, **point))
        return entries

    # -- execution --------------------------------------------------------------------

    def run(self, fail_fast: bool = False,
            on_result: Optional[Callable[[CampaignEntry, RunResult], None]] = None
            ) -> CampaignResult:
        """Execute every entry in order and aggregate the outcomes.

        ``fail_fast`` stops the campaign after the first run that reports a
        bug; ``on_result`` is called after each run (progress reporting).
        """
        outcome = CampaignResult(name=self.name)
        for entry in self.entries:
            result = entry.execute()
            outcome.results[entry.label] = result
            if on_result is not None:
                on_result(entry, result)
            if fail_fast and result.found_bug:
                break
        return outcome
