"""Batch execution of symbolic tests: the scenario-diversity engine.

A :class:`Campaign` collects runnable entries -- any mix of symbolic tests,
backends, limits and backend options -- and executes them through the
:mod:`repro.api.runner` registry, aggregating the unified
:class:`~repro.api.result.RunResult` outcomes.  Two common shapes:

* many tests, one configuration (``add_tests``): a regression battery or the
  Table 4 "does everything run" sweep;
* one test, a grid of configurations (``add_grid``): the scalability and
  ablation experiments (same workload across backends or worker counts).

Campaigns over spec-built tests (:func:`repro.distrib.specs.resolve_test`)
can fan their entries out across a process pool with
``campaign.run(processes=N)``: each shippable entry travels as its
``(spec_name, spec_params, backend, limits, options)`` tuple and is rebuilt
and executed in a pool worker, so independent grid points use real cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple, TYPE_CHECKING)

from repro.engine.errors import BugReport

from repro.api.limits import ExplorationLimits
from repro.api.result import RunResult
from repro.api.runner import run_test

if TYPE_CHECKING:  # pragma: no cover - import cycle: testing imports repro.api
    from repro.testing.symbolic_test import SymbolicTest

__all__ = ["Campaign", "CampaignEntry", "CampaignResult"]


@dataclass
class CampaignEntry:
    """One scheduled run: a test bound to a backend, limits and options."""

    label: str
    test: "SymbolicTest"
    backend: str = "single"
    limits: Optional[ExplorationLimits] = None
    options: Dict[str, object] = field(default_factory=dict)

    def execute(self) -> RunResult:
        return run_test(self.test, backend=self.backend, limits=self.limits,
                        **dict(self.options))

    @property
    def shippable(self) -> bool:
        """Whether this entry can run in a pool process (spec-built test).

        The pool worker rebuilds the test from its spec and then re-applies
        the picklable test fields (``name``, ``strategy``, ``options``,
        ``engine_config``, ``use_posix_model``) from this entry's live test,
        so post-``resolve_test`` tweaks to those fields are honored.
        Mutations to ``setup`` or ``program`` cannot travel; tests carrying
        such mutations should not keep their spec reference.
        """
        return self.test.spec_name is not None

    def ship(self) -> Tuple[object, ...]:
        """The picklable description a pool worker rebuilds this entry from."""
        test = self.test
        overrides = {
            "name": test.name,
            "strategy": test.strategy,
            "options": dict(test.options),
            "engine_config": test.engine_config,
            "use_posix_model": test.use_posix_model,
        }
        return (test.spec_name, dict(test.spec_params), overrides,
                self.backend, self.limits, dict(self.options))


def _execute_shipped(spec_name: str, spec_params: Dict[str, object],
                     overrides: Dict[str, object], backend: str,
                     limits: Optional[ExplorationLimits],
                     options: Dict[str, object]) -> RunResult:
    """Pool-worker entry point: rebuild the test from its spec and run it."""
    from repro.distrib.specs import resolve_test
    test = resolve_test(spec_name, **spec_params)
    test.name = overrides["name"]
    test.strategy = overrides["strategy"]
    test.options = dict(overrides["options"])
    test.engine_config = overrides["engine_config"]
    test.use_posix_model = overrides["use_posix_model"]
    return run_test(test, backend=backend, limits=limits, **dict(options))


@dataclass
class CampaignResult:
    """Aggregated outcome of one campaign run."""

    name: str
    results: Dict[str, RunResult] = field(default_factory=dict)

    # -- aggregation ------------------------------------------------------------------

    @property
    def total_paths(self) -> int:
        return sum(r.paths_completed for r in self.results.values())

    @property
    def total_useful_instructions(self) -> int:
        return sum(r.useful_instructions for r in self.results.values())

    @property
    def all_bugs(self) -> List[BugReport]:
        out: List[BugReport] = []
        for result in self.results.values():
            out.extend(result.bugs)
        return out

    def bug_summaries(self) -> List[str]:
        return sorted({b.summary() for b in self.all_bugs})

    def by_backend(self) -> Dict[str, List[RunResult]]:
        grouped: Dict[str, List[RunResult]] = {}
        for result in self.results.values():
            grouped.setdefault(result.backend, []).append(result)
        return grouped

    def combined_covered_lines(self, test_name: str) -> Set[int]:
        """Union of lines covered by every run of one test's program."""
        covered: Set[int] = set()
        for result in self.results.values():
            if result.test_name == test_name:
                covered.update(result.covered_lines)
        return covered

    def combined_coverage_percent(self, test_name: str) -> float:
        line_count = max((r.line_count for r in self.results.values()
                          if r.test_name == test_name), default=0)
        if not line_count:
            return 0.0
        return 100.0 * len(self.combined_covered_lines(test_name)) / line_count

    def timelines(self) -> Dict[str, object]:
        """Per-entry cluster timelines (entries without one are omitted)."""
        return {label: r.timeline for label, r in self.results.items()
                if r.timeline is not None}

    def summary_rows(self) -> List[Sequence[object]]:
        """(label, backend, workers, paths, coverage %, bugs, instructions)
        rows, ready for a text table."""
        return [
            (label, r.backend, r.num_workers, r.paths_completed,
             round(r.coverage_percent, 1), len(r.bugs), r.total_instructions)
            for label, r in self.results.items()
        ]


class Campaign:
    """An ordered batch of exploration runs over the unified API."""

    def __init__(self, name: str,
                 limits: Optional[ExplorationLimits] = None):
        self.name = name
        #: Default limits applied to entries that do not carry their own.
        self.default_limits = limits
        self.entries: List[CampaignEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- scheduling -------------------------------------------------------------------

    def _unique_label(self, base: str) -> str:
        existing = {entry.label for entry in self.entries}
        if base not in existing:
            return base
        index = 2
        while "%s#%d" % (base, index) in existing:
            index += 1
        return "%s#%d" % (base, index)

    def add(self, test: "SymbolicTest", backend: str = "single",
            limits: Optional[ExplorationLimits] = None,
            label: Optional[str] = None, **options: object) -> CampaignEntry:
        """Schedule one run.  Limit fields among ``options`` fold into
        ``limits``; the rest are backend options (``workers=``, ...).

        Generated labels are made unique automatically; an explicitly given
        duplicate label is an error (results are keyed by label).
        """
        if label is not None and any(e.label == label for e in self.entries):
            raise ValueError("duplicate campaign label %r" % label)
        limits = ExplorationLimits.pop_from(options,
                                            base=limits or self.default_limits)
        entry = CampaignEntry(
            label=label or self._unique_label("%s@%s" % (test.name, backend)),
            test=test, backend=backend, limits=limits, options=options)
        self.entries.append(entry)
        return entry

    def add_tests(self, tests: Iterable["SymbolicTest"],
                  backend: str = "single",
                  limits: Optional[ExplorationLimits] = None,
                  **options: object) -> List[CampaignEntry]:
        """Schedule a list of tests under one shared configuration."""
        return [self.add(test, backend=backend, limits=limits, **dict(options))
                for test in tests]

    def add_grid(self, test: "SymbolicTest",
                 grid: Iterable[Dict[str, object]],
                 limits: Optional[ExplorationLimits] = None) -> List[CampaignEntry]:
        """Schedule one test across a grid of configurations.

        Each grid point is a dict that may name ``backend``, ``label``,
        ``limits``, limit fields, and backend options, e.g.::

            campaign.add_grid(test, [
                {"backend": "single"},
                {"backend": "cluster", "workers": w} for w in (2, 4, 8) ...
            ])
        """
        entries = []
        for point in grid:
            point = dict(point)
            backend = point.pop("backend", "single")
            label = point.pop("label", None)
            point_limits = point.pop("limits", limits)
            entries.append(self.add(test, backend=backend, limits=point_limits,
                                    label=label, **point))
        return entries

    # -- execution --------------------------------------------------------------------

    def run(self, fail_fast: bool = False,
            on_result: Optional[Callable[[CampaignEntry, RunResult], None]] = None,
            processes: Optional[int] = None) -> CampaignResult:
        """Execute every entry and aggregate the outcomes.

        ``fail_fast`` stops the campaign after the first run that reports a
        bug; ``on_result`` is called after each run (progress reporting).

        ``processes=N`` fans the campaign out across a pool of N worker
        processes: entries whose tests were built from a registered spec
        (see :attr:`CampaignEntry.shippable`) execute in the pool, the rest
        in this process.  Results are still reported in entry order, and
        ``fail_fast`` still truncates in entry order -- but pool entries
        scheduled before the truncation point may have run anyway.
        """
        if processes is not None and processes > 1:
            return self._run_pooled(processes, fail_fast, on_result)
        outcome = CampaignResult(name=self.name)
        for entry in self.entries:
            if not self._record(outcome, entry, entry.execute(),
                                fail_fast, on_result):
                break
        return outcome

    def _record(self, outcome: CampaignResult, entry: CampaignEntry,
                result: RunResult, fail_fast: bool,
                on_result: Optional[Callable[[CampaignEntry, RunResult], None]]
                ) -> bool:
        """Record one entry's result; False means fail_fast says stop."""
        outcome.results[entry.label] = result
        if on_result is not None:
            on_result(entry, result)
        return not (fail_fast and result.found_bug)

    def _run_pooled(self, processes: int, fail_fast: bool,
                    on_result: Optional[Callable[[CampaignEntry, RunResult], None]]
                    ) -> CampaignResult:
        from concurrent.futures import ProcessPoolExecutor

        # Prefer fork so specs registered at runtime in this process are
        # visible in the pool workers (the shared process-backend default;
        # spawn-only platforms fall back to import-time registrations).
        from repro.distrib.cluster import default_mp_context

        outcome = CampaignResult(name=self.name)
        gathered: Dict[str, RunResult] = {}
        with ProcessPoolExecutor(max_workers=processes,
                                 mp_context=default_mp_context()) as pool:
            futures = {
                entry.label: pool.submit(_execute_shipped, *entry.ship())
                for entry in self.entries if entry.shippable
            }
            # Non-shippable entries run here while the pool works.
            for entry in self.entries:
                if entry.label not in futures:
                    gathered[entry.label] = entry.execute()
            for label, future in futures.items():
                gathered[label] = future.result()
        for entry in self.entries:
            if not self._record(outcome, entry, gathered[entry.label],
                                fail_fast, on_result):
                break
        return outcome
