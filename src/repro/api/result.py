"""The unified result type returned by every execution backend.

The legacy surface returns two incompatible types -- the single engine's
:class:`~repro.engine.executor.ExplorationResult` and the clusters'
:class:`~repro.cluster.coordinator.ClusterResult` -- with overlapping but
differently named fields, so comparing backends meant per-backend glue in
every benchmark.  :class:`RunResult` adapts both into one shape:

* common fields are first-class (paths, coverage, bugs, test cases,
  useful/replay instruction counts, exhaustion/goal flags);
* backend-specific detail is optional (``rounds_executed`` and ``timeline``
  are ``None`` for single-engine runs; ``steps`` is ``None`` for clusters);
* the original result object stays reachable through ``raw``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.coordinator import ClusterResult
from repro.cluster.stats import ClusterTimeline, TransferCost, WorkerStats
from repro.engine.errors import BugKind, BugReport
from repro.engine.executor import ExplorationResult
from repro.engine.test_case import TestCase

from repro.api.limits import ExplorationLimits

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Backend-independent summary of one exploration run."""

    backend: str
    test_name: str
    num_workers: int = 1
    paths_completed: int = 0
    covered_lines: Set[int] = field(default_factory=set)
    line_count: int = 0
    bugs: List[BugReport] = field(default_factory=list)
    test_cases: List[TestCase] = field(default_factory=list)
    useful_instructions: int = 0
    replay_instructions: int = 0
    exhausted: bool = False
    goal_reached: bool = False
    states_remaining: int = 0
    # Backend-specific extras (None when the backend has no such notion).
    wall_time: Optional[float] = None
    rounds_executed: Optional[int] = None
    steps: Optional[int] = None
    timeline: Optional[ClusterTimeline] = None
    worker_stats: Optional[Dict[int, WorkerStats]] = None
    states_transferred: Optional[int] = None
    #: Wire cost of path-encoded job transfers (None for single-engine runs,
    #: which never transfer; zeroed for clusters that happened not to).
    transfer_cost: Optional[TransferCost] = None
    #: Aggregated solver counters and hit rates (§6: replay rebuilds the
    #: relevant cache entries at the destination worker): constraint/cex
    #: cache hits and misses plus the independence-layer counters
    #: (``independence_groups``, ``groups_solved``, ``independence_hits``,
    #: ``unknown_cache_hits``) summed across every worker's solver.
    cache_stats: Optional[Dict[str, float]] = None
    #: Fault-tolerance counters (cluster backends; §2.3 failure model):
    #: workers that died mid-run, frontier jobs requeued to survivors, and
    #: replacement workers spawned under ``respawn=True``.
    worker_failures: int = 0
    jobs_recovered: int = 0
    respawns: int = 0
    #: Elastic-membership counters (cluster backends): workers that joined /
    #: left mid-run -- voluntarily or via ``autoscale=`` -- and the largest
    #: live membership reached.  The per-round trace is
    #: ``timeline.worker_count_series()``.
    workers_added: int = 0
    workers_removed: int = 0
    peak_workers: int = 0
    #: TCP-transport liveness counters (``backend="tcp"``, :mod:`repro.net`):
    #: worker deaths detected by heartbeat silence (as opposed to connection
    #: loss or a local process exit), and agents admitted into an
    #: already-running cluster -- respawn replacements plus elastic joins.
    heartbeat_misses: int = 0
    agents_reconnected: int = 0
    #: Round index of the checkpoint this run resumed from (None = fresh).
    resumed_from_round: Optional[int] = None
    #: The legacy result object this facade was adapted from.
    raw: object = None

    # -- derived metrics --------------------------------------------------------------

    @property
    def coverage_percent(self) -> float:
        if not self.line_count:
            return 0.0
        return 100.0 * len(self.covered_lines) / self.line_count

    @property
    def total_instructions(self) -> int:
        """All instructions executed, useful and replayed alike."""
        return self.useful_instructions + self.replay_instructions

    @property
    def replay_overhead(self) -> float:
        total = self.total_instructions
        return self.replay_instructions / total if total else 0.0

    @property
    def useful_instructions_per_worker(self) -> float:
        if not self.num_workers:
            return 0.0
        return self.useful_instructions / self.num_workers

    @property
    def independence_hit_rate(self) -> float:
        """Fraction of independent constraint groups answered without a
        fresh search (cache or recent-model reuse), across all workers;
        0.0 when independence partitioning was disabled."""
        return (self.cache_stats or {}).get("independence_hit_rate", 0.0)

    @property
    def worker_rounds(self) -> Optional[int]:
        """Total worker-rounds consumed (Σ live workers over rounds) -- the
        capacity bill an autoscaled run tries to keep below a fixed-size
        one's.  None when the backend keeps no timeline."""
        if self.timeline is None:
            return None
        return self.timeline.worker_rounds()

    @property
    def found_bug(self) -> bool:
        return bool(self.bugs)

    def bug_kinds(self) -> Set[BugKind]:
        return {b.kind for b in self.bugs}

    def bug_summaries(self) -> List[str]:
        return sorted({b.summary() for b in self.bugs})

    def rounds_to_coverage(self, target_percent: float) -> Optional[int]:
        """Rounds until the timeline first reached the target (None when the
        backend keeps no timeline or never reached it)."""
        if self.timeline is None:
            return None
        return self.timeline.rounds_to_coverage(target_percent)

    # -- adapters from the legacy result types ----------------------------------------

    @property
    def transfer_savings_ratio(self) -> float:
        """Prefix-sharing savings of the JobTree transfer encoding."""
        return self.transfer_cost.savings_ratio if self.transfer_cost else 0.0

    @classmethod
    def from_exploration(cls, result: ExplorationResult, *, backend: str = "single",
                         test_name: Optional[str] = None,
                         limits: Optional[ExplorationLimits] = None,
                         cache_stats: Optional[Dict[str, float]] = None) -> "RunResult":
        """Adapt a single-engine :class:`ExplorationResult`.

        ``goal_reached`` is recomputed from ``limits`` because the legacy type
        never recorded why the loop stopped.
        """
        goal = False
        if limits is not None:
            goal = limits.satisfied_by(result.paths_completed,
                                       result.coverage_percent, len(result.bugs))
        return cls(
            backend=backend,
            test_name=test_name if test_name is not None else result.program_name,
            num_workers=1,
            paths_completed=result.paths_completed,
            covered_lines=set(result.covered_lines),
            line_count=result.line_count,
            bugs=list(result.bugs),
            test_cases=list(result.test_cases),
            useful_instructions=result.instructions_executed,
            replay_instructions=0,
            exhausted=result.exhausted,
            goal_reached=goal,
            states_remaining=result.states_remaining,
            wall_time=result.wall_time,
            rounds_executed=None,
            steps=result.steps,
            timeline=None,
            worker_stats=None,
            states_transferred=None,
            transfer_cost=None,
            cache_stats=cache_stats,
            raw=result,
        )

    @classmethod
    def from_cluster(cls, result: ClusterResult, *, backend: str,
                     test_name: str) -> "RunResult":
        """Adapt a :class:`ClusterResult` from any cluster backend."""
        return cls(
            backend=backend,
            test_name=test_name,
            num_workers=result.num_workers,
            paths_completed=result.paths_completed,
            covered_lines=set(result.covered_lines),
            line_count=result.line_count,
            bugs=list(result.bugs),
            test_cases=list(result.test_cases),
            useful_instructions=result.total_useful_instructions,
            replay_instructions=result.total_replay_instructions,
            exhausted=result.exhausted,
            goal_reached=result.goal_reached,
            states_remaining=(result.timeline.snapshots[-1].total_candidates
                              if result.timeline.snapshots else 0),
            wall_time=result.wall_time,
            rounds_executed=result.rounds_executed,
            steps=None,
            timeline=result.timeline,
            worker_stats=dict(result.worker_stats),
            states_transferred=result.total_states_transferred,
            transfer_cost=result.transfer_cost,
            cache_stats=dict(result.cache_stats) if result.cache_stats else None,
            worker_failures=result.worker_failures,
            jobs_recovered=result.jobs_recovered,
            respawns=result.respawns,
            workers_added=result.workers_added,
            workers_removed=result.workers_removed,
            peak_workers=result.peak_workers,
            heartbeat_misses=result.heartbeat_misses,
            agents_reconnected=result.agents_reconnected,
            resumed_from_round=result.resumed_from_round,
            raw=result,
        )
