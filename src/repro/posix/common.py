"""Shared helpers for the POSIX model natives."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.engine.natives import NativeContext
from repro.engine.state import ExecutionState
from repro.posix.buffers import Cell, StreamBuffer
from repro.posix.data import FileDescriptor, posix_of

# POSIX-style error return value in the 32-bit unsigned world of the engine.
ERR = 0xFFFFFFFF


def current_pid(ctx: NativeContext) -> int:
    return ctx.state.current[0]


def lookup_fd(ctx: NativeContext, fd: int) -> Optional[FileDescriptor]:
    return posix_of(ctx.state).lookup(current_pid(ctx), fd)


def lookup_fd_in(state: ExecutionState, fd: int) -> Optional[FileDescriptor]:
    return posix_of(state).lookup(state.current[0], fd)


def ensure_read_wlist(state: ExecutionState, stream: StreamBuffer) -> int:
    if stream.read_wlist is None:
        stream.read_wlist = state.create_wait_list()
    return stream.read_wlist


def ensure_select_wlist(state: ExecutionState) -> int:
    posix = posix_of(state)
    if posix.select_wlist is None:
        posix.select_wlist = state.create_wait_list()
    return posix.select_wlist


def ensure_process_exit_wlist(state: ExecutionState) -> int:
    posix = posix_of(state)
    if posix.process_exit_wlist is None:
        posix.process_exit_wlist = state.create_wait_list()
    return posix.process_exit_wlist


def notify_readers(state: ExecutionState, stream: StreamBuffer) -> None:
    """Wake everything that may be waiting for data on a stream."""
    if stream.read_wlist is not None:
        state.notify(stream.read_wlist, wake_all=True)
    posix = posix_of(state)
    if posix.select_wlist is not None:
        state.notify(posix.select_wlist, wake_all=True)


def copy_cells_to_memory(state: ExecutionState, address: int,
                         cells: Sequence[Cell]) -> None:
    state.mem_write_bytes(address, list(cells))


def read_cells_from_memory(state: ExecutionState, address: int,
                           count: int) -> List[Cell]:
    return state.mem_read_bytes(address, count)


def fresh_symbolic_bytes(state: ExecutionState, label: str, count: int) -> List[Cell]:
    """Create ``count`` fresh symbolic bytes registered as test inputs."""
    symbols = [state.new_symbol(label) for _ in range(count)]
    state.symbolic_inputs.setdefault(label, []).extend(symbols)
    return list(symbols)
