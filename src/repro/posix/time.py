"""Time-related functions over a deterministic virtual clock (§4.3).

Real time sources would break replay determinism (§6 "Broken Replays"): the
same path replayed on another worker must observe the same values.  The model
therefore keeps a per-state virtual clock in :class:`PosixState`:

* every clock query advances the clock by a fixed small step, so successive
  reads are monotonically increasing (programs that measure elapsed time see
  progress);
* the sleep family advances the clock by the requested duration and yields
  the CPU (cooperative scheduling), rather than blocking -- there is no
  hardware timer to deliver a wake-up, and the paper's scheduler is
  cooperative anyway.
"""

from __future__ import annotations

from repro.engine.natives import NativeContext
from repro.posix.common import copy_cells_to_memory
from repro.posix.data import posix_of

NS_PER_SEC = 1_000_000_000
NS_PER_USEC = 1_000
NS_PER_MSEC = 1_000_000


def _advance(ctx: NativeContext, delta_ns: int = 0) -> int:
    """Advance the virtual clock and return the new value in nanoseconds."""
    posix = posix_of(ctx.state)
    posix.clock_ns += posix.clock_step_ns + max(delta_ns, 0)
    return posix.clock_ns


def _store_u32(ctx: NativeContext, address: int, offset: int, value: int) -> None:
    cells = [(value >> (8 * i)) & 0xFF for i in range(4)]
    copy_cells_to_memory(ctx.state, address + offset, cells)


def posix_time(ctx: NativeContext):
    """``time(tloc)`` -> seconds since the (virtual) epoch."""
    now_ns = _advance(ctx)
    seconds = now_ns // NS_PER_SEC
    tloc = ctx.concrete_arg(0, 0)
    if tloc:
        _store_u32(ctx, tloc, 0, seconds & 0xFFFFFFFF)
    return seconds & 0xFFFFFFFF


def posix_gettimeofday(ctx: NativeContext):
    """``gettimeofday(tv)``: seconds at ``tv[0..3]``, microseconds at ``tv[4..7]``."""
    now_ns = _advance(ctx)
    tv = ctx.concrete_arg(0)
    seconds = now_ns // NS_PER_SEC
    micros = (now_ns % NS_PER_SEC) // NS_PER_USEC
    _store_u32(ctx, tv, 0, seconds & 0xFFFFFFFF)
    _store_u32(ctx, tv, 4, micros & 0xFFFFFFFF)
    return 0


def posix_clock_gettime(ctx: NativeContext):
    """``clock_gettime(clk, ts)``: seconds at ``ts[0..3]``, nanoseconds at ``ts[4..7]``."""
    now_ns = _advance(ctx)
    ts = ctx.concrete_arg(1)
    seconds = now_ns // NS_PER_SEC
    nanos = now_ns % NS_PER_SEC
    _store_u32(ctx, ts, 0, seconds & 0xFFFFFFFF)
    _store_u32(ctx, ts, 4, nanos & 0xFFFFFFFF)
    return 0


def _sleep(ctx: NativeContext, duration_ns: int) -> int:
    _advance(ctx, duration_ns)
    # Yield the CPU: sleeping is a preemption point under cooperative
    # scheduling, so other runnable threads get to make progress.
    ctx.state.options["force_reschedule"] = True
    return 0


def posix_sleep(ctx: NativeContext):
    """``sleep(seconds)`` -> 0 (never interrupted in the model)."""
    return _sleep(ctx, ctx.concrete_arg(0) * NS_PER_SEC)


def posix_usleep(ctx: NativeContext):
    """``usleep(microseconds)`` -> 0."""
    return _sleep(ctx, ctx.concrete_arg(0) * NS_PER_USEC)


def posix_nanosleep(ctx: NativeContext):
    """``nanosleep(seconds, nanoseconds)`` -> 0.

    The model takes the duration as two scalar arguments instead of a
    ``struct timespec`` pointer, which is all the small target language
    needs.
    """
    seconds = ctx.concrete_arg(0, 0)
    nanos = ctx.concrete_arg(1, 0)
    return _sleep(ctx, seconds * NS_PER_SEC + nanos)


def posix_clock_ns(ctx: NativeContext):
    """``c9_clock_ns()``: read the raw virtual clock (testing helper).

    Like every other clock query, reading the raw clock ticks it forward by
    one step, so back-to-back reads observe strictly increasing values (as
    long as the step is non-zero).
    """
    return _advance(ctx) & 0xFFFFFFFF


def posix_set_clock_step(ctx: NativeContext):
    """``c9_set_clock_step(ns)``: configure how fast the virtual clock ticks."""
    posix = posix_of(ctx.state)
    posix.clock_step_ns = max(ctx.concrete_arg(0, 1), 0)
    return 0


HANDLERS = {
    "time": posix_time,
    "gettimeofday": posix_gettimeofday,
    "clock_gettime": posix_clock_gettime,
    "sleep": posix_sleep,
    "usleep": posix_usleep,
    "nanosleep": posix_nanosleep,
    "c9_clock_ns": posix_clock_ns,
    "c9_set_clock_step": posix_set_clock_step,
}
