"""The Cloud9 symbolic-testing API (paper §5.1, Table 2).

Besides ``cloud9_make_symbolic`` (provided by the engine) and the fault
injection toggles (in :mod:`repro.posix.fault`), the testing API lets
symbolic tests control global behaviour:

* ``cloud9_set_max_heap(bytes)`` -- simulate low-memory conditions: once the
  modeled heap usage exceeds the limit, ``malloc`` returns NULL.
* ``cloud9_set_scheduler(policy)`` -- select the scheduling policy for the
  current region of code (0 = round robin, 1 = exhaustive schedule forking,
  2 = iterative-context-bounded forking).

This module also provides setup helpers used by the Python-side testing
platform (:mod:`repro.testing`) to pre-populate the modeled environment:
symbolic files, concrete files and UDP datagrams.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.engine.natives import NativeContext
from repro.engine.scheduler import (
    POLICY_CONTEXT_BOUNDED,
    POLICY_FORK_ALL,
    POLICY_ROUND_ROBIN,
)
from repro.engine.state import ExecutionState
from repro.posix.buffers import BlockBuffer, Cell
from repro.posix.data import FileNode, posix_of

SCHEDULER_POLICIES = {
    0: POLICY_ROUND_ROBIN,
    1: POLICY_FORK_ALL,
    2: POLICY_CONTEXT_BOUNDED,
}


def cloud9_set_max_heap(ctx: NativeContext):
    """Set the maximum modeled heap size for symbolic malloc (Table 2)."""
    ctx.state.options["max_heap"] = ctx.concrete_arg(0)
    return 0


def cloud9_set_scheduler(ctx: NativeContext):
    """Select the scheduler policy (Table 2): 0=RR, 1=fork-all, 2=context-bounded."""
    policy_code = ctx.concrete_arg(0)
    policy = SCHEDULER_POLICIES.get(policy_code)
    if policy is None:
        return 0xFFFFFFFF
    ctx.state.options["scheduler_policy"] = policy
    ctx.state.options["fork_schedules"] = policy in (POLICY_FORK_ALL,
                                                     POLICY_CONTEXT_BOUNDED)
    if policy == POLICY_CONTEXT_BOUNDED:
        ctx.state.options.setdefault("context_bound", 2)
    return 0


def cloud9_set_max_instructions(ctx: NativeContext):
    """Per-path instruction budget (the hang detector of §7.3.3)."""
    ctx.state.options["max_instructions"] = ctx.concrete_arg(0)
    return 0


HANDLERS = {
    "cloud9_set_max_heap": cloud9_set_max_heap,
    "cloud9_set_scheduler": cloud9_set_scheduler,
    "cloud9_set_max_instructions": cloud9_set_max_instructions,
}


# -- Python-side environment setup helpers (used by repro.testing) -----------------


def add_concrete_file(state: ExecutionState, path: Union[str, bytes],
                      contents: bytes) -> None:
    """Create a file with concrete contents in the modeled file system."""
    if isinstance(path, str):
        path = path.encode("latin-1")
    node = FileNode(path=path, data=BlockBuffer())
    node.data.set_contents(list(contents))
    posix_of(state).filesystem[path] = node


def add_symbolic_file(state: ExecutionState, path: Union[str, bytes],
                      size: int, label: Optional[str] = None) -> None:
    """Create a file whose contents are fresh symbolic bytes."""
    if isinstance(path, str):
        path = path.encode("latin-1")
    label = label or "file_%s" % path.decode("latin-1").strip("/").replace("/", "_")
    cells = [state.new_symbol(label) for _ in range(size)]
    state.symbolic_inputs.setdefault(label, []).extend(cells)
    node = FileNode(path=path, data=BlockBuffer(), symbolic=True)
    node.data.set_contents(cells)
    posix_of(state).filesystem[path] = node


def queue_udp_datagram(state: ExecutionState, port: int,
                       payload: Sequence[Cell]) -> bool:
    """Deliver a datagram to a bound UDP port (test harness helper)."""
    posix = posix_of(state)
    target = posix.udp_ports.get(port)
    if target is None:
        return False
    target.queue.push_datagram(list(payload))
    return True
