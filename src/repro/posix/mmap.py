"""Memory-mapped files and anonymous mappings (paper §4.3 "mmap() calls").

The model supports the mapping modes the paper's targets rely on:

* ``MAP_ANONYMOUS | MAP_PRIVATE`` -- plain memory, private to the process;
* ``MAP_ANONYMOUS | MAP_SHARED``  -- memory placed in the CoW domain so it is
  visible to every process of the state (the substrate ``fork()``-heavy
  programs use for shared counters);
* file-backed ``MAP_PRIVATE``     -- a snapshot of the file contents at map
  time; later stores do not reach the file;
* file-backed ``MAP_SHARED``      -- stores are written back to the modeled
  file on ``msync`` and on ``munmap``.

The mapping bookkeeping lives in :class:`~repro.posix.data.PosixState`, so it
forks together with the execution state.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.natives import NativeContext
from repro.posix.common import ERR, lookup_fd
from repro.posix.data import FdKind, MemoryMapping, posix_of

PROT_NONE = 0x0
PROT_READ = 0x1
PROT_WRITE = 0x2

MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_ANONYMOUS = 0x20

# POSIX returns MAP_FAILED ((void *) -1) on error.
MAP_FAILED = 0xFFFFFFFF


def _file_cells(ctx: NativeContext, fd: int, offset: int, length: int) -> Optional[List[object]]:
    """The ``length`` cells of the file behind ``fd`` starting at ``offset``."""
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.FILE or entry.file is None:
        return None
    cells = entry.file.data.read(offset, length)
    if len(cells) < length:
        cells = list(cells) + [0] * (length - len(cells))
    return cells


def posix_mmap(ctx: NativeContext):
    """``mmap(addr, length, prot, flags, fd, offset)`` -> mapped address.

    ``addr`` is accepted for signature compatibility and ignored (the model
    always chooses the placement, like ``addr == NULL``).
    """
    length = ctx.concrete_arg(1)
    prot = ctx.concrete_arg(2, PROT_READ | PROT_WRITE)
    flags = ctx.concrete_arg(3, MAP_PRIVATE | MAP_ANONYMOUS)
    fd = ctx.concrete_arg(4, 0xFFFFFFFF)
    offset = ctx.concrete_arg(5, 0)
    if length <= 0:
        return MAP_FAILED

    state = ctx.state
    posix = posix_of(state)
    shared = bool(flags & MAP_SHARED)
    anonymous = bool(flags & MAP_ANONYMOUS)

    cells: Optional[List[object]] = None
    file_path = None
    if not anonymous:
        entry = lookup_fd(ctx, fd)
        if entry is None or entry.kind != FdKind.FILE or entry.file is None:
            return MAP_FAILED
        cells = _file_cells(ctx, fd, offset, length)
        file_path = entry.file.path

    if shared:
        obj = state.allocate_shared(length, name="mmap")
    else:
        obj = state.allocate(length, name="mmap")
    if cells is not None:
        obj.cells = list(cells)

    mapping = MemoryMapping(
        address=obj.address,
        length=length,
        shared=shared,
        file_path=file_path if shared or not anonymous else None,
        file_offset=offset,
        writable=bool(prot & PROT_WRITE),
    )
    posix.mappings[obj.address] = mapping
    return obj.address


def _write_back(ctx: NativeContext, mapping: MemoryMapping) -> int:
    """Flush a shared file-backed mapping to the modeled file."""
    if not mapping.shared or mapping.file_path is None:
        return 0
    posix = posix_of(ctx.state)
    node = posix.filesystem.get(mapping.file_path)
    if node is None or not node.exists:
        return ERR
    cells = ctx.read_bytes(mapping.address, mapping.length)
    node.data.write(mapping.file_offset, cells)
    return 0


def posix_msync(ctx: NativeContext):
    """``msync(addr, length, flags)``: write back a shared file mapping."""
    address = ctx.concrete_arg(0)
    mapping = posix_of(ctx.state).mappings.get(address)
    if mapping is None:
        return ERR
    return _write_back(ctx, mapping)


def posix_munmap(ctx: NativeContext):
    """``munmap(addr, length)``: flush (if shared file-backed) and unmap."""
    address = ctx.concrete_arg(0)
    posix = posix_of(ctx.state)
    mapping = posix.mappings.get(address)
    if mapping is None:
        return ERR
    status = _write_back(ctx, mapping)
    del posix.mappings[address]
    state = ctx.state
    if mapping.shared:
        # Shared objects live in the CoW domain; drop the sharing record.
        obj = state.cow_domain.resolve(address)
        if obj is not None:
            state.cow_domain.unshare(obj[0].address)
    else:
        try:
            state.free(address)
        except Exception:
            return ERR
    return status


def posix_mprotect(ctx: NativeContext):
    """``mprotect(addr, length, prot)``: record the new writability."""
    address = ctx.concrete_arg(0)
    prot = ctx.concrete_arg(2, PROT_READ | PROT_WRITE)
    mapping = posix_of(ctx.state).mappings.get(address)
    if mapping is None:
        return ERR
    mapping.writable = bool(prot & PROT_WRITE)
    return 0


HANDLERS = {
    "mmap": posix_mmap,
    "munmap": posix_munmap,
    "msync": posix_msync,
    "mprotect": posix_mprotect,
}
