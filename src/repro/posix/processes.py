"""Process management: fork, exit, waitpid, getpid.

``fork()`` builds on the engine's ``cloud9_process_fork`` symbolic system
call (Table 1): the engine duplicates the address space within the state
(CoW) and the model duplicates the file-descriptor table, exactly as the
paper describes the split between engine-held and model-held process
information.
"""

from __future__ import annotations

from repro.engine.natives import Block, ExitProcess, NativeContext
from repro.engine.state import ThreadStatus
from repro.engine.syscalls import cloud9_process_fork
from repro.posix.common import ERR, ensure_process_exit_wlist
from repro.posix.data import posix_of


def posix_fork(ctx: NativeContext):
    """``fork()``: returns the child pid in the parent and 0 in the child."""
    parent_pid = ctx.state.current[0]
    child_pid = cloud9_process_fork(ctx)
    posix_of(ctx.state).duplicate_table(parent_pid, child_pid)
    return child_pid


def posix_getpid(ctx: NativeContext):
    return ctx.state.current[0]


def posix_getppid(ctx: NativeContext):
    process = ctx.state.current_process
    return process.parent_pid


def posix_exit(ctx: NativeContext):
    """``exit(code)``: terminate the calling process, waking any waiters."""
    state = ctx.state
    posix = posix_of(state)
    if posix.process_exit_wlist is not None:
        state.notify(posix.process_exit_wlist, wake_all=True)
    raise ExitProcess(ctx.arg(0))


def _process_finished(state, pid: int) -> bool:
    process = state.processes.get(pid)
    if process is None:
        return True
    if not process.alive:
        return True
    return all(t.status == ThreadStatus.TERMINATED for t in process.threads.values())


def posix_waitpid(ctx: NativeContext):
    """``waitpid(pid)``: block until the child exits; returns its exit code."""
    pid = ctx.concrete_arg(0)
    state = ctx.state
    process = state.processes.get(pid)
    if process is None:
        return ERR  # ECHILD
    if _process_finished(state, pid):
        code = process.exit_code
        if code is None:
            # The child's main thread returned instead of calling exit().
            main_thread = process.threads.get(0)
            code = main_thread.exit_value if main_thread is not None else 0
        return code
    # Also register as a joiner of the child's main thread so that a child
    # that simply returns from its entry function (without calling exit())
    # still wakes the waiter.
    main_thread = process.threads.get(0)
    me = state.current
    if main_thread is not None and me not in main_thread.joiners:
        main_thread.joiners.append(me)
    raise Block(ensure_process_exit_wlist(state))


HANDLERS = {
    "fork": posix_fork,
    "getpid": posix_getpid,
    "getppid": posix_getppid,
    "waitpid": posix_waitpid,
    # exit() with waiter notification replaces the engine's bare exit.
    "exit": posix_exit,
}
