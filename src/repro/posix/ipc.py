"""System V style IPC: shared memory segments and message queues (§4.3).

The paper lists "IPC routines" among the components added to the POSIX model
to run the evaluation targets.  This module provides the two families the
targets use:

* **Shared memory** -- ``shmget``/``shmat``/``shmdt``/``shmctl``.  A segment
  is backed by one object in the engine's CoW domain, so (like the paper's
  ``cloud9_make_shared``) stores by any process are visible to every process
  of the execution state, while remaining private to that state.
* **Message queues** -- ``msgget``/``msgsnd``/``msgrcv``.  Queues are
  bounded; senders block when a queue is full and receivers block when it is
  empty, using the engine's sleep/notify symbolic system calls.

Handles returned to programs are the IPC *keys* themselves (the model has a
single namespace per state), which keeps the modeled API easy to drive from
the small target language.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.natives import Block, NativeContext
from repro.posix.common import ERR, copy_cells_to_memory, read_cells_from_memory
from repro.posix.data import MessageQueue, SharedMemorySegment, posix_of

IPC_CREAT = 0x200
IPC_EXCL = 0x400
IPC_RMID = 0
IPC_NOWAIT = 0x800

# msgrcv() returns -1 with errno ENOMSG in non-blocking mode.
ENOMSG = 42


# -- shared memory ---------------------------------------------------------------


def posix_shmget(ctx: NativeContext):
    """``shmget(key, size, flags)`` -> shm id (the key itself)."""
    key = ctx.concrete_arg(0)
    size = ctx.concrete_arg(1)
    flags = ctx.concrete_arg(2, 0)
    posix = posix_of(ctx.state)
    segment = posix.shm_segments.get(key)
    if segment is None:
        if not flags & IPC_CREAT:
            return ERR
        if size <= 0:
            return ERR
        segment = SharedMemorySegment(key=key, size=size)
        posix.shm_segments[key] = segment
        return key
    if flags & IPC_CREAT and flags & IPC_EXCL:
        return ERR  # EEXIST
    if size > segment.size:
        return ERR  # EINVAL
    return key


def posix_shmat(ctx: NativeContext):
    """``shmat(shmid)`` -> address of the segment in the CoW domain."""
    key = ctx.concrete_arg(0)
    posix = posix_of(ctx.state)
    segment = posix.shm_segments.get(key)
    if segment is None:
        return ERR
    if segment.address is None:
        obj = ctx.state.allocate_shared(segment.size, name="shm:%d" % key)
        segment.address = obj.address
    segment.attach_count += 1
    return segment.address


def posix_shmdt(ctx: NativeContext):
    """``shmdt(addr)``: detach; the segment is destroyed once unused and removed."""
    address = ctx.concrete_arg(0)
    posix = posix_of(ctx.state)
    for segment in posix.shm_segments.values():
        if segment.address == address and segment.attach_count > 0:
            segment.attach_count -= 1
            if segment.marked_for_removal and segment.attach_count == 0:
                _destroy_segment(ctx, segment)
            return 0
    return ERR


def posix_shmctl(ctx: NativeContext):
    """``shmctl(shmid, cmd)`` supporting ``IPC_RMID``."""
    key = ctx.concrete_arg(0)
    cmd = ctx.concrete_arg(1, IPC_RMID)
    posix = posix_of(ctx.state)
    segment = posix.shm_segments.get(key)
    if segment is None:
        return ERR
    if cmd != IPC_RMID:
        return ERR
    segment.marked_for_removal = True
    if segment.attach_count == 0:
        _destroy_segment(ctx, segment)
    return 0


def _destroy_segment(ctx: NativeContext, segment: SharedMemorySegment) -> None:
    posix = posix_of(ctx.state)
    if segment.address is not None:
        ctx.state.cow_domain.unshare(segment.address)
    posix.shm_segments.pop(segment.key, None)


# -- message queues ----------------------------------------------------------------


def posix_msgget(ctx: NativeContext):
    """``msgget(key, flags)`` -> queue id (the key itself)."""
    key = ctx.concrete_arg(0)
    flags = ctx.concrete_arg(1, 0)
    posix = posix_of(ctx.state)
    queue = posix.message_queues.get(key)
    if queue is None:
        if not flags & IPC_CREAT:
            return ERR
        posix.message_queues[key] = MessageQueue(key=key)
        return key
    if flags & IPC_CREAT and flags & IPC_EXCL:
        return ERR
    return key


def _queue(ctx: NativeContext, key: int) -> Optional[MessageQueue]:
    return posix_of(ctx.state).message_queues.get(key)


def posix_msgsnd(ctx: NativeContext):
    """``msgsnd(qid, mtype, buf, n, flags)``: enqueue one message (may block)."""
    key = ctx.concrete_arg(0)
    mtype = ctx.concrete_arg(1, 1)
    buf_addr = ctx.concrete_arg(2)
    n = ctx.concrete_arg(3)
    flags = ctx.concrete_arg(4, 0)
    queue = _queue(ctx, key)
    if queue is None or n < 0:
        return ERR
    if queue.bytes_used + n > queue.max_bytes:
        if flags & IPC_NOWAIT:
            return ERR  # EAGAIN
        if queue.write_wlist is None:
            queue.write_wlist = ctx.state.create_wait_list()
        raise Block(queue.write_wlist)
    cells = read_cells_from_memory(ctx.state, buf_addr, n)
    queue.messages.append((mtype, list(cells)))
    if queue.read_wlist is not None:
        ctx.state.notify(queue.read_wlist, wake_all=True)
    return 0


def posix_msgrcv(ctx: NativeContext):
    """``msgrcv(qid, buf, n, mtype, flags)``: dequeue one message (may block).

    ``mtype == 0`` takes the first message of any type; a positive ``mtype``
    takes the first message of exactly that type.
    """
    key = ctx.concrete_arg(0)
    buf_addr = ctx.concrete_arg(1)
    n = ctx.concrete_arg(2)
    mtype = ctx.concrete_arg(3, 0)
    flags = ctx.concrete_arg(4, 0)
    queue = _queue(ctx, key)
    if queue is None:
        return ERR

    index = None
    for i, (message_type, _body) in enumerate(queue.messages):
        if mtype == 0 or message_type == mtype:
            index = i
            break
    if index is None:
        if flags & IPC_NOWAIT:
            return ERR  # ENOMSG
        if queue.read_wlist is None:
            queue.read_wlist = ctx.state.create_wait_list()
        raise Block(queue.read_wlist)

    _message_type, body = queue.messages.pop(index)
    delivered: List[object] = list(body[:n])
    copy_cells_to_memory(ctx.state, buf_addr, delivered)
    if queue.write_wlist is not None:
        ctx.state.notify(queue.write_wlist, wake_all=True)
    return len(delivered)


def posix_msgctl(ctx: NativeContext):
    """``msgctl(qid, cmd)`` supporting ``IPC_RMID``."""
    key = ctx.concrete_arg(0)
    cmd = ctx.concrete_arg(1, IPC_RMID)
    posix = posix_of(ctx.state)
    if key not in posix.message_queues or cmd != IPC_RMID:
        return ERR
    queue = posix.message_queues.pop(key)
    # Wake anything still blocked so sleeping threads do not become a
    # spurious deadlock report.
    if queue.read_wlist is not None:
        ctx.state.notify(queue.read_wlist, wake_all=True)
    if queue.write_wlist is not None:
        ctx.state.notify(queue.write_wlist, wake_all=True)
    return 0


HANDLERS = {
    "shmget": posix_shmget,
    "shmat": posix_shmat,
    "shmdt": posix_shmdt,
    "shmctl": posix_shmctl,
    "msgget": posix_msgget,
    "msgsnd": posix_msgsnd,
    "msgrcv": posix_msgrcv,
    "msgctl": posix_msgctl,
}
