"""Files, descriptors and the generic ``read``/``write``/``close`` natives.

The file model follows KLEE/Cloud9 semantics (§4.3): a descriptor either
refers to a *symbolic file* backed by a block buffer, or to a *concrete file*
whose contents were preloaded from the host (external calls are restricted to
read-only accesses, so the model simply snapshots the data at setup time).

``read`` and ``write`` are the dispatch points for every descriptor kind
(files, sockets, pipes, character devices) and are where the Cloud9 testing
extensions hook in:

* ``SIO_SYMBOLIC``      -- reads return fresh symbolic bytes;
* ``SIO_PKT_FRAGMENT``  -- reads on stream sockets return a prefix of the
  available data, either following an explicit fragmentation pattern or
  forking over every possible fragment size (symbolic fragmentation);
* ``SIO_FAULT_INJ`` / ``cloud9_fi_enable`` -- operations may fail with -1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.natives import Block, ForkBranch, NativeContext, NativeFork
from repro.engine.state import ExecutionState
from repro.posix.buffers import BlockBuffer, Cell, StreamBuffer
from repro.posix.common import (
    ERR,
    copy_cells_to_memory,
    current_pid,
    ensure_read_wlist,
    fresh_symbolic_bytes,
    lookup_fd,
    lookup_fd_in,
    notify_readers,
    read_cells_from_memory,
)
from repro.posix.data import FdKind, FileDescriptor, FileNode, posix_of
from repro.posix.fault import fault_injection_active, fork_with_fault
from repro.solver import expr as E

# open() flags (the subset the targets use).
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


# -- open / close / lseek / unlink ---------------------------------------------


def posix_open(ctx: NativeContext):
    """``open(path, flags)`` on the modeled file system."""
    path = ctx.read_c_string(ctx.concrete_arg(0))
    flags = ctx.concrete_arg(1, O_RDONLY)
    posix = posix_of(ctx.state)
    node = posix.filesystem.get(path)
    if node is None or not node.exists:
        if not flags & O_CREAT:
            return ERR
        node = FileNode(path=path, data=BlockBuffer())
        posix.filesystem[path] = node
    if flags & O_TRUNC:
        node.data.truncate(0)
    descriptor = FileDescriptor(fd=-1, kind=FdKind.FILE, file=node)
    return posix.allocate_fd(current_pid(ctx), descriptor)


def posix_close(ctx: NativeContext):
    fd = ctx.concrete_arg(0)
    entry = lookup_fd(ctx, fd)
    if entry is None:
        return ERR
    entry.closed = True
    if entry.endpoint is not None:
        entry.endpoint.tx.close_write()
        entry.endpoint.rx.close_read()
        notify_readers(ctx.state, entry.endpoint.tx)
    if entry.listener is not None:
        posix_of(ctx.state).listeners.pop(entry.listener.port, None)
    if entry.dgram is not None and entry.dgram.port is not None:
        posix_of(ctx.state).udp_ports.pop(entry.dgram.port, None)
    return 0


def posix_lseek(ctx: NativeContext):
    fd = ctx.concrete_arg(0)
    offset = ctx.concrete_arg(1)
    whence = ctx.concrete_arg(2, SEEK_SET)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.FILE:
        return ERR
    size = entry.file.data.size
    if whence == SEEK_SET:
        entry.offset = offset
    elif whence == SEEK_CUR:
        entry.offset += offset
    elif whence == SEEK_END:
        entry.offset = size + offset
    else:
        return ERR
    return entry.offset


def posix_unlink(ctx: NativeContext):
    path = ctx.read_c_string(ctx.concrete_arg(0))
    posix = posix_of(ctx.state)
    node = posix.filesystem.get(path)
    if node is None or not node.exists:
        return ERR
    node.exists = False
    return 0


def posix_file_size(ctx: NativeContext):
    """``c9_file_size(path)`` -- helper used by targets and tests."""
    path = ctx.read_c_string(ctx.concrete_arg(0))
    node = posix_of(ctx.state).filesystem.get(path)
    if node is None or not node.exists:
        return ERR
    return node.data.size


def posix_dup(ctx: NativeContext):
    fd = ctx.concrete_arg(0)
    entry = lookup_fd(ctx, fd)
    if entry is None:
        return ERR
    clone = FileDescriptor(
        fd=-1, kind=entry.kind, file=entry.file, offset=entry.offset,
        endpoint=entry.endpoint, listener=entry.listener, dgram=entry.dgram)
    return posix_of(ctx.state).allocate_fd(current_pid(ctx), clone)


# -- read -------------------------------------------------------------------------


@dataclass
class _ReadPlan:
    """What a read would return if executed now (computed without side effects)."""

    count: int
    is_stream: bool = False
    is_datagram: bool = False


def _stream_of(entry: FileDescriptor) -> Optional[StreamBuffer]:
    if entry.endpoint is not None:
        return entry.endpoint.rx
    return None


def _plan_read(ctx: NativeContext, entry: FileDescriptor, n: int) -> _ReadPlan:
    """Determine how many bytes a read can return, blocking if none yet."""
    if entry.kind == FdKind.FILE:
        available = max(entry.file.data.size - entry.offset, 0)
        return _ReadPlan(count=min(n, available))
    if entry.kind == FdKind.CHAR_SOURCE:
        return _ReadPlan(count=0)
    if entry.kind in (FdKind.SOCKET_STREAM, FdKind.PIPE_READ):
        stream = _stream_of(entry)
        if stream is None:
            return _ReadPlan(count=0)
        if stream.is_empty and not stream.write_closed:
            raise Block(ensure_read_wlist(ctx.state, stream))
        if stream.at_eof:
            return _ReadPlan(count=0, is_stream=True)
        return _ReadPlan(count=min(n, len(stream)), is_stream=True)
    if entry.kind == FdKind.SOCKET_DGRAM:
        queue = entry.dgram.queue
        if not queue.has_datagram:
            raise Block(ensure_read_wlist(ctx.state, queue))
        size = queue.datagram_sizes[0]
        return _ReadPlan(count=min(n, size), is_datagram=True)
    return _ReadPlan(count=0)


def _commit_read(state: ExecutionState, fd: int, buf_addr: int, count: int,
                 consume_pattern: bool) -> None:
    """Perform the data movement of a read of ``count`` bytes on ``state``."""
    entry = lookup_fd_in(state, fd)
    if entry is None or count == 0:
        return
    if entry.kind == FdKind.FILE:
        cells = entry.file.data.read(entry.offset, count)
        entry.offset += len(cells)
        copy_cells_to_memory(state, buf_addr, cells)
        return
    if entry.kind in (FdKind.SOCKET_STREAM, FdKind.PIPE_READ):
        stream = _stream_of(entry)
        cells = stream.pop(count)
        copy_cells_to_memory(state, buf_addr, cells)
        if consume_pattern and entry.fragment_pattern:
            entry.fragment_pattern.pop(0)
        return
    if entry.kind == FdKind.SOCKET_DGRAM:
        cells = entry.dgram.queue.pop_datagram(max_bytes=count)
        copy_cells_to_memory(state, buf_addr, cells)
        return


def posix_read(ctx: NativeContext):
    """``read(fd, buf, n)`` with symbolic-source, fragmentation and faults."""
    fd = ctx.concrete_arg(0)
    buf_addr = ctx.concrete_arg(1)
    n = ctx.concrete_arg(2)
    entry = lookup_fd(ctx, fd)
    if entry is None:
        return ERR
    if entry.kind in (FdKind.CHAR_SINK, FdKind.SOCKET_LISTEN):
        return ERR
    if n <= 0:
        return 0
    state = ctx.state
    fault_active = fault_injection_active(ctx, entry, is_write=False)

    # Symbolic input source (SIO_SYMBOLIC): fresh symbolic bytes.
    if entry.symbolic_source:
        posix = posix_of(state)
        posix.symbolic_read_counter += 1
        label = "fd%d_read%d" % (fd, posix.symbolic_read_counter)
        cells = fresh_symbolic_bytes(state, label, n)

        def deliver(target: ExecutionState, data=cells, addr=buf_addr) -> None:
            copy_cells_to_memory(target, addr, data)

        if fault_active:
            return fork_with_fault(ctx, "read", n, deliver)
        deliver(state)
        return n

    plan = _plan_read(ctx, entry, n)
    if plan.count == 0:
        return 0

    count = plan.count
    pattern_used = False
    if plan.is_stream and entry.fragment_reads and entry.fragment_pattern:
        count = min(count, entry.fragment_pattern[0])
        pattern_used = True

    if fault_active:
        def success(target: ExecutionState, c=count, used=pattern_used) -> None:
            _commit_read(target, fd, buf_addr, c, used)

        return fork_with_fault(ctx, "read", count, success)

    if (plan.is_stream and entry.fragment_reads and not entry.fragment_pattern
            and count > 1):
        # Symbolic stream fragmentation: fork one successor per fragment size.
        # The fan-out per read can be bounded with the ``frag_choice_limit``
        # option (sizes 1..limit-1 plus "everything available"), which keeps
        # exhaustive fragmentation searches tractable for longer requests.
        limit = state.options.get("frag_choice_limit")
        sizes = list(range(1, count + 1))
        if limit is not None and count > int(limit):
            sizes = list(range(1, int(limit))) + [count]
        chooser = state.new_symbol("frag_fd%d" % fd)
        state.symbolic_inputs.setdefault("fragmentation", []).append(chooser)
        branches: List[ForkBranch] = []
        for size in sizes:
            def effect(target: ExecutionState, c=size) -> None:
                _commit_read(target, fd, buf_addr, c, False)

            branches.append(ForkBranch(
                condition=E.eq(chooser, E.bv_const(size, 8)),
                return_value=size, side_effect=effect,
                label="frag:%d" % size))
        return NativeFork(branches)

    _commit_read(state, fd, buf_addr, count, pattern_used)
    return count


# -- write -------------------------------------------------------------------------


def posix_write(ctx: NativeContext):
    """``write(fd, buf, n)`` with fault injection."""
    fd = ctx.concrete_arg(0)
    buf_addr = ctx.concrete_arg(1)
    n = ctx.concrete_arg(2)
    entry = lookup_fd(ctx, fd)
    if entry is None:
        return ERR
    if entry.kind in (FdKind.CHAR_SOURCE, FdKind.SOCKET_LISTEN):
        return ERR
    if n <= 0:
        return 0
    state = ctx.state
    cells = read_cells_from_memory(state, buf_addr, n)

    if entry.kind in (FdKind.SOCKET_STREAM, FdKind.PIPE_WRITE):
        peer = entry.endpoint.tx if entry.endpoint is not None else None
        if peer is None or peer.read_closed or peer.write_closed:
            return ERR  # EPIPE

    data = list(cells)  # snapshot: `cells` may be a live view of state memory

    def success(target: ExecutionState) -> None:
        _commit_write(target, fd, data)

    if fault_injection_active(ctx, entry, is_write=True):
        return fork_with_fault(ctx, "write", n, success)
    success(state)
    return n


def _commit_write(state: ExecutionState, fd: int, cells: List[Cell]) -> None:
    entry = lookup_fd_in(state, fd)
    if entry is None:
        return
    if entry.kind == FdKind.FILE:
        entry.file.data.write(entry.offset, cells)
        entry.offset += len(cells)
        return
    if entry.kind == FdKind.CHAR_SINK:
        return
    if entry.kind in (FdKind.SOCKET_STREAM, FdKind.PIPE_WRITE):
        stream = entry.endpoint.tx
        stream.push(cells)
        notify_readers(state, stream)
        return
    if entry.kind == FdKind.SOCKET_DGRAM:
        # write() on an unconnected datagram socket is not modeled.
        return


HANDLERS = {
    "open": posix_open,
    "close": posix_close,
    "lseek": posix_lseek,
    "unlink": posix_unlink,
    "dup": posix_dup,
    "read": posix_read,
    "write": posix_write,
    "recv": posix_read,
    "send": posix_write,
    "c9_file_size": posix_file_size,
}
