"""``select()``-style polling over modeled descriptors (paper §4.3).

"The Cloud9 POSIX model supports polling through the select() interface.
[...] The select() model relies on the event notification support offered by
the stream buffers that are used in the implementation of blocking I/O
objects (currently sockets and pipes)."

The native's calling convention is adapted to the reproduction's language
(no fd_set bit manipulation):

``select(read_fds, n_read, write_fds, n_write, timeout)`` where ``read_fds``
and ``write_fds`` are byte arrays of descriptor numbers.  The return value is
a bitmask: bit *i* is set when ``read_fds[i]`` is readable and bit *16+j*
when ``write_fds[j]`` is writable.  ``timeout == 0`` polls without blocking;
any other value blocks until at least one descriptor becomes ready.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.natives import Block, NativeContext
from repro.engine.values import is_concrete
from repro.posix.common import ERR, ensure_select_wlist, lookup_fd
from repro.posix.data import FdKind, FileDescriptor


def _fd_readable(entry: FileDescriptor) -> bool:
    if entry.kind == FdKind.FILE:
        return True
    if entry.kind == FdKind.SOCKET_LISTEN:
        return bool(entry.listener.pending)
    if entry.kind == FdKind.SOCKET_DGRAM:
        return entry.dgram.queue.has_datagram
    if entry.kind in (FdKind.SOCKET_STREAM, FdKind.PIPE_READ):
        return entry.endpoint is not None and entry.endpoint.rx.readable
    if entry.kind == FdKind.CHAR_SOURCE:
        return False
    return False


def _fd_writable(entry: FileDescriptor) -> bool:
    if entry.kind in (FdKind.FILE, FdKind.CHAR_SINK):
        return True
    if entry.kind in (FdKind.SOCKET_STREAM, FdKind.PIPE_WRITE):
        return entry.endpoint is not None and entry.endpoint.tx.writable
    if entry.kind == FdKind.SOCKET_DGRAM:
        return True
    return False


def _read_fd_list(ctx: NativeContext, address: int, count: int) -> List[int]:
    if address == 0 or count == 0:
        return []
    fds: List[int] = []
    for i in range(count):
        cell = ctx.state.mem_read(address, i)
        fds.append(cell if is_concrete(cell) else ctx.concretize(cell))
    return fds


def posix_select(ctx: NativeContext):
    read_addr = ctx.concrete_arg(0)
    n_read = ctx.concrete_arg(1)
    write_addr = ctx.concrete_arg(2, 0)
    n_write = ctx.concrete_arg(3, 0)
    timeout = ctx.concrete_arg(4, 1)

    read_fds = _read_fd_list(ctx, read_addr, n_read)
    write_fds = _read_fd_list(ctx, write_addr, n_write)
    if not read_fds and not write_fds:
        return 0

    mask = 0
    any_symbolic_source = False
    for i, fd in enumerate(read_fds):
        entry = lookup_fd(ctx, fd)
        if entry is None:
            return ERR
        if entry.symbolic_source:
            any_symbolic_source = True
        if entry.symbolic_source or _fd_readable(entry):
            mask |= 1 << i
    for j, fd in enumerate(write_fds):
        entry = lookup_fd(ctx, fd)
        if entry is None:
            return ERR
        if _fd_writable(entry):
            mask |= 1 << (16 + j)

    if mask or timeout == 0 or any_symbolic_source:
        return mask
    # Nothing ready: block on the model-wide select wait list, which every
    # data-producing operation notifies.
    raise Block(ensure_select_wlist(ctx.state))


HANDLERS = {
    "select": posix_select,
}
