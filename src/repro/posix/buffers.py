"""Stream buffers and block buffers.

Section 4.3: "The two most important data structures are stream buffers and
block buffers, analogous to character and block device types in UNIX.
Stream buffers model half-duplex communication channels: they are generic
producer-consumer queues of bytes, with support for event notification to
multiple listeners. [...] Block buffers are random-access, fixed-size
buffers, whose operations do not block; they are used to implement symbolic
files."

Cells are either concrete ints (0..255) or symbolic 8-bit expressions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Union

from repro.solver.expr import Expr

Cell = Union[int, Expr]


class StreamBuffer:
    """A producer-consumer byte queue with event notification.

    ``read_wlist`` is the engine wait-list id used by blocked readers.  Event
    notification to *multiple* listeners (the paper's polling support) is
    handled by the POSIX model's global select wait list; see
    :mod:`repro.posix.polling`.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.cells: Deque[Cell] = deque()
        self.write_closed = False
        self.read_closed = False
        self.read_wlist: Optional[int] = None
        self.write_wlist: Optional[int] = None
        # Datagram boundaries (UDP): lengths of messages, in order.  Empty
        # for plain byte streams.
        self.datagram_sizes: Deque[int] = deque()

    # -- state -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def is_empty(self) -> bool:
        return not self.cells

    @property
    def has_data(self) -> bool:
        return bool(self.cells)

    @property
    def at_eof(self) -> bool:
        return self.write_closed and not self.cells

    @property
    def readable(self) -> bool:
        """True when a read would not block (data available or EOF)."""
        return self.has_data or self.write_closed

    @property
    def writable(self) -> bool:
        if self.read_closed or self.write_closed:
            return False
        if self.capacity is None:
            return True
        return len(self.cells) < self.capacity

    # -- byte-stream operations ----------------------------------------------------

    def push(self, data: Sequence[Cell]) -> int:
        """Append bytes; returns the number accepted (capacity-limited)."""
        if self.write_closed or self.read_closed:
            return 0
        if self.capacity is None:
            accepted = len(data)
        else:
            accepted = min(len(data), self.capacity - len(self.cells))
        for cell in list(data)[:accepted]:
            self.cells.append(cell)
        return accepted

    def pop(self, count: int) -> List[Cell]:
        """Remove and return up to ``count`` bytes from the front."""
        out: List[Cell] = []
        while self.cells and len(out) < count:
            out.append(self.cells.popleft())
        return out

    def peek(self, count: int) -> List[Cell]:
        out: List[Cell] = []
        for cell in self.cells:
            if len(out) >= count:
                break
            out.append(cell)
        return out

    # -- datagram operations ----------------------------------------------------------

    def push_datagram(self, data: Sequence[Cell]) -> None:
        """Append one datagram, preserving its boundary."""
        self.cells.extend(data)
        self.datagram_sizes.append(len(data))

    def pop_datagram(self, max_bytes: Optional[int] = None) -> List[Cell]:
        """Remove one datagram (truncated to ``max_bytes`` if given).

        Excess bytes of a truncated datagram are discarded, matching UDP
        recvfrom semantics.
        """
        if not self.datagram_sizes:
            return []
        size = self.datagram_sizes.popleft()
        data = [self.cells.popleft() for _ in range(size)]
        if max_bytes is not None and len(data) > max_bytes:
            data = data[:max_bytes]
        return data

    @property
    def has_datagram(self) -> bool:
        return bool(self.datagram_sizes)

    # -- shutdown ---------------------------------------------------------------------

    def close_write(self) -> None:
        self.write_closed = True

    def close_read(self) -> None:
        self.read_closed = True


class BlockBuffer:
    """A random-access buffer of cells (the backing store of modeled files)."""

    def __init__(self, size: int = 0, fill: Cell = 0):
        self.cells: List[Cell] = [fill] * size

    @property
    def size(self) -> int:
        return len(self.cells)

    def read(self, offset: int, count: int) -> List[Cell]:
        """Read up to ``count`` cells starting at ``offset`` (short at EOF)."""
        if offset >= len(self.cells):
            return []
        return list(self.cells[offset:offset + count])

    def write(self, offset: int, data: Sequence[Cell]) -> int:
        """Write cells at ``offset``, growing the buffer as needed."""
        end = offset + len(data)
        if end > len(self.cells):
            self.cells.extend([0] * (end - len(self.cells)))
        for i, cell in enumerate(data):
            self.cells[offset + i] = cell
        return len(data)

    def truncate(self, size: int) -> None:
        if size < len(self.cells):
            del self.cells[size:]
        else:
            self.cells.extend([0] * (size - len(self.cells)))

    def set_contents(self, data: Sequence[Cell]) -> None:
        self.cells = list(data)
