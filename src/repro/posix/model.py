"""Wiring of the POSIX model into the symbolic execution engine.

:func:`install_posix_model` is passed to the executor (or called on it) and

* registers every modeled native function (files, sockets, pipes, select,
  pthreads, processes, fault injection, ioctl, testing API), and
* installs a per-state initializer that creates the model's auxiliary state
  and the three standard descriptors.

This mirrors Fig. 4 of the paper: the program under test is linked against a
symbolic C library whose POSIX parts are the model, which in turn speaks to
the engine only through the symbolic system calls of Table 1.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.executor import SymbolicExecutor
from repro.engine.natives import NativeHandler
from repro.engine.state import ExecutionState
from repro.posix import (
    api,
    env,
    fault,
    filesystem,
    ioctl,
    ipc,
    mmap,
    pipes,
    polling,
    processes,
    sockets,
    threads,
    time,
)
from repro.posix.data import POSIX_ENV_KEY, FdKind, FileDescriptor, PosixState


def posix_handlers() -> Dict[str, NativeHandler]:
    """All native handlers contributed by the POSIX model."""
    handlers: Dict[str, NativeHandler] = {}
    for module in (filesystem, sockets, pipes, polling, threads, processes,
                   fault, ioctl, api, mmap, ipc, time, env):
        handlers.update(module.HANDLERS)
    return handlers


def initialize_posix_state(state: ExecutionState) -> None:
    """Create the model's bookkeeping and standard descriptors for a state."""
    posix = PosixState()
    state.env_for_write()[POSIX_ENV_KEY] = posix
    main_pid = 1
    table = posix.table_for(main_pid)
    table[0] = FileDescriptor(fd=0, kind=FdKind.CHAR_SOURCE)
    table[1] = FileDescriptor(fd=1, kind=FdKind.CHAR_SINK)
    table[2] = FileDescriptor(fd=2, kind=FdKind.CHAR_SINK)
    posix.next_fd[main_pid] = 3


def install_posix_model(executor: SymbolicExecutor) -> None:
    """Register the POSIX model with an executor instance."""
    executor.natives.register_all(posix_handlers())
    executor.state_initializers.append(initialize_posix_state)
