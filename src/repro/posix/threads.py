"""POSIX threads model: create/join/exit, mutexes, condition variables,
semaphores and barriers.

The model follows §4.3 of the paper: "Modeling synchronization routines is
simplified by the cooperative scheduling policy: no locks are necessary, and
all synchronization can be done using the sleep/notify symbolic system calls,
together with reference counters."  The mutex implementation mirrors Fig. 5
(taken flag, owner, waiting queue); blocking is expressed with the engine's
sleep-and-retry convention so a woken thread re-checks the mutex before
taking it.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.engine.errors import BugKind
from repro.engine.natives import Block, NativeContext
from repro.engine.state import ThreadStatus
from repro.engine.syscalls import cloud9_thread_create, cloud9_thread_terminate
from repro.posix.common import ERR
from repro.posix.data import (
    CondVarRecord,
    MutexRecord,
    SemaphoreRecord,
    posix_of,
)

# errno-style return values used by the model.
EPERM = 1
EBUSY = 16
EDEADLK = 35


def _me(ctx: NativeContext) -> Tuple[int, int]:
    return ctx.state.current


# -- thread lifecycle --------------------------------------------------------------


def pthread_create(ctx: NativeContext):
    """``pthread_create(function_name, argument)`` -> thread id.

    Uses the engine's ``cloud9_thread_create`` primitive, exactly as the
    paper's pthreads model does.
    """
    return cloud9_thread_create(ctx)


def pthread_exit(ctx: NativeContext):
    return cloud9_thread_terminate(ctx)


def pthread_self(ctx: NativeContext):
    return ctx.state.current[1]


def pthread_join(ctx: NativeContext):
    """``pthread_join(tid)`` -> the thread's exit value (blocking)."""
    tid = ctx.concrete_arg(0)
    pid = ctx.state.current[0]
    if tid == ctx.state.current[1]:
        return ERR  # EDEADLK: joining self
    process = ctx.state.processes.get(pid)
    target = process.threads.get(tid) if process is not None else None
    if target is None:
        return ERR  # ESRCH
    if target.status == ThreadStatus.TERMINATED:
        return target.exit_value
    me = _me(ctx)
    if me not in target.joiners:
        target.joiners.append(me)
    # Sleep without a queue; the terminating thread wakes its joiners
    # directly, after which this call re-executes and returns the value.
    raise Block(None)


def pthread_yield(ctx: NativeContext):
    ctx.state.options["force_reschedule"] = True
    return 0


# -- mutexes --------------------------------------------------------------------------


def pthread_mutex_init(ctx: NativeContext):
    """Create a mutex and return its handle."""
    posix = posix_of(ctx.state)
    handle = posix.new_handle()
    posix.mutexes[handle] = MutexRecord()
    return handle


def _mutex(ctx: NativeContext, handle: int) -> Optional[MutexRecord]:
    return posix_of(ctx.state).mutexes.get(handle)


def pthread_mutex_lock(ctx: NativeContext):
    handle = ctx.concrete_arg(0)
    mutex = _mutex(ctx, handle)
    if mutex is None:
        return ERR
    if mutex.taken:
        if mutex.owner == _me(ctx):
            return EDEADLK
        if mutex.wlist is None:
            mutex.wlist = ctx.state.create_wait_list()
        mutex.queued += 1
        raise Block(mutex.wlist)
    if mutex.queued > 0:
        # This thread was woken from the queue and re-executes the call.
        mutex.queued -= 1
    mutex.taken = True
    mutex.owner = _me(ctx)
    return 0


def pthread_mutex_trylock(ctx: NativeContext):
    handle = ctx.concrete_arg(0)
    mutex = _mutex(ctx, handle)
    if mutex is None:
        return ERR
    if mutex.taken:
        return EBUSY
    mutex.taken = True
    mutex.owner = _me(ctx)
    return 0


def pthread_mutex_unlock(ctx: NativeContext):
    handle = ctx.concrete_arg(0)
    mutex = _mutex(ctx, handle)
    if mutex is None:
        return ERR
    if not mutex.taken or mutex.owner != _me(ctx):
        return EPERM
    mutex.taken = False
    mutex.owner = None
    if mutex.wlist is not None:
        ctx.state.notify(mutex.wlist, wake_all=False)
    return 0


def pthread_mutex_destroy(ctx: NativeContext):
    handle = ctx.concrete_arg(0)
    posix = posix_of(ctx.state)
    mutex = posix.mutexes.get(handle)
    if mutex is None:
        return ERR
    if mutex.taken:
        return EBUSY
    del posix.mutexes[handle]
    return 0


# -- condition variables ---------------------------------------------------------------


def pthread_cond_init(ctx: NativeContext):
    posix = posix_of(ctx.state)
    handle = posix.new_handle()
    posix.condvars[handle] = CondVarRecord()
    return handle


def pthread_cond_wait(ctx: NativeContext):
    """``pthread_cond_wait(cond, mutex)`` with the usual atomicity contract.

    The call is re-executed after each wake-up; a per-thread phase marker
    distinguishes the "release the mutex and sleep" phase from the
    "re-acquire the mutex and return" phase.
    """
    cond_handle = ctx.concrete_arg(0)
    mutex_handle = ctx.concrete_arg(1)
    posix = posix_of(ctx.state)
    cond = posix.condvars.get(cond_handle)
    mutex = posix.mutexes.get(mutex_handle)
    if cond is None or mutex is None:
        return ERR
    me = _me(ctx)

    if posix.cond_wait_phase.get(me) != cond_handle:
        # Phase 1: the caller must hold the mutex; release it and sleep.
        if not mutex.taken or mutex.owner != me:
            return EPERM
        mutex.taken = False
        mutex.owner = None
        if mutex.wlist is not None:
            ctx.state.notify(mutex.wlist, wake_all=False)
        if cond.wlist is None:
            cond.wlist = ctx.state.create_wait_list()
        posix.cond_wait_phase[me] = cond_handle
        raise Block(cond.wlist)

    # Phase 2: woken up; re-acquire the mutex (possibly blocking again).
    if mutex.taken:
        if mutex.wlist is None:
            mutex.wlist = ctx.state.create_wait_list()
        raise Block(mutex.wlist)
    mutex.taken = True
    mutex.owner = me
    del posix.cond_wait_phase[me]
    return 0


def pthread_cond_signal(ctx: NativeContext):
    cond = posix_of(ctx.state).condvars.get(ctx.concrete_arg(0))
    if cond is None:
        return ERR
    if cond.wlist is not None:
        ctx.state.notify(cond.wlist, wake_all=False)
    return 0


def pthread_cond_broadcast(ctx: NativeContext):
    cond = posix_of(ctx.state).condvars.get(ctx.concrete_arg(0))
    if cond is None:
        return ERR
    if cond.wlist is not None:
        ctx.state.notify(cond.wlist, wake_all=True)
    return 0


def pthread_cond_destroy(ctx: NativeContext):
    posix = posix_of(ctx.state)
    if posix.condvars.pop(ctx.concrete_arg(0), None) is None:
        return ERR
    return 0


# -- semaphores ---------------------------------------------------------------------------


def sem_init(ctx: NativeContext):
    """``sem_init(initial_value)`` -> handle."""
    posix = posix_of(ctx.state)
    handle = posix.new_handle()
    posix.semaphores[handle] = SemaphoreRecord(value=ctx.concrete_arg(0, 0))
    return handle


def sem_wait(ctx: NativeContext):
    sem = posix_of(ctx.state).semaphores.get(ctx.concrete_arg(0))
    if sem is None:
        return ERR
    if sem.value <= 0:
        if sem.wlist is None:
            sem.wlist = ctx.state.create_wait_list()
        raise Block(sem.wlist)
    sem.value -= 1
    return 0


def sem_trywait(ctx: NativeContext):
    sem = posix_of(ctx.state).semaphores.get(ctx.concrete_arg(0))
    if sem is None:
        return ERR
    if sem.value <= 0:
        return EBUSY
    sem.value -= 1
    return 0


def sem_post(ctx: NativeContext):
    sem = posix_of(ctx.state).semaphores.get(ctx.concrete_arg(0))
    if sem is None:
        return ERR
    sem.value += 1
    if sem.wlist is not None:
        ctx.state.notify(sem.wlist, wake_all=False)
    return 0


HANDLERS = {
    "pthread_create": pthread_create,
    "pthread_exit": pthread_exit,
    "pthread_self": pthread_self,
    "pthread_join": pthread_join,
    "pthread_yield": pthread_yield,
    "sched_yield": pthread_yield,
    "pthread_mutex_init": pthread_mutex_init,
    "pthread_mutex_lock": pthread_mutex_lock,
    "pthread_mutex_trylock": pthread_mutex_trylock,
    "pthread_mutex_unlock": pthread_mutex_unlock,
    "pthread_mutex_destroy": pthread_mutex_destroy,
    "pthread_cond_init": pthread_cond_init,
    "pthread_cond_wait": pthread_cond_wait,
    "pthread_cond_signal": pthread_cond_signal,
    "pthread_cond_broadcast": pthread_cond_broadcast,
    "pthread_cond_destroy": pthread_cond_destroy,
    "sem_init": sem_init,
    "sem_wait": sem_wait,
    "sem_trywait": sem_trywait,
    "sem_post": sem_post,
}
