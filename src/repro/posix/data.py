"""POSIX model state: descriptor tables and system-object records.

The engine keeps only minimal process/thread information (identifiers,
running status, parenthood); everything else mandated by POSIX -- open file
descriptors, flags, sockets, synchronization objects -- is stored by the
model in auxiliary structures held in the execution state's environment area
(``state.env['posix']``), mirroring §4.3 of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.state import ExecutionState
from repro.posix.buffers import BlockBuffer, StreamBuffer


class FdKind(enum.Enum):
    FILE = "file"
    SOCKET_STREAM = "socket_stream"
    SOCKET_DGRAM = "socket_dgram"
    SOCKET_LISTEN = "socket_listen"
    PIPE_READ = "pipe_read"
    PIPE_WRITE = "pipe_write"
    CHAR_SINK = "char_sink"       # stdout / stderr
    CHAR_SOURCE = "char_source"   # stdin


@dataclass
class FileNode:
    """An entry in the modeled file system."""

    path: bytes
    data: BlockBuffer = field(default_factory=BlockBuffer)
    symbolic: bool = False
    exists: bool = True
    concrete_passthrough: bool = False   # "concrete file" mode of the paper


@dataclass
class StreamEndpoint:
    """One end of a full-duplex connection (Fig. 6: a TX and an RX buffer)."""

    rx: StreamBuffer
    tx: StreamBuffer
    peer_port: Optional[int] = None
    local_port: Optional[int] = None
    connected: bool = True


@dataclass
class ListeningSocket:
    """A passive TCP socket with its backlog of pending connections."""

    port: int
    backlog: int = 8
    pending: List[StreamEndpoint] = field(default_factory=list)
    accept_wlist: Optional[int] = None


@dataclass
class DatagramSocket:
    """A UDP socket: one receive queue with datagram boundaries."""

    port: Optional[int] = None
    queue: StreamBuffer = field(default_factory=StreamBuffer)


@dataclass
class MutexRecord:
    taken: bool = False
    owner: Optional[Tuple[int, int]] = None
    wlist: Optional[int] = None
    queued: int = 0


@dataclass
class CondVarRecord:
    wlist: Optional[int] = None


@dataclass
class SemaphoreRecord:
    value: int = 0
    wlist: Optional[int] = None


@dataclass
class SharedMemorySegment:
    """A System V style shared memory segment (``shmget``/``shmat``)."""

    key: int
    size: int
    address: Optional[int] = None      # address once attached (CoW domain)
    attach_count: int = 0
    marked_for_removal: bool = False


@dataclass
class MessageQueue:
    """A System V style message queue (``msgget``/``msgsnd``/``msgrcv``)."""

    key: int
    messages: List[Tuple[int, List[object]]] = field(default_factory=list)
    max_bytes: int = 2048
    read_wlist: Optional[int] = None
    write_wlist: Optional[int] = None

    @property
    def bytes_used(self) -> int:
        return sum(len(body) for _mtype, body in self.messages)


@dataclass
class MemoryMapping:
    """One ``mmap`` region: where it is, what backs it, and how it is shared."""

    address: int
    length: int
    shared: bool = False
    file_path: Optional[bytes] = None
    file_offset: int = 0
    writable: bool = True


@dataclass
class FileDescriptor:
    """A per-process descriptor with Cloud9's per-fd testing flags."""

    fd: int
    kind: FdKind
    file: Optional[FileNode] = None
    offset: int = 0
    endpoint: Optional[StreamEndpoint] = None
    listener: Optional[ListeningSocket] = None
    dgram: Optional[DatagramSocket] = None
    # Cloud9 ioctl extension flags (Table 3), split by direction where the
    # paper's API allows RD / WR selection.
    symbolic_source: bool = False
    fragment_reads: bool = False
    fragment_pattern: Optional[List[int]] = None
    fault_inject_read: bool = False
    fault_inject_write: bool = False
    closed: bool = False


class PosixState:
    """All POSIX-model bookkeeping for one execution state."""

    def __init__(self):
        self.fd_tables: Dict[int, Dict[int, FileDescriptor]] = {}
        self.next_fd: Dict[int, int] = {}
        self.filesystem: Dict[bytes, FileNode] = {}
        self.listeners: Dict[int, ListeningSocket] = {}
        self.udp_ports: Dict[int, DatagramSocket] = {}
        self.mutexes: Dict[int, MutexRecord] = {}
        self.condvars: Dict[int, CondVarRecord] = {}
        self.semaphores: Dict[int, SemaphoreRecord] = {}
        self.next_handle: int = 1
        self.fault_injection_enabled: bool = False
        self.fault_counter: int = 0
        self.select_wlist: Optional[int] = None
        self.process_exit_wlist: Optional[int] = None
        self.cond_wait_phase: Dict[Tuple[int, int], int] = {}
        self.symbolic_read_counter: int = 0
        # System V style IPC objects (§4.3 "IPC routines").
        self.shm_segments: Dict[int, SharedMemorySegment] = {}
        self.message_queues: Dict[int, MessageQueue] = {}
        # mmap regions, keyed by mapped base address (§4.3 "mmap() calls").
        self.mappings: Dict[int, MemoryMapping] = {}
        # Virtual clock (nanoseconds) for the time-related functions
        # (§4.3 "time-related functions"): deterministic and replay-safe.
        self.clock_ns: int = 1_000_000_000_000
        self.clock_step_ns: int = 1_000_000
        # Modeled process environment variables (name -> concrete bytes or
        # symbolic cells), shared by all processes of the state.
        self.env_vars: Dict[bytes, List[object]] = {}

    # -- descriptor management -------------------------------------------------------

    def table_for(self, pid: int) -> Dict[int, FileDescriptor]:
        return self.fd_tables.setdefault(pid, {})

    def allocate_fd(self, pid: int, descriptor: FileDescriptor) -> int:
        table = self.table_for(pid)
        fd = self.next_fd.get(pid, 3)
        while fd in table:
            fd += 1
        self.next_fd[pid] = fd + 1
        descriptor.fd = fd
        table[fd] = descriptor
        return fd

    def lookup(self, pid: int, fd: int) -> Optional[FileDescriptor]:
        entry = self.table_for(pid).get(fd)
        if entry is None or entry.closed:
            return None
        return entry

    def duplicate_table(self, parent_pid: int, child_pid: int) -> None:
        """Share the parent's descriptors with a forked child (POSIX fork)."""
        parent = self.table_for(parent_pid)
        self.fd_tables[child_pid] = dict(parent)
        self.next_fd[child_pid] = self.next_fd.get(parent_pid, 3)

    def new_handle(self) -> int:
        handle = self.next_handle
        self.next_handle += 1
        return handle


POSIX_ENV_KEY = "posix"


def posix_of(state: ExecutionState) -> PosixState:
    """The POSIX model data of a state (installed by ``install_posix_model``).

    Goes through the state's copy-on-write barrier: model data is freely
    mutated by every syscall handler, so the first access after a fork peels
    the state's private copy off the shared environment area.
    """
    posix = state.env_for_write().get(POSIX_ENV_KEY)
    if posix is None:
        raise RuntimeError(
            "POSIX model not installed for this state; "
            "construct the executor with install_posix_model")
    return posix
