"""Process environment variables, including symbolic ones.

Environment variables are a classic source of under-tested program inputs
(the paper's Coreutils experiments exercise utilities whose behaviour depends
on ``POSIXLY_CORRECT``-style variables).  The model keeps one environment per
execution state, shared by all processes, and lets symbolic tests either
pre-populate concrete values or mark a variable's value fully symbolic.

Program-facing natives:

* ``getenv(name)``   -> address of a NUL-terminated copy of the value, or 0;
* ``setenv(name, value, overwrite)`` / ``unsetenv(name)``;
* ``c9_env_symbolic(name, size)`` -- make the variable's value ``size``
  fresh symbolic bytes (the per-variable analogue of ``SIO_SYMBOLIC``).

Test-harness helpers (Python side): :func:`add_env_var`,
:func:`add_symbolic_env_var`.
"""

from __future__ import annotations

from typing import List, Union

from repro.engine.natives import NativeContext
from repro.engine.state import ExecutionState
from repro.posix.buffers import Cell
from repro.posix.data import posix_of


def _env_value_address(ctx: NativeContext, cells: List[Cell]) -> int:
    """Copy an environment value into fresh memory and return its address."""
    obj = ctx.allocate(len(cells) + 1, name="env")
    obj.cells = list(cells) + [0]
    return obj.address


def posix_getenv(ctx: NativeContext):
    """``getenv(name)`` -> address of the value (NUL-terminated), or NULL."""
    name = ctx.read_c_string(ctx.concrete_arg(0))
    cells = posix_of(ctx.state).env_vars.get(name)
    if cells is None:
        return 0
    return _env_value_address(ctx, list(cells))


def posix_setenv(ctx: NativeContext):
    """``setenv(name, value, overwrite)``."""
    name = ctx.read_c_string(ctx.concrete_arg(0))
    value = ctx.read_c_string(ctx.concrete_arg(1))
    overwrite = ctx.concrete_arg(2, 1)
    env = posix_of(ctx.state).env_vars
    if name in env and not overwrite:
        return 0
    env[name] = list(value)
    return 0


def posix_unsetenv(ctx: NativeContext):
    """``unsetenv(name)``."""
    name = ctx.read_c_string(ctx.concrete_arg(0))
    posix_of(ctx.state).env_vars.pop(name, None)
    return 0


def c9_env_symbolic(ctx: NativeContext):
    """``c9_env_symbolic(name, size)``: make a variable's value symbolic."""
    name = ctx.read_c_string(ctx.concrete_arg(0))
    size = ctx.concrete_arg(1)
    state = ctx.state
    label = "env_%s" % name.decode("latin-1")
    symbols = [state.new_symbol(label) for _ in range(size)]
    state.symbolic_inputs.setdefault(label, []).extend(symbols)
    posix_of(state).env_vars[name] = list(symbols)
    return 0


HANDLERS = {
    "getenv": posix_getenv,
    "setenv": posix_setenv,
    "unsetenv": posix_unsetenv,
    "c9_env_symbolic": c9_env_symbolic,
}


# -- Python-side setup helpers (used by repro.testing) ---------------------------


def add_env_var(state: ExecutionState, name: Union[str, bytes],
                value: Union[str, bytes]) -> None:
    """Pre-populate one concrete environment variable for a test."""
    if isinstance(name, str):
        name = name.encode("latin-1")
    if isinstance(value, str):
        value = value.encode("latin-1")
    posix_of(state).env_vars[name] = list(value)


def add_symbolic_env_var(state: ExecutionState, name: Union[str, bytes],
                         size: int, label: str = None) -> None:
    """Pre-populate one environment variable with fresh symbolic bytes."""
    if isinstance(name, str):
        name = name.encode("latin-1")
    label = label or "env_%s" % name.decode("latin-1")
    symbols = [state.new_symbol(label) for _ in range(size)]
    state.symbolic_inputs.setdefault(label, []).extend(symbols)
    posix_of(state).env_vars[name] = list(symbols)
