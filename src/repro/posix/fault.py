"""Symbolic fault injection (paper §5.1, "Fault Injection").

Calls in a POSIX system can return an error code when they fail; Cloud9
simulates such failures whenever fault injection is turned on -- globally via
``cloud9_fi_enable``/``cloud9_fi_disable`` or per descriptor via
``ioctl(fd, SIO_FAULT_INJ, RD|WR)``.

A fault-injection point forks the state: the success branch performs the real
operation, the failure branch returns -1 and records the injected fault.  The
choice is driven by a fresh symbolic byte so that generated test cases show
which calls failed; states also count their injected faults so the
"fewest faults first" strategy (§7.3.3) can order exploration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.natives import ForkBranch, NativeContext, NativeFork
from repro.engine.state import ExecutionState
from repro.engine.values import Value
from repro.posix.common import ERR
from repro.posix.data import FileDescriptor, posix_of
from repro.solver import expr as E


def fault_injection_active(ctx: NativeContext, entry: Optional[FileDescriptor],
                           is_write: bool) -> bool:
    """Whether this call site should consider injecting a failure."""
    posix = posix_of(ctx.state)
    if ctx.state.options.get("fault_injection_all", False):
        return True
    if posix.fault_injection_enabled:
        return True
    if entry is None:
        return False
    return entry.fault_inject_write if is_write else entry.fault_inject_read


def record_injected_fault(state: ExecutionState, call_name: str) -> None:
    state.options["faults_injected"] = int(state.options.get("faults_injected", 0)) + 1
    log = state.options.setdefault("fault_log", [])
    log.append(call_name)


def fork_with_fault(ctx: NativeContext, call_name: str,
                    success_value: Value,
                    success_effect: Optional[Callable[[ExecutionState], None]],
                    failure_value: Value = ERR) -> NativeFork:
    """Build the two-way fork for a fault-injection point.

    The caller supplies the return value of the successful operation and a
    side-effect callback that performs the operation on the successor state.
    """
    posix = posix_of(ctx.state)
    posix.fault_counter += 1
    label = "fault_%s_%d" % (call_name, posix.fault_counter)
    chooser = ctx.state.new_symbol(label)
    ctx.state.symbolic_inputs.setdefault("faults", []).append(chooser)
    zero = E.bv_const(0, 8)

    def failure_effect(state: ExecutionState) -> None:
        record_injected_fault(state, call_name)

    return NativeFork([
        ForkBranch(condition=E.eq(chooser, zero), return_value=success_value,
                   side_effect=success_effect, label="%s:ok" % call_name),
        ForkBranch(condition=E.ne(chooser, zero), return_value=failure_value,
                   side_effect=failure_effect, label="%s:fail" % call_name),
    ])


# -- Table 2 API ---------------------------------------------------------------


def cloud9_fi_enable(ctx: NativeContext):
    """Enable fault injection for every descriptor until disabled."""
    posix_of(ctx.state).fault_injection_enabled = True
    return 0


def cloud9_fi_disable(ctx: NativeContext):
    posix_of(ctx.state).fault_injection_enabled = False
    return 0


HANDLERS = {
    "cloud9_fi_enable": cloud9_fi_enable,
    "cloud9_fi_disable": cloud9_fi_disable,
}
