"""TCP and UDP socket model over a single-IP network (paper §4.3, Fig. 6).

"Since no actual hardware is involved in the packet transmission, we can
collapse the entire networking stack into a simple scheme based on two
stream buffers. The network is modeled as a single-IP network with multiple
available ports -- this configuration is sufficient to connect multiple
processes to each other, in order to simulate and test distributed systems."

A TCP connection is a pair of :class:`StreamEndpoint` objects wired so that
one side's TX buffer is the other side's RX buffer.  UDP sockets own one
datagram queue each, addressed by port number.
"""

from __future__ import annotations

from typing import Tuple

from repro.engine.natives import Block, NativeContext
from repro.posix.buffers import StreamBuffer
from repro.posix.common import (
    ERR,
    current_pid,
    ensure_read_wlist,
    lookup_fd,
    notify_readers,
    read_cells_from_memory,
    copy_cells_to_memory,
)
from repro.posix.data import (
    DatagramSocket,
    FdKind,
    FileDescriptor,
    ListeningSocket,
    StreamEndpoint,
    posix_of,
)

# socket() type argument values (AF is ignored: the network has a single IP).
SOCK_STREAM = 1
SOCK_DGRAM = 2


def _connected_pair() -> Tuple[StreamEndpoint, StreamEndpoint]:
    """Two endpoints wired back-to-back (each TX feeds the peer's RX)."""
    a_to_b = StreamBuffer()
    b_to_a = StreamBuffer()
    side_a = StreamEndpoint(rx=b_to_a, tx=a_to_b)
    side_b = StreamEndpoint(rx=a_to_b, tx=b_to_a)
    return side_a, side_b


def posix_socket(ctx: NativeContext):
    """``socket(domain, type)``: create an unbound stream or datagram socket."""
    sock_type = ctx.concrete_arg(1, SOCK_STREAM)
    posix = posix_of(ctx.state)
    if sock_type == SOCK_DGRAM:
        descriptor = FileDescriptor(fd=-1, kind=FdKind.SOCKET_DGRAM,
                                    dgram=DatagramSocket())
    else:
        descriptor = FileDescriptor(fd=-1, kind=FdKind.SOCKET_STREAM,
                                    endpoint=None)
    return posix.allocate_fd(current_pid(ctx), descriptor)


def posix_bind(ctx: NativeContext):
    """``bind(fd, port)`` on the single-IP network."""
    fd = ctx.concrete_arg(0)
    port = ctx.concrete_arg(1)
    entry = lookup_fd(ctx, fd)
    if entry is None:
        return ERR
    posix = posix_of(ctx.state)
    if entry.kind == FdKind.SOCKET_DGRAM:
        if port in posix.udp_ports:
            return ERR  # EADDRINUSE
        entry.dgram.port = port
        posix.udp_ports[port] = entry.dgram
        return 0
    if entry.kind == FdKind.SOCKET_STREAM:
        if port in posix.listeners:
            return ERR
        # The port is remembered; listen() turns the descriptor passive.
        entry.endpoint = None
        entry.offset = port  # stash the bound port until listen()
        return 0
    return ERR


def posix_listen(ctx: NativeContext):
    """``listen(fd, backlog)``: make a bound stream socket passive."""
    fd = ctx.concrete_arg(0)
    backlog = ctx.concrete_arg(1, 8)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.SOCKET_STREAM:
        return ERR
    posix = posix_of(ctx.state)
    port = entry.offset
    listener = ListeningSocket(port=port, backlog=backlog)
    posix.listeners[port] = listener
    entry.kind = FdKind.SOCKET_LISTEN
    entry.listener = listener
    return 0


def posix_accept(ctx: NativeContext):
    """``accept(fd)``: return a connected descriptor, blocking until one exists."""
    fd = ctx.concrete_arg(0)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.SOCKET_LISTEN:
        return ERR
    listener = entry.listener
    if not listener.pending:
        if listener.accept_wlist is None:
            listener.accept_wlist = ctx.state.create_wait_list()
        raise Block(listener.accept_wlist)
    endpoint = listener.pending.pop(0)
    descriptor = FileDescriptor(fd=-1, kind=FdKind.SOCKET_STREAM,
                                endpoint=endpoint)
    return posix_of(ctx.state).allocate_fd(current_pid(ctx), descriptor)


def posix_connect(ctx: NativeContext):
    """``connect(fd, port)``: establish a connection to a listening socket."""
    fd = ctx.concrete_arg(0)
    port = ctx.concrete_arg(1)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.SOCKET_STREAM:
        return ERR
    posix = posix_of(ctx.state)
    listener = posix.listeners.get(port)
    if listener is None:
        return ERR  # ECONNREFUSED
    if len(listener.pending) >= listener.backlog:
        return ERR
    client_side, server_side = _connected_pair()
    client_side.peer_port = port
    server_side.local_port = port
    entry.endpoint = client_side
    listener.pending.append(server_side)
    if listener.accept_wlist is not None:
        ctx.state.notify(listener.accept_wlist, wake_all=True)
    if posix.select_wlist is not None:
        ctx.state.notify(posix.select_wlist, wake_all=True)
    return 0


def posix_socketpair(ctx: NativeContext):
    """``socketpair(buf)``: create a connected pair, storing the two fds.

    The two descriptor numbers are written as single bytes at ``buf[0]`` and
    ``buf[1]`` (descriptor numbers are small).  This mirrors the convenience
    with which symbolic tests wire a "client" and a "server" together without
    a full connect/accept handshake.
    """
    buf_addr = ctx.concrete_arg(0)
    posix = posix_of(ctx.state)
    pid = current_pid(ctx)
    side_a, side_b = _connected_pair()
    fd_a = posix.allocate_fd(pid, FileDescriptor(fd=-1, kind=FdKind.SOCKET_STREAM,
                                                 endpoint=side_a))
    fd_b = posix.allocate_fd(pid, FileDescriptor(fd=-1, kind=FdKind.SOCKET_STREAM,
                                                 endpoint=side_b))
    copy_cells_to_memory(ctx.state, buf_addr, [fd_a & 0xFF, fd_b & 0xFF])
    return 0


def posix_shutdown(ctx: NativeContext):
    """``shutdown(fd, how)``: 0 = read side, 1 = write side, 2 = both."""
    fd = ctx.concrete_arg(0)
    how = ctx.concrete_arg(1, 2)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.endpoint is None:
        return ERR
    if how in (0, 2):
        entry.endpoint.rx.close_read()
    if how in (1, 2):
        entry.endpoint.tx.close_write()
        notify_readers(ctx.state, entry.endpoint.tx)
    return 0


# -- UDP ----------------------------------------------------------------------------


def posix_sendto(ctx: NativeContext):
    """``sendto(fd, buf, n, port)``: deliver one datagram to a bound UDP port."""
    fd = ctx.concrete_arg(0)
    buf_addr = ctx.concrete_arg(1)
    n = ctx.concrete_arg(2)
    port = ctx.concrete_arg(3)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.SOCKET_DGRAM:
        return ERR
    posix = posix_of(ctx.state)
    target = posix.udp_ports.get(port)
    if target is None:
        return ERR
    cells = read_cells_from_memory(ctx.state, buf_addr, n)
    target.queue.push_datagram(cells)
    notify_readers(ctx.state, target.queue)
    return n


def posix_recvfrom(ctx: NativeContext):
    """``recvfrom(fd, buf, n)``: receive one datagram (blocking)."""
    fd = ctx.concrete_arg(0)
    buf_addr = ctx.concrete_arg(1)
    n = ctx.concrete_arg(2)
    entry = lookup_fd(ctx, fd)
    if entry is None or entry.kind != FdKind.SOCKET_DGRAM:
        return ERR
    queue = entry.dgram.queue
    if not queue.has_datagram:
        raise Block(ensure_read_wlist(ctx.state, queue))
    cells = queue.pop_datagram(max_bytes=n)
    copy_cells_to_memory(ctx.state, buf_addr, cells)
    return len(cells)


HANDLERS = {
    "socket": posix_socket,
    "bind": posix_bind,
    "listen": posix_listen,
    "accept": posix_accept,
    "connect": posix_connect,
    "socketpair": posix_socketpair,
    "shutdown": posix_shutdown,
    "sendto": posix_sendto,
    "recvfrom": posix_recvfrom,
}
