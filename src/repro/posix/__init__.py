"""The symbolic POSIX environment model (paper §4).

This package models the slice of POSIX that the paper's targets exercise:
file descriptors and files, TCP/UDP sockets over a single-IP network, pipes,
``select``-style polling, pthreads synchronization, ``fork``/``waitpid``,
``mmap``, System V IPC (shared memory and message queues), time functions
over a deterministic virtual clock, environment variables, fault injection
and the Cloud9 ``ioctl`` extensions.  Everything is built on the engine's
symbolic system calls (Table 1) plus ordinary state memory, and is installed
into an engine with :func:`install_posix_model`.

The model keeps its auxiliary data (descriptor tables, stream buffers, mutex
records) in the execution state's environment area, so it forks together
with the state -- the analogue of the paper's "shared memory structures to
keep track of all system objects".
"""

from repro.posix.buffers import BlockBuffer, StreamBuffer
from repro.posix.data import (
    FdKind,
    FileDescriptor,
    FileNode,
    MemoryMapping,
    MessageQueue,
    PosixState,
    SharedMemorySegment,
    posix_of,
)
from repro.posix.env import add_env_var, add_symbolic_env_var
from repro.posix.ioctl import (
    SIO_FAULT_INJ,
    SIO_PKT_FRAGMENT,
    SIO_SYMBOLIC,
    RD,
    WR,
)
from repro.posix.model import install_posix_model, posix_handlers

__all__ = [
    "BlockBuffer",
    "StreamBuffer",
    "FdKind",
    "FileDescriptor",
    "FileNode",
    "MemoryMapping",
    "MessageQueue",
    "PosixState",
    "SharedMemorySegment",
    "posix_of",
    "add_env_var",
    "add_symbolic_env_var",
    "SIO_FAULT_INJ",
    "SIO_PKT_FRAGMENT",
    "SIO_SYMBOLIC",
    "RD",
    "WR",
    "install_posix_model",
    "posix_handlers",
]
