"""Pipes, modeled with a single stream buffer (paper §4.3)."""

from __future__ import annotations

from repro.engine.natives import NativeContext
from repro.posix.buffers import StreamBuffer
from repro.posix.common import copy_cells_to_memory, current_pid
from repro.posix.data import FdKind, FileDescriptor, StreamEndpoint, posix_of


def posix_pipe(ctx: NativeContext):
    """``pipe(buf)``: create a pipe; fds stored as bytes at buf[0] / buf[1].

    ``buf[0]`` receives the read end, ``buf[1]`` the write end (descriptor
    numbers are small, so single bytes suffice for the modeled programs).
    """
    buf_addr = ctx.concrete_arg(0)
    posix = posix_of(ctx.state)
    pid = current_pid(ctx)

    channel = StreamBuffer()
    unused = StreamBuffer()
    unused.close_write()
    read_end = StreamEndpoint(rx=channel, tx=unused)
    write_end = StreamEndpoint(rx=unused, tx=channel)

    read_fd = posix.allocate_fd(pid, FileDescriptor(
        fd=-1, kind=FdKind.PIPE_READ, endpoint=read_end))
    write_fd = posix.allocate_fd(pid, FileDescriptor(
        fd=-1, kind=FdKind.PIPE_WRITE, endpoint=write_end))
    copy_cells_to_memory(ctx.state, buf_addr, [read_fd & 0xFF, write_fd & 0xFF])
    return 0


HANDLERS = {
    "pipe": posix_pipe,
}
