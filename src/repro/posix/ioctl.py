"""Cloud9's extended ioctl codes (Table 3) and the ``ioctl`` native.

* ``SIO_SYMBOLIC`` -- turn a file or socket into a source of symbolic input.
* ``SIO_PKT_FRAGMENT`` -- enable packet fragmentation on a stream socket.
* ``SIO_FAULT_INJ`` -- enable fault injection for operations on a descriptor.

The third ioctl argument selects the direction(s) using the ``RD``/``WR``
flags, as in the paper's use case: ``ioctl(ssock, SIO_FAULT_INJ, RD | WR)``.
"""

from __future__ import annotations

from repro.engine.natives import NativeContext
from repro.posix.data import posix_of

SIO_SYMBOLIC = 0x9001
SIO_PKT_FRAGMENT = 0x9002
SIO_FAULT_INJ = 0x9003

RD = 0x1
WR = 0x2


def posix_ioctl(ctx: NativeContext):
    """``ioctl(fd, code, arg)`` restricted to the Cloud9 testing extensions."""
    fd = ctx.concrete_arg(0)
    code = ctx.concrete_arg(1)
    arg = ctx.concrete_arg(2, RD | WR)
    posix = posix_of(ctx.state)
    entry = posix.lookup(ctx.state.current[0], fd)
    if entry is None:
        return 0xFFFFFFFF  # -1: EBADF

    if code == SIO_SYMBOLIC:
        entry.symbolic_source = bool(arg)
        return 0
    if code == SIO_PKT_FRAGMENT:
        entry.fragment_reads = True
        return 0
    if code == SIO_FAULT_INJ:
        entry.fault_inject_read = bool(arg & RD)
        entry.fault_inject_write = bool(arg & WR)
        return 0
    return 0xFFFFFFFF  # unsupported request


def c9_set_frag_pattern(ctx: NativeContext):
    """``c9_set_frag_pattern(fd, pattern_buf, count)``: explicit fragmentation.

    Enables read fragmentation on ``fd`` following an explicit pattern of
    chunk sizes (one byte per chunk size, read from ``pattern_buf``).  This
    is the programmatic face of the deterministic fragmentation patterns used
    in Table 6; passing ``count == 0`` keeps fragmentation fully symbolic
    (equivalent to plain ``SIO_PKT_FRAGMENT``).
    """
    fd = ctx.concrete_arg(0)
    pattern_addr = ctx.concrete_arg(1)
    count = ctx.concrete_arg(2, 0)
    posix = posix_of(ctx.state)
    entry = posix.lookup(ctx.state.current[0], fd)
    if entry is None:
        return 0xFFFFFFFF
    entry.fragment_reads = True
    if count > 0:
        sizes = []
        for i in range(count):
            cell = ctx.state.mem_read(pattern_addr, i)
            sizes.append(cell if isinstance(cell, int) else ctx.concretize(cell))
        entry.fragment_pattern = [max(1, s) for s in sizes]
    else:
        entry.fragment_pattern = None
    return 0


HANDLERS = {
    "ioctl": posix_ioctl,
    "c9_set_frag_pattern": c9_set_frag_pattern,
}
