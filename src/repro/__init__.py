"""Cloud9 reproduction: parallel symbolic execution for automated software testing.

This package reproduces the system described in "Parallel Symbolic Execution
for Automated Real-World Software Testing" (Bucur, Ureche, Zamfir, Candea --
EuroSys 2011) as a pure-Python library:

* :mod:`repro.solver`  -- bitvector constraint solving substrate.
* :mod:`repro.lang`    -- the small imperative language of programs under test.
* :mod:`repro.engine`  -- the single-node symbolic execution engine (KLEE analogue).
* :mod:`repro.posix`   -- the symbolic POSIX environment model (§4).
* :mod:`repro.cluster` -- cluster-parallel exploration with dynamic load
  balancing (§3), the paper's core contribution.
* :mod:`repro.testing` -- the symbolic-test platform API (§5).
* :mod:`repro.targets` -- models of the real-world systems evaluated in §7
  (memcached, lighttpd, printf, test, curl, Coreutils, Bandicoot, and a
  producer-consumer benchmark).

Quickstart::

    from repro import lang as L
    from repro.testing import SymbolicTest

    program = L.program("demo",
        L.func("main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 2, L.strconst("input"))),
            L.if_(L.eq(L.index(L.var("buf"), 0), ord("!")), [L.ret(1)], [L.ret(0)]),
        ),
    )
    test = SymbolicTest("demo", program)
    print(test.run_single().paths_completed)        # 2 paths
    print(test.run_cluster(num_workers=4).paths_completed)
"""

from repro import cluster, engine, lang, posix, solver, testing
from repro.cluster import Cloud9Cluster, ClusterConfig, ClusterResult
from repro.engine import (
    BugKind,
    BugReport,
    EngineConfig,
    ExplorationResult,
    SymbolicExecutor,
    TestCase,
)
from repro.testing import SymbolicTest, SymbolicTestSuite

__version__ = "0.1.0"

__all__ = [
    "cluster",
    "engine",
    "lang",
    "posix",
    "solver",
    "testing",
    "Cloud9Cluster",
    "ClusterConfig",
    "ClusterResult",
    "BugKind",
    "BugReport",
    "EngineConfig",
    "ExplorationResult",
    "SymbolicExecutor",
    "TestCase",
    "SymbolicTest",
    "SymbolicTestSuite",
    "__version__",
]
