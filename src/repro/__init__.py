"""Cloud9 reproduction: parallel symbolic execution for automated software testing.

This package reproduces the system described in "Parallel Symbolic Execution
for Automated Real-World Software Testing" (Bucur, Ureche, Zamfir, Candea --
EuroSys 2011) as a pure-Python library:

* :mod:`repro.solver`  -- bitvector constraint solving substrate.
* :mod:`repro.lang`    -- the small imperative language of programs under test.
* :mod:`repro.engine`  -- the single-node symbolic execution engine (KLEE analogue).
* :mod:`repro.posix`   -- the symbolic POSIX environment model (§4).
* :mod:`repro.cluster` -- cluster-parallel exploration with dynamic load
  balancing (§3), the paper's core contribution.
* :mod:`repro.distrib` -- the same protocol across worker processes (real
  cores): path-encoded job shipping between private engines.
* :mod:`repro.testing` -- the symbolic-test platform API (§5).
* :mod:`repro.api`     -- the unified exploration API: one ``run`` surface,
  uniform limits, backend registry, unified results, batch campaigns.
* :mod:`repro.targets` -- models of the real-world systems evaluated in §7
  (memcached, lighttpd, printf, test, curl, Coreutils, Bandicoot, and a
  producer-consumer benchmark).

Quickstart -- the same symbolic test scales transparently from one engine to
a cluster, which is the paper's core pitch::

    from repro import lang as L
    from repro.testing import SymbolicTest

    program = L.program("demo",
        L.func("main", [],
            L.decl("buf", L.call("cloud9_symbolic_buffer", 2, L.strconst("input"))),
            L.if_(L.eq(L.index(L.var("buf"), 0), ord("!")), [L.ret(1)], [L.ret(0)]),
        ),
    )
    test = SymbolicTest("demo", program)
    print(test.run().paths_completed)                       # one engine: 2 paths
    print(test.run(backend="cluster", workers=4).paths_completed)

Every backend (``"single"``, ``"cluster"``, ``"static"``, ``"threaded"``,
``"process"``)
accepts the same :class:`~repro.api.limits.ExplorationLimits` -- either as a
``limits=`` bundle or as direct kwargs -- and returns the same
:class:`~repro.api.result.RunResult`::

    from repro.api import ExplorationLimits

    limits = ExplorationLimits(max_paths=100, stop_on_first_bug=True)
    for backend in ("single", "cluster"):
        result = test.run(backend=backend, limits=limits)
        print(backend, result.paths_completed, result.coverage_percent)

Batches of tests (or one test across a grid of configurations) run through
:class:`~repro.api.campaign.Campaign`::

    from repro.api import Campaign

    campaign = Campaign("scalability", limits=ExplorationLimits(max_rounds=50))
    campaign.add_grid(test, [{"backend": "cluster", "workers": w}
                             for w in (1, 2, 4, 8)])
    outcome = campaign.run()
    print(outcome.summary_rows())
"""

from repro import api, cluster, engine, lang, posix, solver, testing
from repro.api import (
    Campaign,
    CampaignResult,
    ExplorationLimits,
    RunResult,
    available_backends,
    run_test,
)
from repro.cluster import Cloud9Cluster, ClusterConfig, ClusterResult
from repro.engine import (
    BugKind,
    BugReport,
    EngineConfig,
    ExplorationResult,
    SymbolicExecutor,
    TestCase,
)
from repro.testing import SymbolicTest, SymbolicTestSuite

__version__ = "0.2.0"

__all__ = [
    "api",
    "cluster",
    "engine",
    "lang",
    "posix",
    "solver",
    "testing",
    "Campaign",
    "CampaignResult",
    "ExplorationLimits",
    "RunResult",
    "available_backends",
    "run_test",
    "Cloud9Cluster",
    "ClusterConfig",
    "ClusterResult",
    "BugKind",
    "BugReport",
    "EngineConfig",
    "ExplorationResult",
    "SymbolicExecutor",
    "TestCase",
    "SymbolicTest",
    "SymbolicTestSuite",
    "__version__",
]
