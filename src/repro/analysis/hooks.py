"""CORE: cluster-backend hook contracts over the class graph.

Since the ``CoordinatorCore`` extraction, the round engine is a template
method: the core owns the loop (``run``/``_run``/``_finalize``/drain
bookkeeping) and backends fill in a declared hook surface
(``_explore_phase``, ``_drain_member``, ...).  The contract is marked in
source with the :func:`repro.cluster.core.backend_hook` decorator; these
checks enforce it structurally, across modules:

``CORE001``
    A concrete backend shell (a subclass that declares no abstract methods
    of its own) leaves an abstract ``@backend_hook`` unimplemented
    anywhere in its MRO.  At runtime this is a ``NotImplementedError``
    mid-campaign; statically it is a missing hook.
``CORE002``
    A subclass defines a method that shadows a core-owned method -- one
    the nearest defining ancestor neither marked ``@backend_hook`` nor
    left abstract.  The round engine's invariants live in those methods;
    a shell overriding ``_advance_drains`` silently forks the engine.
``CORE003``
    A class that explicitly inherits an in-tree ``Protocol`` (the
    ``Member`` surface) does not define or inherit every method and
    annotated attribute the protocol declares.

All three are inert on trees that never use ``@backend_hook`` or an
explicit ``Protocol`` base, so ordinary fixtures stay quiet.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import Finding, SourceModule, attr_chain
from repro.analysis.program import ClassInfo, ProjectIndex, _is_abstract

__all__ = ["check"]

_HOOK_DECORATOR = "backend_hook"
_ABSTRACT_DECORATORS = frozenset({"abstractmethod", "abstractproperty"})


def _decorator_names(node: ast.AST) -> List[str]:
    names = []
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        chain = attr_chain(target)
        if chain:
            names.append(chain.split(".")[-1])
    return names


def _is_hook(node: ast.AST) -> bool:
    return _HOOK_DECORATOR in _decorator_names(node)


def _is_abstract_method(node: ast.AST) -> bool:
    if _is_abstract(node):
        return True
    return bool(_ABSTRACT_DECORATORS & set(_decorator_names(node)))


def check(modules: List[SourceModule],
          index: Optional[ProjectIndex] = None) -> List[Finding]:
    if index is None:
        index = ProjectIndex(modules)
    findings: List[Finding] = []

    core_classes = {dotted for dotted, info in index.classes.items()
                    if any(_is_hook(m) for m in info.methods.values())}

    def finding(checker: str, info: ClassInfo, message: str,
                hint: str) -> Finding:
        return Finding(checker, info.module.path, info.node.lineno,
                       message, hint=hint, context=info.name)

    for dotted in sorted(index.classes):
        info = index.classes[dotted]
        mro = index.mro(dotted)
        ancestors = mro[1:]
        if not any(a.dotted in core_classes for a in ancestors):
            continue

        # CORE002: shadowing a core-owned method.  The nearest ancestor
        # definition decides: a hook or abstract method is overridable,
        # anything else a core class owns is not.
        for name, node in sorted(info.methods.items()):
            if name.startswith("__"):
                continue
            for ancestor in ancestors:
                if name not in ancestor.methods:
                    continue
                owned = ancestor.methods[name]
                if ancestor.dotted in core_classes \
                        and not _is_hook(owned) \
                        and not _is_abstract_method(owned):
                    findings.append(Finding(
                        "CORE002", info.module.path, node.lineno,
                        "%s.%s shadows core-owned method %s.%s (not a "
                        "@backend_hook)"
                        % (info.name, name, ancestor.name, name),
                        hint="call the core's method, or mark it "
                             "@backend_hook in %s if backends may "
                             "override it" % ancestor.module.path,
                        context="%s.%s" % (info.name, name)))
                break  # nearest definition decides

        # CORE001: a concrete shell must implement every abstract hook.
        is_concrete = not any(_is_abstract_method(m)
                              for m in info.methods.values())
        if is_concrete:
            required: Dict[str, ClassInfo] = {}
            provided: Set[str] = set()
            for klass in mro:
                for name, node in klass.methods.items():
                    if _is_hook(node) and _is_abstract_method(node):
                        required.setdefault(name, klass)
                    if not _is_abstract_method(node):
                        provided.add(name)
            for name in sorted(set(required) - provided):
                owner = required[name]
                findings.append(finding(
                    "CORE001", info,
                    "%s does not implement abstract backend hook %s.%s"
                    % (info.name, owner.name, name),
                    hint="implement %s or give the hook a default body "
                         "in %s" % (name, owner.module.path)))

    # CORE003: explicit Protocol inheritance is a structural claim.
    for dotted in sorted(index.classes):
        info = index.classes[dotted]
        for base in info.bases:
            proto = index.classes.get(base)
            if proto is None or not proto.is_protocol():
                continue
            declared: Set[str] = set(proto.methods)
            for statement in proto.node.body:
                if isinstance(statement, ast.AnnAssign) \
                        and isinstance(statement.target, ast.Name):
                    declared.add(statement.target.id)
            available: Set[str] = set()
            for klass in index.mro(dotted):
                if klass.dotted == proto.dotted:
                    continue
                available.update(klass.methods)
                available.update(klass.attr_types)
                for statement in klass.node.body:
                    if isinstance(statement, ast.AnnAssign) \
                            and isinstance(statement.target, ast.Name):
                        available.add(statement.target.id)
                    elif isinstance(statement, ast.Assign):
                        for target in statement.targets:
                            if isinstance(target, ast.Name):
                                available.add(target.id)
                for method in klass.methods.values():
                    for node in ast.walk(method):
                        if isinstance(node, (ast.Assign, ast.AnnAssign)):
                            targets = node.targets \
                                if isinstance(node, ast.Assign) \
                                else [node.target]
                            for target in targets:
                                if isinstance(target, ast.Attribute) \
                                        and isinstance(target.value,
                                                       ast.Name) \
                                        and target.value.id == "self":
                                    available.add(target.attr)
            for name in sorted(declared - available):
                if name.startswith("_"):
                    continue
                findings.append(finding(
                    "CORE003", info,
                    "%s claims protocol %s but does not provide %r"
                    % (info.name, proto.name, name),
                    hint="define %s (method or attribute) or drop the "
                         "protocol base" % name))
    return findings
