"""The whole-program index: one parse of the tree, shared by every checker.

The per-file checkers stop at module boundaries -- ``_resolve_callee`` in the
original CONC003 only followed ``self.m()`` within a class and bare ``name()``
within a module, which is exactly wrong for this codebase: since the
``CoordinatorCore`` extraction the hot concurrency paths *span* modules
(``cluster/core.py`` calls hooks implemented in ``distrib/cluster.py`` which
send over locks in ``net/transport.py``).  :class:`ProjectIndex` parses the
tree once and answers the questions an interprocedural checker needs:

* module naming -- ``src/repro/net/transport.py`` is ``repro.net.transport``
  (detected from ``__init__.py`` chains, with an ``src/``-layout fallback so
  fixture trees without package markers still resolve);
* import resolution -- ``from repro.net.transport import TcpTransport``
  maps the local name to the defining module and class;
* class/method tables with base-class linearization and a subclass map;
* attribute typing -- ``self.transport`` is a ``Transport`` because the
  constructor parameter it was assigned from is annotated (or because of an
  ``AnnAssign``, or a direct ``self.x = ClassName(...)``);
* a cross-module call resolver (:meth:`ProjectIndex.callees`) used to build
  the lock-order graph: ``self.method()`` through the MRO, abstract hooks
  expanded to their in-tree overrides (the template-method pattern the
  coordinator core uses), attribute-typed and annotated-local receivers,
  and imported functions/constructors.

Everything is plain ``ast``: the analyzed tree is never imported, so fixture
trees that could not import at all still index.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import SourceModule, attr_chain, qualname_index

__all__ = ["ClassInfo", "FunctionInfo", "ProjectIndex", "annotation_class"]


@dataclass
class ClassInfo:
    """One class definition and what the resolvers need to know about it."""

    name: str                      # bare name, e.g. "TcpTransport"
    dotted: str                    # "repro.net.transport.TcpTransport"
    module: SourceModule
    node: ast.ClassDef
    #: Base expressions resolved to dotted names where possible (raw dotted
    #: source text otherwise, e.g. "Protocol").
    bases: List[str] = field(default_factory=list)
    #: Own methods (functions defined directly in the class body).
    methods: Dict[str, ast.AST] = field(default_factory=dict)
    #: Inferred attribute types: attr name -> dotted class name.
    attr_types: Dict[str, str] = field(default_factory=dict)

    def is_protocol(self) -> bool:
        return any(b == "Protocol" or b.endswith(".Protocol")
                   for b in self.bases)


@dataclass
class FunctionInfo:
    """One function/method definition, addressable across the project."""

    key: str                       # "<module path>::<qualname>"
    module: SourceModule
    qualname: str                  # "Class.method" or "function"
    node: ast.AST

    @property
    def owner(self) -> Optional[str]:
        """Bare name of the defining class (None for module-level defs)."""
        return self.qualname.split(".")[0] if "." in self.qualname else None


def annotation_class(annotation: ast.AST) -> Optional[str]:
    """The dotted source text of the class an annotation names, if simple.

    Unwraps ``Optional[T]`` and string annotations; gives up on unions,
    generics and anything else a single class cannot be read from.
    """
    node: ast.AST = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = attr_chain(node.value)
        if head.split(".")[-1] == "Optional":
            return annotation_class(node.slice)
        return None
    chain = attr_chain(node)
    return chain or None


def _is_abstract(node: ast.AST) -> bool:
    """True when a method body is (docstring +) ``raise NotImplementedError``."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    body = list(node.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


class ProjectIndex:
    """Cross-module tables over one parsed tree.  Build once, share."""

    def __init__(self, modules: Sequence[SourceModule]):
        self.modules: List[SourceModule] = list(modules)
        #: module path -> dotted module name.
        self.module_names: Dict[str, str] = _dotted_names(self.modules)
        #: dotted module name -> module (last one wins on collisions).
        self.by_name: Dict[str, SourceModule] = {
            self.module_names[m.path]: m for m in self.modules}
        #: module path -> {local name -> dotted target}.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: dotted class name -> info.
        self.classes: Dict[str, ClassInfo] = {}
        #: module path -> {bare class name -> dotted}.
        self._module_classes: Dict[str, Dict[str, str]] = {}
        #: "<module path>::<qualname>" -> info.
        self.functions: Dict[str, FunctionInfo] = {}
        #: dotted class name -> dotted names of its in-tree subclasses.
        self.subclasses: Dict[str, Set[str]] = {}
        self._local_types: Dict[int, Dict[str, str]] = {}
        for module in self.modules:
            self._index_module(module)
        self._resolve_bases()
        for module in self.modules:
            self._infer_attr_types(module)

    # -- construction --------------------------------------------------------------------

    def _index_module(self, module: SourceModule) -> None:
        dotted_module = self.module_names[module.path]
        package = _package_of(module, dotted_module)
        imports: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    up = package.split(".") if package else []
                    up = up[:len(up) - (node.level - 1)] if node.level > 1 else up
                    prefix = ".".join(up)
                    base = ("%s.%s" % (prefix, base)).strip(".") if prefix \
                        else base
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = "%s.%s" % (base, alias.name) if base else alias.name
                    imports[local] = target
        self.imports[module.path] = imports

        names = qualname_index(module)
        class_map: Dict[str, str] = {}
        for node, qualname in names.items():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = "%s::%s" % (module.path, qualname)
                self.functions[key] = FunctionInfo(
                    key=key, module=module, qualname=qualname, node=node)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            dotted = "%s.%s" % (dotted_module, node.name) if dotted_module \
                else node.name
            methods = {child.name: child for child in node.body
                       if isinstance(child, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))}
            self.classes[dotted] = ClassInfo(
                name=node.name, dotted=dotted, module=module, node=node,
                bases=[attr_chain(b) or ast.unparse(b) for b in node.bases],
                methods=methods)
            class_map[node.name] = dotted
        self._module_classes[module.path] = class_map

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            resolved = []
            for base in info.bases:
                target = self.resolve_class(info.module, base)
                resolved.append(target.dotted if target is not None else base)
            info.bases = resolved
            for base in resolved:
                if base in self.classes:
                    self.subclasses.setdefault(base, set()).add(info.dotted)

    def _infer_attr_types(self, module: SourceModule) -> None:
        for class_map in (self._module_classes.get(module.path, {}),):
            for dotted in class_map.values():
                info = self.classes[dotted]
                self._infer_class_attrs(info)

    def _infer_class_attrs(self, info: ClassInfo) -> None:
        def record(attr: str, annotation: Optional[ast.AST],
                   value_class: Optional[str] = None) -> None:
            target: Optional[ClassInfo] = None
            if annotation is not None:
                chain = annotation_class(annotation)
                if chain:
                    target = self.resolve_class(info.module, chain)
            elif value_class:
                target = self.resolve_class(info.module, value_class)
            if target is not None:
                info.attr_types.setdefault(attr, target.dotted)

        for statement in info.node.body:
            if isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name):
                record(statement.target.id, statement.annotation)
        for method in info.methods.values():
            params = _param_annotations(method)
            for node in ast.walk(method):
                if isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Attribute) \
                        and isinstance(node.target.value, ast.Name) \
                        and node.target.value.id == "self":
                    record(node.target.attr, node.annotation)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if not (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            continue
                        value = node.value
                        if isinstance(value, ast.Call):
                            record(target.attr, None,
                                   value_class=attr_chain(value.func) or None)
                        elif isinstance(value, ast.Name) \
                                and value.id in params:
                            record(target.attr, params[value.id])

    # -- lookups -------------------------------------------------------------------------

    def module_name(self, module: SourceModule) -> str:
        return self.module_names.get(module.path, "")

    def resolve(self, module: SourceModule, chain: str) -> Optional[str]:
        """Resolve a dotted source-text chain to a project dotted name.

        Handles local class names, imported names (through aliases), and
        plain ``package.module.Thing`` chains.  Returns None when the chain
        does not land inside the analyzed tree.
        """
        if not chain or chain.startswith("<"):
            return None
        parts = chain.split(".")
        local = self._module_classes.get(module.path, {})
        if parts[0] in local:
            return ".".join([local[parts[0]]] + parts[1:])
        imports = self.imports.get(module.path, {})
        if parts[0] in imports:
            parts = imports[parts[0]].split(".") + parts[1:]
        dotted = ".".join(parts)
        # A known class (optionally with trailing attributes), a known
        # module, or a member of a known module.
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.classes or prefix in self.by_name:
                return dotted
        return None

    def resolve_class(self, module: SourceModule,
                      chain: str) -> Optional[ClassInfo]:
        dotted = self.resolve(module, chain)
        return self.classes.get(dotted) if dotted else None

    def class_of(self, module: SourceModule,
                 bare_name: str) -> Optional[ClassInfo]:
        """The class named ``bare_name`` defined in ``module``, if any."""
        dotted = self._module_classes.get(module.path, {}).get(bare_name)
        return self.classes.get(dotted) if dotted else None

    def mro(self, dotted: str) -> List[ClassInfo]:
        """In-tree base linearization (left-to-right DFS, deduplicated)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [dotted]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.bases)
        return out

    def find_method(self, class_dotted: str, name: str
                    ) -> Optional[Tuple[ClassInfo, ast.AST]]:
        """Resolve ``name`` through the class's in-tree MRO."""
        for info in self.mro(class_dotted):
            if name in info.methods:
                return info, info.methods[name]
        return None

    def attr_type(self, class_dotted: str, attr: str) -> Optional[str]:
        """Inferred type of ``self.<attr>`` through the in-tree MRO."""
        for info in self.mro(class_dotted):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def _function_key(self, owner: ClassInfo, name: str) -> str:
        return "%s::%s.%s" % (owner.module.path, owner.name, name)

    def _method_keys(self, class_dotted: str, name: str,
                     dynamic_root: Optional[str] = None) -> List[str]:
        """Keys a ``<instance of class>.name()`` call may land on.

        The statically-found definition, plus -- when that definition is an
        abstract hook -- the overrides in in-tree subclasses of
        ``dynamic_root`` (the receiver's static type), which is how the
        coordinator core's template methods actually dispatch.
        """
        found = self.find_method(class_dotted, name)
        keys: List[str] = []
        if found is not None:
            owner, node = found
            keys.append(self._function_key(owner, name))
            if not _is_abstract(node):
                return keys
        root = dynamic_root or class_dotted
        pending = list(self.subclasses.get(root, ()))
        seen: Set[str] = set()
        while pending:
            sub = pending.pop()
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is None:
                continue
            if name in info.methods:
                keys.append(self._function_key(info, name))
            pending.extend(self.subclasses.get(sub, ()))
        return keys

    # -- call resolution -----------------------------------------------------------------

    def _locals_of(self, func_node: ast.AST,
                   module: SourceModule) -> Dict[str, str]:
        """Annotated-parameter and constructed-local types of one function."""
        cached = self._local_types.get(id(func_node))
        if cached is not None:
            return cached
        types: Dict[str, str] = {}
        if isinstance(func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for name, annotation in _param_annotations(func_node).items():
                chain = annotation_class(annotation)
                target = self.resolve_class(module, chain) if chain else None
                if target is not None:
                    types[name] = target.dotted
            for node in ast.walk(func_node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and isinstance(node.value, ast.Call):
                    target = self.resolve_class(
                        module, attr_chain(node.value.func))
                    if target is not None:
                        types[node.targets[0].id] = target.dotted
                elif isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Name):
                    chain = annotation_class(node.annotation)
                    target = self.resolve_class(module, chain) if chain \
                        else None
                    if target is not None:
                        types[node.target.id] = target.dotted
        self._local_types[id(func_node)] = types
        return types

    def callees(self, module: SourceModule, caller_qualname: str,
                func_node: Optional[ast.AST],
                call_func: ast.AST) -> List[str]:
        """Function keys a call expression may resolve to, across modules."""
        enclosing = self.class_of(module, caller_qualname.split(".")[0]) \
            if "." in caller_qualname else None

        if isinstance(call_func, ast.Name):
            name = call_func.id
            key = "%s::%s" % (module.path, name)
            if key in self.functions:
                return [key]
            resolved = self.resolve(module, name)
            if resolved:
                if resolved in self.classes:
                    info = self.classes[resolved]
                    if "__init__" in info.methods:
                        return [self._function_key(info, "__init__")]
                    return []
                owner, _, member = resolved.rpartition(".")
                target = self.by_name.get(owner)
                if target is not None:
                    key = "%s::%s" % (target.path, member)
                    if key in self.functions:
                        return [key]
            return []

        if not isinstance(call_func, ast.Attribute):
            return []
        method = call_func.attr
        receiver = call_func.value

        # self.m() / cls.m(): through the enclosing class's MRO, abstract
        # hooks expanded to the enclosing class's in-tree overrides.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            if enclosing is not None:
                return self._method_keys(enclosing.dotted, method)
            return []

        chain = attr_chain(receiver)
        if not chain or chain.startswith("<"):
            return []
        parts = chain.split(".")

        # self.attr[.subattr].m(): typed-attribute receiver.
        if parts[0] in ("self", "cls") and enclosing is not None:
            current: Optional[str] = enclosing.dotted
            for attr in parts[1:]:
                current = self.attr_type(current, attr) if current else None
            if current:
                return self._method_keys(current, method, dynamic_root=current)
            return []

        # var.m(): annotated parameter or constructed local.
        if len(parts) == 1 and func_node is not None:
            local = self._locals_of(func_node, module).get(parts[0])
            if local:
                return self._method_keys(local, method, dynamic_root=local)

        # Class.m() / module.func() / module.Class.m().
        resolved = self.resolve(module, chain)
        if resolved:
            if resolved in self.classes:
                return self._method_keys(resolved, method)
            target = self.by_name.get(resolved)
            if target is not None:
                key = "%s::%s" % (target.path, method)
                if key in self.functions:
                    return [key]
        return []


def _param_annotations(func_node: ast.AST) -> Dict[str, ast.AST]:
    out: Dict[str, ast.AST] = {}
    if isinstance(func_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func_node.args
        for arg in list(args.posonlyargs) + list(args.args) \
                + list(args.kwonlyargs):
            if arg.annotation is not None:
                out[arg.arg] = arg.annotation
    return out


def _package_of(module: SourceModule, dotted: str) -> str:
    if module.path.endswith("/__init__.py") or module.path == "__init__.py":
        return dotted
    return dotted.rsplit(".", 1)[0] if "." in dotted else ""


def _dotted_names(modules: Sequence[SourceModule]) -> Dict[str, str]:
    """Module path -> dotted name.

    Primary rule: the longest chain of package directories (each containing
    an ``__init__.py`` present in the analyzed set).  Fallback for fixture
    trees without package markers: everything after the last ``src``
    component.  The longer answer wins.
    """
    fileset = {m.path for m in modules}
    names: Dict[str, str] = {}
    for module in modules:
        parts = PurePosixPath(module.path).parts
        is_init = parts[-1] == "__init__.py"
        file_index = len(parts) - 1
        start = file_index
        while start - 1 >= 0:
            # PurePosixPath joins correctly for absolute roots too, where a
            # plain "/".join would double the leading slash.
            marker = str(PurePosixPath(*parts[:start]) / "__init__.py")
            if marker in fileset:
                start -= 1
            else:
                break
        package_parts = list(parts[start:file_index])
        if not is_init:
            package_parts.append(parts[-1][:-3])
        best = package_parts
        if "src" in parts[:-1]:
            cut = max(i for i, part in enumerate(parts[:-1]) if part == "src")
            src_parts = list(parts[cut + 1:file_index])
            if not is_init:
                src_parts.append(parts[-1][:-3])
            if len(src_parts) > len(best):
                best = src_parts
        names[module.path] = ".".join(best) if best \
            else (parts[-1][:-3] if not is_init else "")
    return names
