"""Shared machinery for the static checkers: findings, source loading, AST helpers.

Everything here is plain stdlib ``ast`` work -- the analysis package never
imports the repro runtime, so it can check a tree that does not even import
(and fixture trees in tests that are not importable at all).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Finding", "SourceModule", "load_modules", "qualname_index",
           "enclosing_context", "is_suppressed", "filter_suppressed",
           "attr_chain"]


@dataclass(frozen=True)
class Finding:
    """One checker hit: where, what, and how to fix it."""

    checker: str          # stable id, e.g. "PROTO001"
    path: str             # path as given on the command line (posix slashes)
    line: int
    message: str
    hint: str = ""
    #: Enclosing ``Class.function`` qualname -- the stable half of the
    #: baseline fingerprint (line numbers shift, qualnames rarely do).
    context: str = ""

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        return "|".join((self.checker, self.path, self.context, self.message))

    def render(self) -> str:
        text = "%s:%d: [%s] %s" % (self.path, self.line, self.checker,
                                   self.message)
        if self.hint:
            text += " (fix: %s)" % self.hint
        return text


@dataclass
class SourceModule:
    """One parsed source file plus everything checkers need about it."""

    path: str             # as reported in findings (posix slashes)
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: Map from every AST node to its parent (filled at load time).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _fill_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def load_modules(paths: Sequence[str]) -> Tuple[List[SourceModule], List[Finding]]:
    """Parse every ``*.py`` under ``paths`` (files or directories).

    Returns the parsed modules plus findings for files that do not parse
    (checker id ``ANA001`` -- a syntax error is a finding, not a crash).
    """
    modules: List[SourceModule] = []
    findings: List[Finding] = []
    for filename in sorted(_iter_python_files(paths)):
        display = Path(filename).as_posix()
        try:
            source = Path(filename).read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(Finding("ANA001", display, 1,
                                    "cannot read file: %s" % exc))
            continue
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            findings.append(Finding("ANA001", display, exc.lineno or 1,
                                    "syntax error: %s" % exc.msg))
            continue
        modules.append(SourceModule(path=display, tree=tree,
                                    lines=source.splitlines(),
                                    parents=_fill_parents(tree)))
    return modules, findings


def _iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith(".")
                                 and d != "__pycache__")
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def qualname_index(module: SourceModule) -> Dict[ast.AST, str]:
    """Map every ClassDef/FunctionDef node to its dotted qualname."""
    index: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                qualname = (prefix + "." + child.name) if prefix else child.name
                index[child] = qualname
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(module.tree, "")
    return index


def enclosing_context(module: SourceModule, node: ast.AST,
                      index: Optional[Dict[ast.AST, str]] = None) -> str:
    """Qualname of the nearest enclosing class/function (may be "")."""
    if index is None:
        index = qualname_index(module)
    current: Optional[ast.AST] = node
    while current is not None:
        if current in index:
            return index[current]
        current = module.parents.get(current)
    return ""


#: Marker accepted in a trailing comment to waive findings on that line:
#: ``# analysis-ignore`` (all checkers) or ``# analysis-ignore[CONC001]``.
IGNORE_MARKER = "analysis-ignore"


def is_suppressed(module: SourceModule, finding: Finding) -> bool:
    line = module.source_line(finding.line)
    marker = line.find(IGNORE_MARKER)
    if marker < 0:
        return False
    rest = line[marker + len(IGNORE_MARKER):]
    if rest.startswith("["):
        listed = rest[1:rest.find("]")] if "]" in rest else ""
        ids = {part.strip() for part in listed.split(",") if part.strip()}
        return finding.checker in ids
    return True


def attr_chain(node: ast.AST) -> str:
    """Dotted-source text of a Name/Attribute chain ("self._send_lock")."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif parts:
        parts.append("<expr>")
    else:
        return ""
    return ".".join(reversed(parts))


def filter_suppressed(modules: Iterable[SourceModule],
                      findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings waived by an inline ``analysis-ignore`` comment."""
    by_path = {m.path: m for m in modules}
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and is_suppressed(module, finding):
            continue
        kept.append(finding)
    return kept
