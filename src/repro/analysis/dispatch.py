"""DISP: dispatch exhaustiveness for the wire-message protocol.

The command/reply protocol is dispatched by ``isinstance`` ladders -- in
``DistribWorker.handle``, ``worker_main``, the agent loop, and the
coordinator's receive sites.  Adding a message without teaching a loop
about it fails silently: the worker raises a generic ``TypeError`` at
fleet scale, or a mis-typed reply surfaces as an ``AttributeError`` three
frames later.  These checks make the dispatch surface total:

``DISP001``
    A wire message (a ``*Command``/``*Reply`` dataclass in the messages
    module, or a ``*Message`` handshake dataclass in the transport
    module) has no ``isinstance`` handler arm anywhere outside its
    defining module.  Only enforced once the tree dispatches at least one
    wire message -- a fixture tree that defines messages but no loops is
    not a finding.
``DISP002``
    An ``isinstance`` arm resolves into a wire-message module but no such
    class is defined there: the handler references an unregistered (or
    renamed) message type and its arm is dead code.

Registry membership mirrors :mod:`repro.analysis.protocol`: modules are
matched by path suffix, so fixture trees written under ``src/repro/...``
participate.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    SourceModule,
    attr_chain,
    enclosing_context,
)
from repro.analysis.program import ProjectIndex
from repro.analysis.protocol import MESSAGE_MODULES, VERSION_MODULE

__all__ = ["check"]

#: Class-name suffixes that make a dataclass in a wire module a message.
_WIRE_SUFFIXES = ("Command", "Reply")
_HANDSHAKE_SUFFIX = "Message"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if attr_chain(target).split(".")[-1] == "dataclass":
            return True
    return False


def _wire_modules(modules: List[SourceModule]
                  ) -> Dict[str, SourceModule]:
    """Path-suffix matched wire modules present in this tree."""
    found: Dict[str, SourceModule] = {}
    for module in modules:
        for suffix in MESSAGE_MODULES:
            if module.path.endswith(suffix):
                found[suffix] = module
    return found


def check(modules: List[SourceModule],
          index: Optional[ProjectIndex] = None) -> List[Finding]:
    if index is None:
        index = ProjectIndex(modules)
    wire = _wire_modules(modules)
    if not wire:
        return []

    #: dotted class name -> (module, ClassDef) for every registered message.
    registry: Dict[str, Tuple[SourceModule, ast.ClassDef]] = {}
    #: dotted module names of the wire modules (arm targets resolve to these).
    wire_module_names: Set[str] = set()
    for suffix, module in wire.items():
        dotted_module = index.module_name(module)
        if dotted_module:
            wire_module_names.add(dotted_module)
        is_handshake = suffix == VERSION_MODULE
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            if is_handshake:
                if not node.name.endswith(_HANDSHAKE_SUFFIX):
                    continue
            elif not node.name.endswith(_WIRE_SUFFIXES):
                continue
            info = index.class_of(module, node.name)
            dotted = info.dotted if info is not None \
                else "%s.%s" % (dotted_module, node.name)
            registry[dotted] = (module, node)

    #: dotted class name -> arm sites outside the defining module.
    handled: Dict[str, List[Tuple[SourceModule, int]]] = {}
    findings: List[Finding] = []

    for module in modules:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2):
                continue
            targets = node.args[1].elts \
                if isinstance(node.args[1], ast.Tuple) else [node.args[1]]
            for target in targets:
                chain = attr_chain(target)
                if not chain or chain.startswith("<"):
                    continue
                resolved = index.resolve(module, chain)
                if not resolved:
                    continue
                owner = resolved.rsplit(".", 1)[0]
                if owner not in wire_module_names:
                    continue
                if resolved in registry:
                    if registry[resolved][0].path != module.path:
                        handled.setdefault(resolved, []).append(
                            (module, node.lineno))
                else:
                    findings.append(Finding(
                        "DISP002", module.path, node.lineno,
                        "handler arm references unregistered message type "
                        "%s (not defined in %s)"
                        % (chain, owner),
                        hint="register the message as a dataclass in the "
                             "wire module, or delete the dead arm",
                        context=enclosing_context(module, node)))

    # DISP001 only once there is a dispatch surface to be exhaustive over.
    if handled:
        for dotted in sorted(registry):
            if dotted in handled:
                continue
            module, node = registry[dotted]
            findings.append(Finding(
                "DISP001", module.path, node.lineno,
                "wire message %s has no isinstance handler arm in any "
                "dispatch loop" % node.name.split(".")[-1],
                hint="add a handler arm (worker/agent/coordinator receive "
                     "loop) or remove the unused message",
                context=node.name))
    return findings
