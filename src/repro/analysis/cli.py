"""``python -m repro.analysis``: run the distributed-invariants checkers.

Usage::

    python -m repro.analysis [PATHS...]            # check (default: src)
    python -m repro.analysis --json                # machine-readable findings
    python -m repro.analysis --update-lock         # regenerate protocol.lock.json
    python -m repro.analysis --write-baseline      # adopt current findings

Exit codes: 0 clean (or everything grandfathered), 1 findings, 2 usage
errors.  The CI gate runs the ``--json`` form (turning findings into
inline annotations) plus ``--update-lock`` followed by
``git diff --exit-code`` on the lock file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_module
from repro.analysis import concurrency, determinism, dispatch, hooks
from repro.analysis import protocol, traceschema
from repro.analysis.core import Finding, filter_suppressed, load_modules
from repro.analysis.program import ProjectIndex

__all__ = ["main", "run_analysis"]

DEFAULT_BASELINE = "analysis_baseline.json"
DEFAULT_LOCK = "protocol.lock.json"

#: checker-id prefix -> family description (for --select validation).
CHECKER_FAMILIES = {
    "PROTO": "wire-protocol lock (messages vs PROTOCOL_VERSION, semver)",
    "TRACE": "trace-event schema registry drift",
    "CONC": "blocking calls under locks, cross-module lock-order cycles",
    "DET": "nondeterminism in schedule/solver decision paths",
    "DISP": "wire-message dispatch exhaustiveness",
    "CORE": "cluster-backend hook contracts (CoordinatorCore surface)",
    "ANA": "analysis infrastructure (unparseable files)",
}


def run_analysis(paths: Sequence[str], lock_path: str = DEFAULT_LOCK,
                 select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run every (selected) checker over ``paths``; returns raw findings
    (before baseline filtering, after inline-ignore filtering)."""
    modules, findings = load_modules(paths)
    families = {f.upper() for f in select} if select else None
    index = ProjectIndex(modules)

    def wanted(prefix: str) -> bool:
        return families is None or prefix in families

    if wanted("PROTO"):
        findings.extend(protocol.check(modules, lock_path))
    if wanted("TRACE"):
        findings.extend(traceschema.check(modules))
    if wanted("CONC"):
        findings.extend(concurrency.check(modules, index))
    if wanted("DET"):
        findings.extend(determinism.check(modules))
    if wanted("DISP"):
        findings.extend(dispatch.check(modules, index))
    if wanted("CORE"):
        findings.extend(hooks.check(modules, index))
    findings = filter_suppressed(modules, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.message))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static distributed-invariants checker: protocol lock, "
                    "trace-schema drift, concurrency and determinism lints.")
    parser.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help="baseline of grandfathered findings "
                             "(default: %(default)s; missing file = empty)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the new baseline "
                             "and exit 0 (adopt the gate / prune stale "
                             "entries)")
    parser.add_argument("--lock", default=DEFAULT_LOCK, metavar="FILE",
                        help="protocol lock file (default: %(default)s)")
    parser.add_argument("--update-lock", action="store_true",
                        help="regenerate the protocol lock from the "
                             "current message set and exit")
    parser.add_argument("--select", metavar="FAMILIES",
                        help="comma-separated checker families to run "
                             "(%s)" % ", ".join(sorted(CHECKER_FAMILIES)))
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON on stdout (same exit "
                             "codes); for CI annotation tooling")
    args = parser.parse_args(argv)

    paths = args.paths or ["src"]
    for path in paths:
        if not os.path.exists(path):
            print("error: no such path: %s" % path, file=sys.stderr)
            return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip().upper() for part in args.select.split(",")
                  if part.strip()]
        unknown = [part for part in select if part not in CHECKER_FAMILIES]
        if unknown:
            print("error: unknown checker families: %s (known: %s)"
                  % (", ".join(unknown), ", ".join(sorted(CHECKER_FAMILIES))),
                  file=sys.stderr)
            return 2

    if args.update_lock:
        modules, parse_findings = load_modules(paths)
        lock_data, _ = protocol.extract_protocol(modules)
        if not lock_data["messages"]:
            print("error: no wire-message modules found under %s"
                  % ", ".join(paths), file=sys.stderr)
            return 2
        previous = protocol.load_lock(args.lock)
        lock, breaking = protocol.build_lock(lock_data, previous)
        if breaking:
            print("refusing to update %s: breaking change(s) at a "
                  "compatible version bump [PROTO004]" % args.lock,
                  file=sys.stderr)
            for change in breaking:
                print("  - %s" % change, file=sys.stderr)
            print("advance %s to %s (dropping old agents) or make the "
                  "change additive"
                  % (protocol.COMPAT_CONSTANT, lock["protocol_version"]),
                  file=sys.stderr)
            return 1
        protocol.write_lock(lock, args.lock)
        print("wrote %s: protocol version %s (compat floor %s), "
              "%d message classes"
              % (args.lock, lock["protocol_version"],
                 lock["compat_version"], len(lock["messages"])))
        for finding in parse_findings:
            print(finding.render(), file=sys.stderr)
        return 0

    findings = run_analysis(paths, lock_path=args.lock, select=select)

    if args.write_baseline:
        count = baseline_module.write_baseline(findings, args.baseline)
        print("wrote %s with %d grandfathered finding(s)"
              % (args.baseline, count))
        return 0

    suppressed = 0
    stale: List[dict] = []
    if not args.no_baseline:
        entries = baseline_module.load_baseline(args.baseline)
        findings, suppressed, stale = baseline_module.apply_baseline(
            findings, entries)

    if args.as_json:
        print(json.dumps({
            "findings": [{
                "checker": f.checker,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "hint": f.hint,
                "context": f.context,
                "fingerprint": f.fingerprint(),
            } for f in findings],
            "count": len(findings),
            "suppressed": suppressed,
            "stale": stale,
        }, indent=2, sort_keys=True))
        return 1 if findings else 0

    for finding in findings:
        print(finding.render())
    for entry in stale:
        print("note: stale baseline entry (no longer matches): [%s] %s: %s"
              % (entry.get("checker"), entry.get("path"),
                 entry.get("message")), file=sys.stderr)
    summary = "%d finding(s)" % len(findings)
    if suppressed:
        summary += ", %d grandfathered by %s" % (suppressed, args.baseline)
    if stale:
        summary += (", %d stale baseline entr%s (run --write-baseline to "
                    "prune)" % (len(stale),
                                "y" if len(stale) == 1 else "ies"))
    print(summary)
    return 1 if findings else 0
