"""TRACE: emit call sites vs. the declared event schema registry.

Six backends write the same JSONL trace, and the report/replay tooling
keys off event and field names.  The registry
(:mod:`repro.obs.schema`) declares, per event, the keys every emit site
must pass and the keys some may pass; this checker reads the registry
*statically* (the ``_event(...)`` calls are literal-only by contract) and
holds every ``tracer.emit(...)`` call site in the tree to it:

``TRACE000``
    Emit sites exist but no schema registry module was found.
``TRACE001``
    Event name (literal or constant) not registered.
``TRACE002``
    A key passed at this site is not declared for the event -- the classic
    cross-backend drift (one coordinator renames ``bugs`` to ``bugs_found``).
``TRACE003``
    A required key is missing at this site.
``TRACE004``
    The payload is built dynamically (``**{...}``) for an event whose
    schema is closed; declare ``allow_extra`` or pass explicit keys.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    SourceModule,
    attr_chain,
    enclosing_context,
    qualname_index,
)

__all__ = ["SCHEMA_MODULE", "StaticEventSchema", "parse_registry",
           "collect_emit_sites", "check"]

#: Path suffix of the schema registry module.
SCHEMA_MODULE = "repro/obs/schema.py"

#: Envelope keys the tracer owns; legal on any event (kept in sync with
#: ``repro.obs.schema.ENVELOPE_KEYS``, and parsed from the registry when
#: the module declares them).
DEFAULT_ENVELOPE_KEYS = frozenset({"seq", "ts", "event", "run", "worker",
                                   "round", "wts"})


@dataclass
class StaticEventSchema:
    name: str
    required: Set[str] = field(default_factory=set)
    optional: Set[str] = field(default_factory=set)
    allow_extra: bool = False
    shared: bool = False

    def allowed(self) -> Set[str]:
        return self.required | self.optional


@dataclass
class StaticRegistry:
    path: str = ""
    #: event name -> schema
    events: Dict[str, StaticEventSchema] = field(default_factory=dict)
    #: constant name (RUN_STARTED) -> event name ("run_started")
    constants: Dict[str, str] = field(default_factory=dict)
    envelope: frozenset = DEFAULT_ENVELOPE_KEYS


def _literal_strings(node: Optional[ast.AST]) -> Optional[Tuple[str, ...]]:
    if node is None:
        return ()
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            values.append(element.value)
        return tuple(values)
    return None


def parse_registry(modules: List[SourceModule]) -> Optional[StaticRegistry]:
    """Read the ``_event(...)`` declarations out of the registry's AST."""
    module = next((m for m in modules if m.path.endswith(SCHEMA_MODULE)), None)
    if module is None:
        return None
    registry = StaticRegistry(path=module.path)
    for node in module.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            target = node.targets[0].id
            value = node.value
            if (target == "ENVELOPE_KEYS" and isinstance(value, ast.Call)):
                keys = _literal_strings(value.args[0]) if value.args else None
                if keys:
                    registry.envelope = frozenset(keys)
                continue
            if not (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "_event"):
                continue
            if not (value.args and isinstance(value.args[0], ast.Constant)
                    and isinstance(value.args[0].value, str)):
                continue
            name = value.args[0].value
            schema = StaticEventSchema(name=name)
            positional = ("required", "optional")
            for index, arg in enumerate(value.args[1:]):
                strings = _literal_strings(arg)
                if strings is not None and index < len(positional):
                    setattr(schema, positional[index], set(strings))
            for keyword in value.keywords:
                if keyword.arg in positional:
                    strings = _literal_strings(keyword.value)
                    if strings is not None:
                        setattr(schema, keyword.arg, set(strings))
                elif keyword.arg in ("allow_extra", "shared"):
                    if isinstance(keyword.value, ast.Constant):
                        setattr(schema, keyword.arg, bool(keyword.value.value))
            registry.events[name] = schema
            registry.constants[target] = name
    return registry


@dataclass
class EmitSite:
    module: SourceModule
    node: ast.Call
    event: Optional[str]      # resolved event name, None when dynamic
    keys: Set[str]
    dynamic: bool             # payload includes a **spread
    context: str


def _looks_like_tracer(receiver: str) -> bool:
    return "tracer" in receiver.lower()


def collect_emit_sites(modules: List[SourceModule],
                       registry: Optional[StaticRegistry]) -> List[EmitSite]:
    sites: List[EmitSite] = []
    constants = registry.constants if registry else {}
    for module in modules:
        if module.path.endswith(SCHEMA_MODULE):
            continue
        index = qualname_index(module)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"):
                continue
            receiver = attr_chain(node.func.value)
            if not _looks_like_tracer(receiver):
                continue
            event: Optional[str] = None
            if node.args:
                head = node.args[0]
                if isinstance(head, ast.Constant) and isinstance(head.value, str):
                    event = head.value
                elif isinstance(head, ast.Attribute):
                    event = constants.get(head.attr, head.attr)
                elif isinstance(head, ast.Name):
                    event = constants.get(head.id)  # None if not a constant
            keys: Set[str] = set()
            dynamic = False
            for keyword in node.keywords:
                if keyword.arg is None:
                    dynamic = True
                else:
                    keys.add(keyword.arg)
            sites.append(EmitSite(
                module=module, node=node, event=event, keys=keys,
                dynamic=dynamic,
                context=enclosing_context(module, node, index)))
    return sites


def check(modules: List[SourceModule]) -> List[Finding]:
    registry = parse_registry(modules)
    sites = collect_emit_sites(modules, registry)
    findings: List[Finding] = []
    if registry is None:
        if sites:
            first = sites[0]
            findings.append(Finding(
                "TRACE000", first.module.path, first.node.lineno,
                "tracer.emit call sites exist but no schema registry "
                "(%s) was found in the analyzed tree" % SCHEMA_MODULE,
                hint="add the registry module or widen the analyzed paths",
                context=first.context))
        return findings
    for site in sites:
        line = site.node.lineno
        if site.event is None:
            # Event name is a runtime variable (e.g. Tracer.ingest
            # re-emitting forwarded events); nothing to check statically.
            continue
        schema = registry.events.get(site.event)
        if schema is None:
            findings.append(Finding(
                "TRACE001", site.module.path, line,
                "trace event %r is not registered in %s"
                % (site.event, SCHEMA_MODULE),
                hint="declare it with _event(%r, required=(...), "
                     "optional=(...))" % site.event,
                context=site.context))
            continue
        if site.dynamic and not schema.allow_extra:
            findings.append(Finding(
                "TRACE004", site.module.path, line,
                "event %r is emitted with a dynamic **payload but its "
                "schema is closed" % site.event,
                hint="pass explicit keys, or declare allow_extra=True in "
                     "the registry",
                context=site.context))
        if not site.dynamic:
            for missing in sorted(schema.required - site.keys):
                findings.append(Finding(
                    "TRACE003", site.module.path, line,
                    "event %r missing required key %r at this emit site"
                    % (site.event, missing),
                    hint="every backend must pass the required keys; see "
                         "the registry entry",
                    context=site.context))
        if not schema.allow_extra:
            undeclared = site.keys - schema.allowed() - set(registry.envelope)
            for extra in sorted(undeclared):
                findings.append(Finding(
                    "TRACE002", site.module.path, line,
                    "event %r passes undeclared key %r (backend drift: the "
                    "registry knows %s)"
                    % (site.event, extra,
                       ", ".join(sorted(schema.allowed())) or "no keys"),
                    hint="rename the key to a declared one or add it to the "
                         "registry entry",
                    context=site.context))
    return findings
