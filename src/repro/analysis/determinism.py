"""DET: sources of nondeterminism in schedule/solver decision paths.

Checkpoint/resume and trace-driven replay (ROADMAP item 6) both assume
that re-running the same frontier with the same seeds reproduces the same
schedule.  Three things silently break that: the process-global RNG, the
wall clock, and Python's unordered ``set`` iteration feeding a
first-match choice.  The engine already does the right thing everywhere
(seeded ``random.Random(seed)`` per strategy, ``time.monotonic`` for
durations, ``sorted(...)`` before every ordering-sensitive pick) -- this
checker keeps it that way:

``DET001``
    A ``random.<fn>()`` call on the process-global RNG -- unseeded and
    shared across every component in the process.
``DET002``
    ``random.Random()`` constructed without a seed argument.
``DET003``
    ``time.time()`` inside the scheduling/solver decision paths
    (``repro.engine`` / ``repro.solver`` / ``repro.cluster`` /
    ``repro.distrib``); wall clocks step, ``time.monotonic`` (or an
    injected clock) does not feed decisions back into the schedule.
``DET004``
    Iteration order of a ``set`` feeding an ordering-sensitive sink in
    those same modules: ``next(iter(s))``, ``s.pop()``, or a first-match
    ``for``-loop (one that breaks/returns) directly over a set.

DET003/DET004 are scoped to the decision-path packages; a benchmark
printing ``time.time()`` is nobody's replay problem.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import (
    Finding,
    SourceModule,
    enclosing_context,
    qualname_index,
)

__all__ = ["check", "DECISION_PATH_MARKERS"]

#: Path fragments that mark a module as schedule/solver decision code.
DECISION_PATH_MARKERS = ("/engine/", "/solver/", "/cluster/", "/distrib/")

_GLOBAL_RNG_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

_SET_ANNOTATIONS = frozenset({"set", "Set", "frozenset", "FrozenSet",
                              "AbstractSet", "MutableSet"})


def _in_decision_path(module: SourceModule) -> bool:
    return any(marker in module.path for marker in DECISION_PATH_MARKERS)


def _is_set_producer(node: ast.AST) -> bool:
    """Does this expression evaluate to a set, on its face?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        # Set algebra: s1 & s2, s1 - s2 ... only if a side is set-like.
        return _is_set_producer(node.left) or _is_set_producer(node.right)
    if isinstance(node, ast.Attribute) and node.attr in (
            "intersection", "union", "difference", "symmetric_difference"):
        return False  # handled via the Call case below
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in ("intersection", "union", "difference",
                                  "symmetric_difference")
    return False


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    base = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    if isinstance(base, ast.Name):
        return base.id in _SET_ANNOTATIONS
    if isinstance(base, ast.Attribute):
        return base.attr in _SET_ANNOTATIONS
    return False


class _SetTracker(ast.NodeVisitor):
    """Function-local inference of which names hold sets."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_producer(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _annotation_is_set(node.annotation):
            self.set_names.add(node.target.id)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if _annotation_is_set(node.annotation):
            self.set_names.add(node.arg)

    def visit_FunctionDef(self, node) -> None:  # do not descend
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def _is_sorted_wrapped(module: SourceModule, node: ast.AST) -> bool:
    """Is this expression an argument to sorted()/min()/max()/sum()/len()?"""
    parent = module.parents.get(node)
    while isinstance(parent, (ast.Starred,)):
        parent = module.parents.get(parent)
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        return parent.func.id in ("sorted", "min", "max", "sum", "len",
                                  "frozenset", "set", "any", "all")
    return False


def check(modules: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []

    def scan_module(module: SourceModule) -> None:
        index = qualname_index(module)
        decision_path = _in_decision_path(module)

        # Per-function set-name inference for DET004.
        set_names_by_function: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                tracker = _SetTracker()
                for statement in node.body:
                    tracker.visit(statement)
                for arg in (node.args.args + node.args.posonlyargs
                            + node.args.kwonlyargs):
                    tracker.visit_arg(arg)
                set_names_by_function[node] = tracker.set_names

        def local_set_names(node: ast.AST) -> Set[str]:
            current = module.parents.get(node)
            while current is not None:
                if current in set_names_by_function:
                    return set_names_by_function[current]
                current = module.parents.get(current)
            return set()

        def is_set_expr(expr: ast.AST, node: ast.AST) -> bool:
            if _is_set_producer(expr):
                return True
            return (isinstance(expr, ast.Name)
                    and expr.id in local_set_names(node))

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                func = node.func
                # DET001: the process-global RNG.
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "random"
                        and func.attr in _GLOBAL_RNG_FUNCS):
                    findings.append(Finding(
                        "DET001", module.path, node.lineno,
                        "call to the process-global RNG random.%s(); replay "
                        "and checkpoint/resume cannot reproduce it"
                        % func.attr,
                        hint="thread a seeded random.Random(seed) through "
                             "the component (see engine.strategies)",
                        context=enclosing_context(module, node, index)))
                # DET002: unseeded RNG instance.
                if (not node.args and not node.keywords
                        and ((isinstance(func, ast.Attribute)
                              and func.attr == "Random")
                             or (isinstance(func, ast.Name)
                                 and func.id == "Random"))):
                    findings.append(Finding(
                        "DET002", module.path, node.lineno,
                        "random.Random() constructed without a seed",
                        hint="pass an explicit seed (from config or the "
                             "checkpoint) so runs replay deterministically",
                        context=enclosing_context(module, node, index)))
                # DET003: wall clock in decision paths.
                if (decision_path and isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "time" and func.attr == "time"):
                    findings.append(Finding(
                        "DET003", module.path, node.lineno,
                        "time.time() in a scheduling/solver decision path; "
                        "wall clocks step and skew across workers",
                        hint="use time.monotonic() for durations, or an "
                             "injected clock for testable decisions",
                        context=enclosing_context(module, node, index)))
                # DET004 sink: next(iter(set)).
                if (decision_path and isinstance(func, ast.Name)
                        and func.id == "next" and node.args
                        and isinstance(node.args[0], ast.Call)
                        and isinstance(node.args[0].func, ast.Name)
                        and node.args[0].func.id == "iter"
                        and node.args[0].args
                        and is_set_expr(node.args[0].args[0], node)):
                    findings.append(Finding(
                        "DET004", module.path, node.lineno,
                        "next(iter(<set>)) picks an arbitrary element; set "
                        "order varies across processes (hash randomization)",
                        hint="use min()/max() with a key, or sorted(...)[0]",
                        context=enclosing_context(module, node, index)))
                # DET004 sink: <set>.pop() with no arguments.
                if (decision_path and isinstance(func, ast.Attribute)
                        and func.attr == "pop" and not node.args
                        and isinstance(func.value, ast.Name)
                        and func.value.id in local_set_names(node)):
                    findings.append(Finding(
                        "DET004", module.path, node.lineno,
                        "%s.pop() removes an arbitrary set element"
                        % func.value.id,
                        hint="pop from a sorted list, or pick with "
                             "min()/max()",
                        context=enclosing_context(module, node, index)))
            # DET004 sink: first-match loop directly over a set.
            if (decision_path and isinstance(node, (ast.For,))
                    and is_set_expr(node.iter, node)
                    and not _is_sorted_wrapped(module, node.iter)
                    and _has_first_match_exit(node)):
                findings.append(Finding(
                    "DET004", module.path, node.lineno,
                    "first-match loop over a set: which element wins "
                    "depends on hash order",
                    hint="iterate sorted(<set>) so the choice is stable",
                    context=enclosing_context(module, node, index)))

    for module in modules:
        scan_module(module)
    return findings


def _has_first_match_exit(loop: ast.For) -> bool:
    """Does the loop body leave early (break/return) -- a choice, not a fold?"""

    def contains_exit(node: ast.AST) -> bool:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Break, ast.Return)):
                return True
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.For, ast.While)):
                continue  # a nested scope or loop owns its own exits
            if contains_exit(child):
                return True
        return False

    return any(contains_exit(ast.Module(body=[stmt], type_ignores=[]))
               for stmt in loop.body)
