"""Baseline grandfathering: start the CI gate green, ratchet it down.

A new checker dropped on a living tree finds things; failing CI on all of
them at once would block every other PR until someone fixes the backlog.
The baseline file records the findings that existed when the gate was
turned on -- matched by a line-independent fingerprint (checker id, path,
enclosing qualname, message) so ordinary edits above a grandfathered line
do not un-suppress it.  Semantics:

* a finding whose fingerprint is in the baseline is suppressed;
* a *new* finding (not in the baseline) fails the run -- the ratchet only
  turns one way;
* baseline entries that no longer match anything are reported as stale so
  they get pruned (``--write-baseline`` rewrites the file to exactly the
  current findings, which is both "adopt the gate" and "prune").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_FORMAT_VERSION = 1


def load_baseline(path: str) -> List[dict]:
    """Entries from a baseline file; empty when absent (not an error)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError:
        return []
    except json.JSONDecodeError as exc:
        raise ValueError("baseline file %s is not valid JSON: %s"
                         % (path, exc)) from None
    return list(data.get("findings", ()))


def write_baseline(findings: Iterable[Finding], path: str) -> int:
    """Record the current findings as the new baseline; returns the count."""
    entries = [{
        "checker": f.checker,
        "path": f.path,
        "context": f.context,
        "message": f.message,
    } for f in sorted(findings, key=lambda f: (f.path, f.line, f.checker))]
    Path(path).write_text(
        json.dumps({"version": _FORMAT_VERSION, "findings": entries},
                   indent=2) + "\n",
        encoding="utf-8")
    return len(entries)


def _entry_fingerprint(entry: dict) -> str:
    return "|".join((entry.get("checker", ""), entry.get("path", ""),
                     entry.get("context", ""), entry.get("message", "")))


def apply_baseline(findings: List[Finding], entries: List[dict]
                   ) -> Tuple[List[Finding], int, List[dict]]:
    """Split findings against the baseline.

    Returns ``(active, suppressed_count, stale_entries)``: findings not in
    the baseline (these fail the run), how many were grandfathered, and
    baseline entries that matched nothing (candidates for pruning).
    """
    counts: Dict[str, int] = {}
    for entry in entries:
        fingerprint = _entry_fingerprint(entry)
        counts[fingerprint] = counts.get(fingerprint, 0) + 1
    active: List[Finding] = []
    suppressed = 0
    for finding in findings:
        fingerprint = finding.fingerprint()
        if counts.get(fingerprint, 0) > 0:
            counts[fingerprint] -= 1
            suppressed += 1
        else:
            active.append(finding)
    stale = [entry for entry in entries
             if counts.get(_entry_fingerprint(entry), 0) > 0]
    # Each surplus fingerprint is stale once per unmatched occurrence.
    seen: Dict[str, int] = {}
    pruned_stale: List[dict] = []
    for entry in stale:
        fingerprint = _entry_fingerprint(entry)
        seen[fingerprint] = seen.get(fingerprint, 0) + 1
        if seen[fingerprint] <= counts.get(fingerprint, 0):
            pruned_stale.append(entry)
    return active, suppressed, pruned_stale
