"""CONC: blocking calls under locks, untimed receives, lock-order cycles.

The coordinator is a single-threaded request/reply loop surrounded by
helper threads (TCP receivers, heartbeat pumps, the status server), and
the discipline that keeps it live is simple: never block indefinitely
while holding a lock, and never wait on a peer without a timeout.  Both
rules are cross-file conventions no tool checked until now:

``CONC001``
    A blocking call (``socket.recv/accept/sendall/connect``, ``Queue.get``/
    ``Queue.put`` without a timeout, zero-argument ``.join()``/``.wait()``,
    ``subprocess.*``, ``time.sleep``) lexically inside a ``with <lock>:``
    body.  A stalled peer freezes every thread that needs the lock.
``CONC002``
    An untimed ``.get()`` on a queue: a dead sender hangs the caller
    forever (the worker loop's exact failure mode when its coordinator
    dies).
``CONC003``
    The inter-module lock-acquisition graph has a cycle -- two code paths
    that take the same locks in opposite orders are a deadlock candidate.
    Call edges are resolved through the whole-program index
    (:class:`repro.analysis.program.ProjectIndex`): ``self.method()``
    through the MRO with abstract hooks expanded to their in-tree
    overrides, typed-attribute receivers (``self.transport.send()``
    follows the annotation on the constructor parameter), and imported
    functions -- so a coordinator->transport inversion two modules apart
    still closes the cycle.

Lock identification is heuristic but strict enough to be quiet: a ``with``
context is a lock when its expression resolves to a ``threading.Lock/
RLock/Condition/Semaphore`` assignment seen anywhere in the tree, or when
its dotted name contains ``lock``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    SourceModule,
    attr_chain,
    enclosing_context,
    qualname_index,
)
from repro.analysis.program import ProjectIndex

__all__ = ["check"]

_LOCK_FACTORY_NAMES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})

#: Attribute calls that always block (no timeout parameter exists).
_ALWAYS_BLOCKING_ATTRS = frozenset({
    "recv", "recvfrom", "recv_into", "accept", "sendall", "connect"})

#: ``subprocess`` functions that wait on a child.
_SUBPROCESS_BLOCKING = frozenset({
    "run", "call", "check_call", "check_output", "communicate"})

_QUEUEISH_HINTS = ("queue", "inbox", "mailbox", "pending")


def _has_timeout(node: ast.Call) -> bool:
    if any(keyword.arg == "timeout" for keyword in node.keywords):
        return True
    # queue.Queue.get(block, timeout) -- a second positional is a timeout.
    return len(node.args) >= 2


def _is_queueish(receiver: str) -> bool:
    lowered = receiver.lower()
    return any(hint in lowered for hint in _QUEUEISH_HINTS)


def _is_lockish_name(receiver: str) -> bool:
    return "lock" in receiver.lower()


@dataclass
class _FunctionInfo:
    qualname: str
    module: SourceModule
    node: ast.AST
    #: Locks this function acquires anywhere in its own body.
    acquires: Set[str] = field(default_factory=set)
    #: Callees resolvable inside the analyzed tree (same-module names).
    calls: Set[str] = field(default_factory=set)


def _collect_lock_attrs(modules: List[SourceModule]) -> Set[str]:
    """Attribute/name targets assigned a ``threading.Lock()``-style value."""
    lock_names: Set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (isinstance(value, ast.Call)
                    and ((isinstance(value.func, ast.Name)
                          and value.func.id in _LOCK_FACTORY_NAMES)
                         or (isinstance(value.func, ast.Attribute)
                             and value.func.attr in _LOCK_FACTORY_NAMES))):
                continue
            for target in node.targets:
                chain = attr_chain(target)
                if chain:
                    # Keyed by the trailing attribute name: `self._lock`
                    # assigned in __init__ matches `self._lock` acquired in
                    # any method of any class with that attribute.
                    lock_names.add(chain.split(".")[-1])
    return lock_names


def _lock_identity(module: SourceModule, context: str, expr: ast.AST) -> str:
    """Stable identity for a lock acquisition site.

    ``self._send_lock`` inside ``TcpTransport._sendall`` becomes
    ``repro/net/transport.py::TcpTransport._send_lock`` -- one node per
    (class, attribute) pair, so acquisitions in different methods of the
    same class meet in the graph.
    """
    chain = attr_chain(expr) or ast.unparse(expr)
    owner = context.split(".")[0] if context else "<module>"
    if chain.startswith("self."):
        return "%s::%s.%s" % (module.path, owner, chain[len("self."):])
    return "%s::%s" % (module.path, chain)


def _blocking_reason(node: ast.Call) -> Optional[str]:
    """Why this call can block indefinitely (None = not blocking)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        receiver = attr_chain(func.value)
        attr = func.attr
        if attr in _ALWAYS_BLOCKING_ATTRS:
            return "%s.%s() blocks until the peer cooperates" % (
                receiver or "<expr>", attr)
        if attr in ("get", "put") and _is_queueish(receiver):
            if not _has_timeout(node) and not (attr == "get" and node.args):
                return ("untimed %s.%s() blocks forever if the other side "
                        "is gone" % (receiver or "<expr>", attr))
            return None
        if attr in ("join", "wait") and not node.args and not node.keywords:
            if isinstance(func.value, ast.Name) and func.value.id in ("os",):
                return None  # os.wait is flagged via subprocess rules only
            return ("%s.%s() with no timeout waits forever"
                    % (receiver or "<expr>", attr))
        if (attr in _SUBPROCESS_BLOCKING
                and isinstance(func.value, ast.Name)
                and func.value.id == "subprocess"):
            return "subprocess.%s() waits on a child process" % attr
        if (attr == "sleep" and isinstance(func.value, ast.Name)
                and func.value.id == "time"):
            return "time.sleep() stalls every waiter on the lock"
    return None


def check(modules: List[SourceModule],
          index: Optional[ProjectIndex] = None) -> List[Finding]:
    if index is None:
        index = ProjectIndex(modules)
    findings: List[Finding] = []
    known_lock_attrs = _collect_lock_attrs(modules)
    functions: Dict[str, _FunctionInfo] = {}
    #: (outer lock, inner lock, path, line) lexical nesting edges.
    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}

    def resolve_calls(module: SourceModule, qualname: str,
                      func_node: Optional[ast.AST],
                      call_func: ast.AST) -> List[str]:
        """Cross-module callee keys, with the old same-module fallback."""
        keys = index.callees(module, qualname, func_node, call_func)
        if keys:
            return keys
        legacy = _resolve_callee(call_func, qualname)
        if legacy:
            return ["%s::%s" % (module.path, legacy)]
        return []

    def is_lock_expr(expr: ast.AST) -> bool:
        chain = attr_chain(expr)
        if not chain:
            return False
        if _is_lockish_name(chain):
            return True
        return chain.split(".")[-1] in known_lock_attrs

    def scan_module(module: SourceModule) -> None:
        index_names = qualname_index(module)

        def walk(node: ast.AST, held: Tuple[str, ...],
                 function: Optional[_FunctionInfo]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _FunctionInfo(
                        qualname=index_names.get(child, child.name),
                        module=module, node=child)
                    functions["%s::%s" % (module.path, info.qualname)] = info
                    # A nested def's body runs later; locks held here are
                    # not held inside it.
                    walk(child, (), info)
                    continue
                if isinstance(child, ast.Lambda):
                    continue
                acquired: List[str] = []
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    for item in child.items:
                        expr = item.context_expr
                        # `with lock:` or `with lock.acquire_timeout(..)`
                        target = expr
                        if isinstance(expr, ast.Call):
                            target = expr.func
                        if is_lock_expr(target):
                            context = (function.qualname if function else "")
                            lock_id = _lock_identity(module, context, target)
                            acquired.append(lock_id)
                            if function is not None:
                                function.acquires.add(lock_id)
                            for outer in held:
                                if outer != lock_id:
                                    edges.setdefault(
                                        (outer, lock_id),
                                        (module.path, child.lineno,
                                         context))
                if isinstance(child, ast.Call):
                    reason = _blocking_reason(child)
                    receiver = (attr_chain(child.func.value)
                                if isinstance(child.func, ast.Attribute)
                                else "")
                    if held and reason is not None:
                        findings.append(Finding(
                            "CONC001", module.path, child.lineno,
                            "blocking call under lock %s: %s"
                            % (_short(held[-1]), reason),
                            hint="bound the wait (timeout=, select with a "
                                 "deadline) or move the call outside the "
                                 "lock",
                            context=(function.qualname if function else "")))
                    elif (isinstance(child.func, ast.Attribute)
                          and child.func.attr == "get"
                          and _is_queueish(receiver)
                          and not child.args
                          and not any(k.arg in ("timeout", "block")
                                      for k in child.keywords)):
                        findings.append(Finding(
                            "CONC002", module.path, child.lineno,
                            "untimed %s.get(): a dead sender hangs this "
                            "loop forever" % (receiver or "<queue>"),
                            hint="pass timeout= and re-check liveness "
                                 "between attempts",
                            context=(function.qualname if function else "")))
                    if function is not None:
                        function.calls.update(resolve_calls(
                            module, function.qualname, function.node,
                            child.func))
                walk(child, held + tuple(acquired), function)

        walk(module.tree, (), None)

    for module in modules:
        scan_module(module)

    # Propagate: a call made while holding lock A reaches locks acquired in
    # the (same-module) callee, transitively.
    closure: Dict[str, Set[str]] = {}

    def locks_of(function_key: str, seen: Set[str]) -> Set[str]:
        if function_key in closure:
            return closure[function_key]
        if function_key in seen:
            return set()
        seen.add(function_key)
        info = functions.get(function_key)
        if info is None:
            return set()
        total = set(info.acquires)
        for callee in info.calls:
            total |= locks_of(callee, seen)
        closure[function_key] = total
        return total

    def scan_module_calls(module: SourceModule) -> None:
        index_names = qualname_index(module)

        def walk_calls(node: ast.AST, held: Tuple[str, ...],
                       context: str, func_node: Optional[ast.AST]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk_calls(child, (), index_names.get(child, child.name),
                               child)
                    continue
                acquired: List[str] = []
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    for item in child.items:
                        target = item.context_expr
                        if isinstance(target, ast.Call):
                            target = target.func
                        if is_lock_expr(target):
                            acquired.append(
                                _lock_identity(module, context, target))
                if held and isinstance(child, ast.Call):
                    for callee in resolve_calls(module, context, func_node,
                                                child.func):
                        for inner in locks_of(callee, set()):
                            for outer in held:
                                if outer != inner:
                                    edges.setdefault(
                                        (outer, inner),
                                        (module.path, child.lineno, context))
                walk_calls(child, held + tuple(acquired), context, func_node)

        walk_calls(module.tree, (), "", None)

    for module in modules:
        scan_module_calls(module)

    findings.extend(_find_cycles(edges))
    return findings


def _resolve_callee(func: ast.AST, caller_qualname: str) -> Optional[str]:
    """Same-module callee qualname for ``self.m()`` / ``name()`` calls.

    A ``self.m()`` call inside ``C.f`` resolves to ``C.m`` (methods of the
    same class); a bare ``name()`` call resolves to the module-level
    function ``name``.
    """
    if isinstance(func, ast.Name):
        return func.id
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")):
        if "." in caller_qualname:
            owner = caller_qualname.rsplit(".", 1)[0]
            return "%s.%s" % (owner, func.attr)
        return func.attr
    return None


def _short(lock_id: str) -> str:
    return lock_id.split("::", 1)[-1]


def _find_cycles(edges: Dict[Tuple[str, str], Tuple[str, int, str]]
                 ) -> List[Finding]:
    graph: Dict[str, Set[str]] = {}
    for (outer, inner) in edges:
        graph.setdefault(outer, set()).add(inner)
    findings: List[Finding] = []
    reported: Set[frozenset] = set()
    for start in sorted(graph):
        stack = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for neighbor in sorted(graph.get(node, ())):
                if neighbor == start and len(path) > 1:
                    cycle = frozenset(path)
                    if cycle in reported:
                        continue
                    reported.add(cycle)
                    src_path, line, context = edges[(path[-1], start)]
                    findings.append(Finding(
                        "CONC003", src_path, line,
                        "lock-order cycle (deadlock candidate): %s"
                        % " -> ".join(_short(p) for p in path + (start,)),
                        hint="acquire these locks in one global order, or "
                             "collapse them into a single lock",
                        context=context))
                elif neighbor not in path:
                    stack.append((neighbor, path + (neighbor,)))
    return findings
