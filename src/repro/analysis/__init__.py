"""Static distributed-invariants checker for the repro codebase.

A symbolic-execution cluster fails in ways unit tests are bad at
catching: a wire-message field added on one side of a version bump, a
trace key renamed in one backend but not the other five, a blocking
socket call that sneaks under a lock, an unordered ``set`` silently
deciding which state gets explored first.  This package checks those
invariants *statically* -- pure :mod:`ast`, no imports of the analyzed
code -- so the CI gate runs in milliseconds and works on any parseable
tree (including test fixtures that are not importable packages).

Since PR 10 the checkers share a whole-program index
(:mod:`repro.analysis.program`): one parse of the tree with import
resolution, class/method tables, attribute typing, and a cross-module
call resolver, so the rules below are program-level invariants rather
than per-file lints.

Checker families (see each module's docstring for the rule catalog):

=========  ==========================================================
``PROTO``  wire-protocol lock: message classes vs ``PROTOCOL_VERSION``
           and the committed ``protocol.lock.json``; semver rule
           (``PROTOCOL_COMPAT_VERSION`` floor, additive-only
           compatible bumps)
``TRACE``  tracer emit sites vs the declared schema registry
           (:mod:`repro.obs.schema`)
``CONC``   blocking calls under held locks; lock-acquisition-order
           cycles over the cross-module call graph
``DET``    unseeded RNGs, wall clocks, and set-iteration order feeding
           schedule/solver decisions
``DISP``   dispatch exhaustiveness: every wire message has an
           ``isinstance`` handler arm, no arm references an
           unregistered message (:mod:`repro.analysis.dispatch`)
``CORE``   cluster-backend hook contracts: shells implement the
           ``@backend_hook`` surface and never shadow core-owned
           methods (:mod:`repro.analysis.hooks`)
=========  ==========================================================

Run it with ``python -m repro.analysis [--baseline FILE] [PATHS...]``;
findings new since the committed baseline fail the run.  Suppress a
single line with a ``# analysis-ignore`` (or ``# analysis-ignore[ID]``)
comment.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main, run_analysis
from repro.analysis.core import Finding, SourceModule, load_modules
from repro.analysis.program import ProjectIndex

__all__ = [
    "Finding",
    "ProjectIndex",
    "SourceModule",
    "apply_baseline",
    "load_baseline",
    "load_modules",
    "main",
    "run_analysis",
    "write_baseline",
]
