"""PROTO: the wire-protocol lock.

The pickled message set (:mod:`repro.distrib.messages` plus the handshake
dataclasses in :mod:`repro.net.transport`) is a cross-process contract:
a field added on the coordinator side but absent on a stale agent
desynchronizes the run, which is exactly what ``PROTOCOL_VERSION`` exists
to prevent -- but nothing ever checked that the version moves when the
messages do.  This checker extracts every message dataclass (field names,
annotations, defaults) into a committed ``protocol.lock.json`` and fails
when they drift apart:

``PROTO001``
    A message class or field changed while ``PROTOCOL_VERSION`` stayed at
    the locked value: bump the version, then regenerate the lock.
``PROTO002``
    The lock file is missing or records a different version than the code:
    regenerate with ``python -m repro.analysis --update-lock``.
``PROTO003``
    A message field's declared type (or default) cannot cross a pickle
    boundary: locks, sockets, open files, lambdas, threads, queues.
``PROTO004``
    The semver rule.  The lock (format 2) records both the current
    ``PROTOCOL_VERSION`` and the ``PROTOCOL_COMPAT_VERSION`` floor -- the
    oldest version whose agents may still join mid-campaign.  A version
    bump that keeps the floor below the new version is a *compatible*
    bump, and only additive changes qualify: new fields with defaults
    (an old agent simply omits them and the dataclass fills them in).
    Removing or retyping a field, adding a required field, or adding a
    whole message class while the floor still admits old agents is a
    breaking change at a compatible version bump -- advance the floor or
    make the change additive.  Compatible additions are tagged in the
    lock with ``"since": <version>`` so the window stays auditable;
    ``--update-lock`` migrates format-1 locks and refuses to write a lock
    that would paper over a breaking compatible bump.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding, SourceModule

__all__ = ["MESSAGE_MODULES", "VERSION_MODULE", "VERSION_CONSTANT",
           "COMPAT_CONSTANT", "LOCK_FORMAT", "extract_protocol",
           "classify_changes", "normalize_lock", "build_lock",
           "verify_lock", "write_lock", "load_lock", "check"]

#: Path suffix -> dotted module name of every file whose dataclasses are
#: wire messages.  Matched by suffix so fixture trees work unchanged.
MESSAGE_MODULES: Dict[str, str] = {
    "repro/distrib/messages.py": "repro.distrib.messages",
    "repro/net/transport.py": "repro.net.transport",
}

#: Where the protocol version constants live.
VERSION_MODULE = "repro/net/transport.py"
VERSION_CONSTANT = "PROTOCOL_VERSION"
#: The compatibility floor: the oldest protocol version whose agents may
#: still join.  Optional in fixtures -- it defaults to the version itself
#: (no compatibility window).
COMPAT_CONSTANT = "PROTOCOL_COMPAT_VERSION"

#: Current on-disk lock format.  Format 1 was flat (version + messages);
#: format 2 adds the compat floor and per-field ``since`` tags.
LOCK_FORMAT = 2

#: Identifiers in a field annotation (or default) that name values which do
#: not survive pickling -- the process/TCP transports ship every message
#: through ``pickle.dumps``.
_UNPICKLABLE_NAMES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Thread", "socket", "Socket", "Popen", "Queue", "SimpleQueue",
    "LifoQueue", "PriorityQueue", "IO", "TextIO", "BinaryIO", "TextIOWrapper",
    "FileIO", "BufferedReader", "BufferedWriter", "Callable", "Generator",
    "lambda",
})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _module_name(module: SourceModule) -> Optional[str]:
    for suffix, dotted in MESSAGE_MODULES.items():
        if module.path.endswith(suffix):
            return dotted
    return None


def extract_protocol(modules: List[SourceModule]) -> Tuple[dict, dict]:
    """Read the message set and version out of the tree, statically.

    Returns ``(lock_data, locations)``: the JSON-able lock content, and a
    side table mapping message names (and ``VERSION_CONSTANT``) to
    ``(path, line)`` for findings.
    """
    messages: Dict[str, dict] = {}
    locations: Dict[str, Tuple[str, int]] = {}
    version: Optional[int] = None
    compat: Optional[int] = None
    for module in modules:
        dotted = _module_name(module)
        if dotted is None:
            continue
        if module.path.endswith(VERSION_MODULE):
            for node in module.tree.body:
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)):
                    continue
                names = {t.id for t in node.targets
                         if isinstance(t, ast.Name)}
                if VERSION_CONSTANT in names:
                    version = node.value.value
                    locations[VERSION_CONSTANT] = (module.path, node.lineno)
                if COMPAT_CONSTANT in names:
                    compat = node.value.value
                    locations[COMPAT_CONSTANT] = (module.path, node.lineno)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            full_name = "%s.%s" % (dotted, node.name)
            fields = []
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                annotation = ast.unparse(statement.annotation)
                if annotation.startswith("ClassVar"):
                    continue
                fields.append({
                    "name": statement.target.id,
                    "type": annotation,
                    "default": (ast.unparse(statement.value)
                                if statement.value is not None else None),
                })
            messages[full_name] = {"fields": fields}
            locations[full_name] = (module.path, node.lineno)
    lock_data = {
        "format": LOCK_FORMAT,
        "protocol_version": version,
        "compat_version": compat if compat is not None else version,
        "messages": {name: messages[name] for name in sorted(messages)},
    }
    return lock_data, locations


def _check_picklable(modules: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        dotted = _module_name(module)
        if dotted is None:
            continue
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                bad = _unpicklable_names_in(statement.annotation)
                if statement.value is not None:
                    bad |= _unpicklable_names_in(statement.value)
                if bad:
                    target = (statement.target.id
                              if isinstance(statement.target, ast.Name)
                              else ast.unparse(statement.target))
                    findings.append(Finding(
                        "PROTO003", module.path, node.lineno,
                        "message %s.%s field %r has unpicklable type (%s); "
                        "it cannot cross the process/TCP wire"
                        % (dotted, node.name, target, ", ".join(sorted(bad))),
                        hint="ship plain data (ids, encoded trees) and "
                             "rebuild the live object on the far side",
                        context=node.name))
    return findings


def _unpicklable_names_in(node: ast.AST) -> set:
    bad = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            bad.add("lambda")
        elif isinstance(child, ast.Name) and child.id in _UNPICKLABLE_NAMES:
            bad.add(child.id)
        elif isinstance(child, ast.Attribute) and child.attr in _UNPICKLABLE_NAMES:
            bad.add(child.attr)
    return bad


def load_lock(path: str) -> Optional[dict]:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def write_lock(lock_data: dict, path: str) -> None:
    Path(path).write_text(json.dumps(lock_data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _field_map(entry: dict) -> Dict[str, dict]:
    return {f["name"]: f for f in entry.get("fields", ())}


def _signature(entry: dict) -> Tuple[object, object]:
    """What must not drift for a field: its type and default.

    ``since`` tags are lock bookkeeping, not part of the wire shape.
    """
    return (entry.get("type"), entry.get("default"))


def normalize_lock(locked: Optional[dict]) -> Optional[dict]:
    """Read any committed lock as format 2.

    A flat format-1 lock has no compatibility window: its floor is its own
    version and nothing carries a ``since`` tag.
    """
    if locked is None:
        return None
    if locked.get("format", 1) >= LOCK_FORMAT:
        return locked
    return {
        "format": LOCK_FORMAT,
        "protocol_version": locked.get("protocol_version"),
        "compat_version": locked.get("protocol_version"),
        "messages": locked.get("messages", {}),
    }


def classify_changes(frozen: dict, current: dict
                     ) -> Tuple[List[str], List[str]]:
    """Split a message-set diff into (compatible, breaking) descriptions.

    The only compatible change is a new field with a default: an agent at
    the old version omits it and the dataclass fills it in.  Everything
    else -- removed or retyped fields, required fields, new or removed
    message classes (an old agent cannot even unpickle an unknown class)
    -- breaks agents below the new version.
    """
    compatible: List[str] = []
    breaking: List[str] = []
    for name in sorted(set(frozen) - set(current)):
        breaking.append("wire message %s was removed" % name)
    for name in sorted(set(current) - set(frozen)):
        breaking.append("new wire message %s (old agents cannot unpickle "
                        "an unknown class)" % name)
    for name in sorted(set(current) & set(frozen)):
        now, then = _field_map(current[name]), _field_map(frozen[name])
        for missing in sorted(set(then) - set(now)):
            breaking.append("field %r was removed from %s" % (missing, name))
        for added in sorted(set(now) - set(then)):
            if now[added].get("default") is not None:
                compatible.append("field %r added to %s (default %s)"
                                  % (added, name, now[added]["default"]))
            else:
                breaking.append("required field %r added to %s"
                                % (added, name))
        for common in sorted(set(now) & set(then)):
            if _signature(now[common]) != _signature(then[common]):
                breaking.append("field %r of %s changed (%s -> %s)"
                                % (common, name, _describe(then[common]),
                                   _describe(now[common])))
    return compatible, breaking


def build_lock(lock_data: dict,
               previous: Optional[dict]) -> Tuple[dict, List[str]]:
    """The format-2 lock ``--update-lock`` should write.

    Returns ``(lock, breaking)``.  ``breaking`` is non-empty exactly when
    the diff against ``previous`` contains breaking changes while the
    code's compat floor still admits previous-version agents -- the
    caller must refuse to write the lock in that case (PROTO004).

    Compatible additions introduced by a version bump are tagged
    ``"since": <new version>``; prior tags are carried forward until the
    compat floor catches up, then folded into the base message shape.
    """
    previous = normalize_lock(previous)
    version = lock_data.get("protocol_version")
    compat = lock_data.get("compat_version", version)
    messages = {
        name: {"fields": [dict(field) for field in entry.get("fields", ())]}
        for name, entry in lock_data.get("messages", {}).items()}
    lock = {
        "format": LOCK_FORMAT,
        "protocol_version": version,
        "compat_version": compat,
        "messages": messages,
    }
    if previous is None:
        return lock, []
    prev_version = previous.get("protocol_version")
    frozen = previous.get("messages", {})
    bumped = (isinstance(prev_version, int) and isinstance(version, int)
              and version > prev_version)
    if bumped and isinstance(compat, int) and compat <= prev_version:
        _, breaking = classify_changes(frozen, messages)
        if breaking:
            return lock, breaking
    for name, entry in messages.items():
        then = _field_map(frozen.get(name, {}))
        for field in entry["fields"]:
            prior = then.get(field["name"])
            since: Optional[int] = None
            if prior is not None:
                since = prior.get("since")
            elif (bumped and name in frozen
                    and field.get("default") is not None):
                since = version
            if isinstance(since, int) and isinstance(compat, int) \
                    and since > compat:
                field["since"] = since
    return lock, []


def verify_lock(lock_data: dict, locations: dict,
                locked: Optional[dict], lock_path: str) -> List[Finding]:
    """Compare the extracted message set against the committed lock."""
    findings: List[Finding] = []
    version = lock_data.get("protocol_version")
    compat = lock_data.get("compat_version")
    version_path, version_line = locations.get(
        VERSION_CONSTANT, (VERSION_MODULE, 1))
    compat_path, compat_line = locations.get(
        COMPAT_CONSTANT, (version_path, version_line))
    if version is None:
        findings.append(Finding(
            "PROTO002", version_path, version_line,
            "no literal %s assignment found in %s"
            % (VERSION_CONSTANT, VERSION_MODULE),
            hint="keep %s a plain integer constant" % VERSION_CONSTANT))
        return findings
    if isinstance(compat, int) and compat > version:
        findings.append(Finding(
            "PROTO004", compat_path, compat_line,
            "%s (%d) exceeds %s (%d); the compatibility floor can never "
            "pass the current version"
            % (COMPAT_CONSTANT, compat, VERSION_CONSTANT, version),
            hint="keep %s <= %s" % (COMPAT_CONSTANT, VERSION_CONSTANT)))
        return findings
    locked = normalize_lock(locked)
    if locked is None:
        findings.append(Finding(
            "PROTO002", version_path, version_line,
            "protocol lock file %s is missing or unreadable" % lock_path,
            hint="run `python -m repro.analysis --update-lock` and commit "
                 "the result"))
        return findings
    locked_version = locked.get("protocol_version")
    current = lock_data.get("messages", {})
    frozen = locked.get("messages", {})
    if locked_version != version:
        # A forward bump whose floor still admits old agents may only
        # carry additive changes -- the semver rule, checked before the
        # generic "stale lock" escape hatch.
        if (isinstance(locked_version, int) and version > locked_version
                and isinstance(compat, int) and compat <= locked_version):
            _, breaking = classify_changes(frozen, current)
            for change in breaking:
                findings.append(Finding(
                    "PROTO004", version_path, version_line,
                    "breaking protocol change at a compatible version bump "
                    "(%d -> %d, compat floor %d): %s"
                    % (locked_version, version, compat, change),
                    hint="advance %s to %d (dropping v%d agents) or make "
                         "the change additive (new field with a default)"
                         % (COMPAT_CONSTANT, version, locked_version)))
            if breaking:
                return findings
        findings.append(Finding(
            "PROTO002", version_path, version_line,
            "protocol lock records version %r but the code is at %r; "
            "the lock is stale" % (locked_version, version),
            hint="run `python -m repro.analysis --update-lock` and commit "
                 "%s together with the version bump" % lock_path))
        return findings
    if locked.get("compat_version", locked_version) != compat:
        findings.append(Finding(
            "PROTO002", compat_path, compat_line,
            "protocol lock records compat floor %r but the code is at %r; "
            "the lock is stale"
            % (locked.get("compat_version"), compat),
            hint="run `python -m repro.analysis --update-lock` and commit "
                 "%s together with the floor change" % lock_path))
        return findings

    # Same version: the message set must be identical to the lock.
    hint = ("bump %s in %s, then run `python -m repro.analysis "
            "--update-lock`" % (VERSION_CONSTANT, VERSION_MODULE))
    for name in sorted(set(frozen) - set(current)):
        findings.append(Finding(
            "PROTO001", version_path, version_line,
            "wire message %s was removed without a %s bump"
            % (name, VERSION_CONSTANT), hint=hint, context=name))
    for name in sorted(set(current) - set(frozen)):
        path, line = locations.get(name, (version_path, version_line))
        findings.append(Finding(
            "PROTO001", path, line,
            "new wire message %s added without a %s bump"
            % (name, VERSION_CONSTANT), hint=hint, context=name))
    for name in sorted(set(current) & set(frozen)):
        path, line = locations.get(name, (version_path, version_line))
        now, then = _field_map(current[name]), _field_map(frozen[name])
        for missing in sorted(set(then) - set(now)):
            findings.append(Finding(
                "PROTO001", path, line,
                "field %r removed from wire message %s without a %s bump"
                % (missing, name, VERSION_CONSTANT), hint=hint, context=name))
        for added in sorted(set(now) - set(then)):
            findings.append(Finding(
                "PROTO001", path, line,
                "field %r added to wire message %s without a %s bump"
                % (added, name, VERSION_CONSTANT), hint=hint, context=name))
        for common in sorted(set(now) & set(then)):
            if _signature(now[common]) != _signature(then[common]):
                findings.append(Finding(
                    "PROTO001", path, line,
                    "field %r of wire message %s changed (%s -> %s) without "
                    "a %s bump"
                    % (common, name, _describe(then[common]),
                       _describe(now[common]), VERSION_CONSTANT),
                    hint=hint, context=name))
        # Fields the lock records as post-floor additions must keep their
        # defaults, or floor-version agents can no longer omit them.
        for common in sorted(set(now) & set(then)):
            since = then[common].get("since")
            if (isinstance(since, int) and isinstance(compat, int)
                    and since > compat
                    and now[common].get("default") is None):
                findings.append(Finding(
                    "PROTO004", path, line,
                    "field %r of wire message %s was added in v%d but lost "
                    "its default; agents at the compat floor (v%d) cannot "
                    "omit it" % (common, name, since, compat),
                    hint="restore the default or advance %s"
                         % COMPAT_CONSTANT, context=name))
    return findings


def _describe(entry: dict) -> str:
    text = entry.get("type", "?")
    if entry.get("default") is not None:
        text += " = %s" % entry["default"]
    return text


def check(modules: List[SourceModule], lock_path: str) -> List[Finding]:
    """The full PROTO family: picklability plus lock verification."""
    lock_data, locations = extract_protocol(modules)
    findings = _check_picklable(modules)
    if not lock_data["messages"] and lock_data["protocol_version"] is None:
        return findings  # tree has no wire modules at all (fixture trees)
    findings.extend(verify_lock(lock_data, locations, load_lock(lock_path),
                                lock_path))
    return findings
