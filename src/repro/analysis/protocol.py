"""PROTO: the wire-protocol lock.

The pickled message set (:mod:`repro.distrib.messages` plus the handshake
dataclasses in :mod:`repro.net.transport`) is a cross-process contract:
a field added on the coordinator side but absent on a stale agent
desynchronizes the run, which is exactly what ``PROTOCOL_VERSION`` exists
to prevent -- but nothing ever checked that the version moves when the
messages do.  This checker extracts every message dataclass (field names,
annotations, defaults) into a committed ``protocol.lock.json`` and fails
when they drift apart:

``PROTO001``
    A message class or field changed while ``PROTOCOL_VERSION`` stayed at
    the locked value: bump the version, then regenerate the lock.
``PROTO002``
    The lock file is missing or records a different version than the code:
    regenerate with ``python -m repro.analysis --update-lock``.
``PROTO003``
    A message field's declared type (or default) cannot cross a pickle
    boundary: locks, sockets, open files, lambdas, threads, queues.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding, SourceModule

__all__ = ["MESSAGE_MODULES", "VERSION_MODULE", "VERSION_CONSTANT",
           "extract_protocol", "verify_lock", "write_lock", "load_lock",
           "check"]

#: Path suffix -> dotted module name of every file whose dataclasses are
#: wire messages.  Matched by suffix so fixture trees work unchanged.
MESSAGE_MODULES: Dict[str, str] = {
    "repro/distrib/messages.py": "repro.distrib.messages",
    "repro/net/transport.py": "repro.net.transport",
}

#: Where the protocol version constant lives.
VERSION_MODULE = "repro/net/transport.py"
VERSION_CONSTANT = "PROTOCOL_VERSION"

#: Identifiers in a field annotation (or default) that name values which do
#: not survive pickling -- the process/TCP transports ship every message
#: through ``pickle.dumps``.
_UNPICKLABLE_NAMES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier", "Thread", "socket", "Socket", "Popen", "Queue", "SimpleQueue",
    "LifoQueue", "PriorityQueue", "IO", "TextIO", "BinaryIO", "TextIOWrapper",
    "FileIO", "BufferedReader", "BufferedWriter", "Callable", "Generator",
    "lambda",
})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _module_name(module: SourceModule) -> Optional[str]:
    for suffix, dotted in MESSAGE_MODULES.items():
        if module.path.endswith(suffix):
            return dotted
    return None


def extract_protocol(modules: List[SourceModule]) -> Tuple[dict, dict]:
    """Read the message set and version out of the tree, statically.

    Returns ``(lock_data, locations)``: the JSON-able lock content, and a
    side table mapping message names (and ``VERSION_CONSTANT``) to
    ``(path, line)`` for findings.
    """
    messages: Dict[str, dict] = {}
    locations: Dict[str, Tuple[str, int]] = {}
    version: Optional[int] = None
    for module in modules:
        dotted = _module_name(module)
        if dotted is None:
            continue
        if module.path.endswith(VERSION_MODULE):
            for node in module.tree.body:
                if (isinstance(node, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id == VERSION_CONSTANT
                                for t in node.targets)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)):
                    version = node.value.value
                    locations[VERSION_CONSTANT] = (module.path, node.lineno)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            full_name = "%s.%s" % (dotted, node.name)
            fields = []
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                annotation = ast.unparse(statement.annotation)
                if annotation.startswith("ClassVar"):
                    continue
                fields.append({
                    "name": statement.target.id,
                    "type": annotation,
                    "default": (ast.unparse(statement.value)
                                if statement.value is not None else None),
                })
            messages[full_name] = {"fields": fields}
            locations[full_name] = (module.path, node.lineno)
    lock_data = {
        "protocol_version": version,
        "messages": {name: messages[name] for name in sorted(messages)},
    }
    return lock_data, locations


def _check_picklable(modules: List[SourceModule]) -> List[Finding]:
    findings: List[Finding] = []
    for module in modules:
        dotted = _module_name(module)
        if dotted is None:
            continue
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                bad = _unpicklable_names_in(statement.annotation)
                if statement.value is not None:
                    bad |= _unpicklable_names_in(statement.value)
                if bad:
                    target = (statement.target.id
                              if isinstance(statement.target, ast.Name)
                              else ast.unparse(statement.target))
                    findings.append(Finding(
                        "PROTO003", module.path, node.lineno,
                        "message %s.%s field %r has unpicklable type (%s); "
                        "it cannot cross the process/TCP wire"
                        % (dotted, node.name, target, ", ".join(sorted(bad))),
                        hint="ship plain data (ids, encoded trees) and "
                             "rebuild the live object on the far side",
                        context=node.name))
    return findings


def _unpicklable_names_in(node: ast.AST) -> set:
    bad = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Lambda):
            bad.add("lambda")
        elif isinstance(child, ast.Name) and child.id in _UNPICKLABLE_NAMES:
            bad.add(child.id)
        elif isinstance(child, ast.Attribute) and child.attr in _UNPICKLABLE_NAMES:
            bad.add(child.attr)
    return bad


def load_lock(path: str) -> Optional[dict]:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def write_lock(lock_data: dict, path: str) -> None:
    Path(path).write_text(json.dumps(lock_data, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def _field_map(entry: dict) -> Dict[str, dict]:
    return {f["name"]: f for f in entry.get("fields", ())}


def verify_lock(lock_data: dict, locations: dict,
                locked: Optional[dict], lock_path: str) -> List[Finding]:
    """Compare the extracted message set against the committed lock."""
    findings: List[Finding] = []
    version = lock_data.get("protocol_version")
    version_path, version_line = locations.get(
        VERSION_CONSTANT, (VERSION_MODULE, 1))
    if version is None:
        findings.append(Finding(
            "PROTO002", version_path, version_line,
            "no literal %s assignment found in %s"
            % (VERSION_CONSTANT, VERSION_MODULE),
            hint="keep %s a plain integer constant" % VERSION_CONSTANT))
        return findings
    if locked is None:
        findings.append(Finding(
            "PROTO002", version_path, version_line,
            "protocol lock file %s is missing or unreadable" % lock_path,
            hint="run `python -m repro.analysis --update-lock` and commit "
                 "the result"))
        return findings
    locked_version = locked.get("protocol_version")
    if locked_version != version:
        findings.append(Finding(
            "PROTO002", version_path, version_line,
            "protocol lock records version %r but the code is at %r; "
            "the lock is stale" % (locked_version, version),
            hint="run `python -m repro.analysis --update-lock` and commit "
                 "%s together with the version bump" % lock_path))
        return findings

    # Same version: the message set must be identical to the lock.
    current = lock_data.get("messages", {})
    frozen = locked.get("messages", {})
    hint = ("bump %s in %s, then run `python -m repro.analysis "
            "--update-lock`" % (VERSION_CONSTANT, VERSION_MODULE))
    for name in sorted(set(frozen) - set(current)):
        findings.append(Finding(
            "PROTO001", version_path, version_line,
            "wire message %s was removed without a %s bump"
            % (name, VERSION_CONSTANT), hint=hint, context=name))
    for name in sorted(set(current) - set(frozen)):
        path, line = locations.get(name, (version_path, version_line))
        findings.append(Finding(
            "PROTO001", path, line,
            "new wire message %s added without a %s bump"
            % (name, VERSION_CONSTANT), hint=hint, context=name))
    for name in sorted(set(current) & set(frozen)):
        path, line = locations.get(name, (version_path, version_line))
        now, then = _field_map(current[name]), _field_map(frozen[name])
        for missing in sorted(set(then) - set(now)):
            findings.append(Finding(
                "PROTO001", path, line,
                "field %r removed from wire message %s without a %s bump"
                % (missing, name, VERSION_CONSTANT), hint=hint, context=name))
        for added in sorted(set(now) - set(then)):
            findings.append(Finding(
                "PROTO001", path, line,
                "field %r added to wire message %s without a %s bump"
                % (added, name, VERSION_CONSTANT), hint=hint, context=name))
        for common in sorted(set(now) & set(then)):
            if now[common] != then[common]:
                findings.append(Finding(
                    "PROTO001", path, line,
                    "field %r of wire message %s changed (%s -> %s) without "
                    "a %s bump"
                    % (common, name, _describe(then[common]),
                       _describe(now[common]), VERSION_CONSTANT),
                    hint=hint, context=name))
    return findings


def _describe(entry: dict) -> str:
    text = entry.get("type", "?")
    if entry.get("default") is not None:
        text += " = %s" % entry["default"]
    return text


def check(modules: List[SourceModule], lock_path: str) -> List[Finding]:
    """The full PROTO family: picklability plus lock verification."""
    lock_data, locations = extract_protocol(modules)
    findings = _check_picklable(modules)
    if not lock_data["messages"] and lock_data["protocol_version"] is None:
        return findings  # tree has no wire modules at all (fixture trees)
    findings.extend(verify_lock(lock_data, locations, load_lock(lock_path),
                                lock_path))
    return findings
