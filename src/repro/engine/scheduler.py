"""Cooperative thread/process scheduling inside one execution state.

Section 4.2: "Cloud9 implements a cooperative scheduler: an enabled thread
runs uninterrupted (atomically), until either (a) the thread goes to sleep;
(b) the thread is explicitly preempted ...; or (c) the thread is terminated."
Scheduling decisions can either be deterministic (a policy picks the next
thread) or fork the execution state once per runnable thread, which is how
the testing platform explores thread interleavings (§5.1 "Symbolic
Scheduler").

If no thread can be scheduled when the current thread goes to sleep, a hang
(deadlock) is detected and the state is terminated with a bug report.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.errors import BugKind, BugReport
from repro.engine.state import ExecutionState, Thread, ThreadStatus

# Scheduling policies selectable through cloud9_set_scheduler (Table 2).
POLICY_ROUND_ROBIN = "round_robin"
POLICY_FORK_ALL = "fork_all"                  # exhaustive interleaving exploration
POLICY_CONTEXT_BOUNDED = "context_bounded"    # iterative context bounding variant


class ScheduleDecision:
    """The outcome of a scheduling point.

    ``choices`` lists the (pid, tid) pairs that may run next.  With a
    deterministic policy it has exactly one element; with schedule forking it
    has one element per runnable thread and the interpreter forks the state
    accordingly.  ``deadlock`` is set when nothing can run but live threads
    remain asleep.
    """

    __slots__ = ("choices", "deadlock", "all_exited")

    def __init__(self, choices: List[Tuple[int, int]], deadlock: bool = False,
                 all_exited: bool = False):
        self.choices = choices
        self.deadlock = deadlock
        self.all_exited = all_exited


class CooperativeScheduler:
    """Chooses the next thread to run within a state."""

    def __init__(self, policy: str = POLICY_ROUND_ROBIN, fork_schedules: bool = False,
                 context_bound: int = 2):
        self.policy = policy
        self.fork_schedules = fork_schedules or policy == POLICY_FORK_ALL
        self.context_bound = context_bound

    def runnable(self, state: ExecutionState) -> List[Thread]:
        return [t for t in state.all_threads() if t.status == ThreadStatus.ENABLED]

    def decide(self, state: ExecutionState) -> ScheduleDecision:
        """Compute the set of possible next threads for a state."""
        runnable = self.runnable(state)
        if not runnable:
            live = state.live_threads()
            if live:
                return ScheduleDecision([], deadlock=True)
            return ScheduleDecision([], all_exited=True)

        policy = state.options.get("scheduler_policy", self.policy)
        fork = self.fork_schedules or state.options.get("fork_schedules", False)
        ordered = self._order(state, runnable, policy)
        if fork and len(ordered) > 1:
            bound = state.options.get("context_bound")
            if policy == POLICY_CONTEXT_BOUNDED and bound is not None:
                used = state.options.get("preemptions_used", 0)
                if used >= int(bound):
                    # Out of preemption budget: stick with the first choice.
                    return ScheduleDecision([(ordered[0].pid, ordered[0].tid)])
            return ScheduleDecision([(t.pid, t.tid) for t in ordered])
        return ScheduleDecision([(ordered[0].pid, ordered[0].tid)])

    def _order(self, state: ExecutionState, runnable: List[Thread],
               policy: str) -> List[Thread]:
        """Deterministic ordering of runnable threads for a policy."""
        by_id = sorted(runnable, key=lambda t: (t.pid, t.tid))
        if policy in (POLICY_ROUND_ROBIN, POLICY_CONTEXT_BOUNDED):
            current = state.current
            if current is not None:
                # Round robin: start from the thread after the current one.
                later = [t for t in by_id if (t.pid, t.tid) > current]
                earlier = [t for t in by_id if (t.pid, t.tid) <= current]
                return later + earlier
        return by_id

    def apply(self, state: ExecutionState, choice: Tuple[int, int]) -> None:
        """Switch the state's current thread to ``choice``."""
        previous = state.current
        state.current = choice
        if previous is not None and previous != choice:
            state.options["preemptions_used"] = (
                int(state.options.get("preemptions_used", 0)) + 1)

    def deadlock_report(self, state: ExecutionState) -> BugReport:
        sleeping = [(t.pid, t.tid) for t in state.live_threads()]
        return BugReport(
            kind=BugKind.DEADLOCK,
            message="hang detected: no runnable thread, sleeping threads: %s"
                    % (sleeping,),
            state_id=state.state_id,
        )
