"""Bug reports produced by the engine.

Cloud9 inherits KLEE's detectors (memory errors, failed assertions) and adds
two hang detectors (§7.3.6): a deadlock check (all symbolic threads asleep)
and a per-path instruction threshold for infinite loops / livelocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class BugKind(enum.Enum):
    ASSERTION_FAILURE = "assertion_failure"
    MEMORY_ERROR = "memory_error"
    DIVISION_BY_ZERO = "division_by_zero"
    DEADLOCK = "deadlock"
    INFINITE_LOOP = "infinite_loop"
    ABORT = "abort"
    INVALID_FREE = "invalid_free"
    STACK_OVERFLOW = "stack_overflow"


@dataclass
class BugReport:
    """A bug found along one execution path."""

    kind: BugKind
    message: str
    state_id: int
    line: Optional[int] = None
    function: Optional[str] = None
    test_case: Optional[object] = None  # repro.engine.test_case.TestCase

    def summary(self) -> str:
        location = ""
        if self.function is not None:
            location = " in %s" % self.function
            if self.line is not None:
                location += " (line %d)" % self.line
        return "[%s]%s: %s" % (self.kind.value, location, self.message)

    def __str__(self) -> str:
        return self.summary()
