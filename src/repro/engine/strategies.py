"""Search strategies: which candidate node to explore next.

Section 7 of the paper: "the underlying KLEE engine used the best searchers
from [Cadar 2008], namely an interleaving of random-path and
coverage-optimized strategies".  This module provides those two plus the
classic DFS/BFS/random-state baselines, and an interleaving combinator.

A strategy operates on worker-local tree nodes; the cluster layer coordinates
strategies across workers through the global coverage overlay (§3.3), which
is fed to :class:`CoverageOptimizedStrategy` via :meth:`merge_global_coverage`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Sequence, Set

from repro.engine.tree import ExecutionTree, TreeNode


class SearchStrategy:
    """Base class for candidate-selection strategies."""

    name = "base"

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        raise NotImplementedError

    def notify_covered(self, lines: Iterable[int]) -> None:
        """Inform the strategy about newly covered lines (local exploration)."""

    def merge_global_coverage(self, lines: Iterable[int]) -> None:
        """Inform the strategy about lines covered anywhere in the cluster."""


class DfsStrategy(SearchStrategy):
    """Depth-first: always pick the deepest (most recently created) node."""

    name = "dfs"

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        return max(candidates, key=lambda n: n.node_id)


class BfsStrategy(SearchStrategy):
    """Breadth-first: always pick the oldest node."""

    name = "bfs"

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        return min(candidates, key=lambda n: n.node_id)


class RandomStateStrategy(SearchStrategy):
    """Uniformly random choice among candidate nodes."""

    name = "random_state"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        ordered = sorted(candidates, key=lambda n: n.node_id)
        return ordered[self._rng.randrange(len(ordered))]


class RandomPathStrategy(SearchStrategy):
    """KLEE's random-path searcher.

    Walk the execution tree from the root, choosing a random child at every
    interior node among children that still contain candidate nodes, until a
    candidate is reached.  This biases selection toward shallow states and is
    immune to the "swarm of states in one loop" pathology of random-state.
    """

    name = "random_path"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        candidate_ids = {n.node_id for n in candidates}
        node = tree.root
        guard = 0
        while True:
            guard += 1
            if guard > 100000:
                # Fall back to uniform choice if the tree is malformed.
                ordered = sorted(candidates, key=lambda n: n.node_id)
                return ordered[self._rng.randrange(len(ordered))]
            if node.node_id in candidate_ids:
                viable_children = [c for c in node.children.values()
                                   if c.candidate_count > 0]
                if not viable_children:
                    return node
                # The node is itself a candidate *and* has candidate
                # descendants (can happen transiently); prefer descending.
            children = [c for k, c in sorted(node.children.items())
                        if c.candidate_count > 0]
            if not children:
                if node.node_id in candidate_ids:
                    return node
                ordered = sorted(candidates, key=lambda n: n.node_id)
                return ordered[self._rng.randrange(len(ordered))]
            node = children[self._rng.randrange(len(children))]


class CoverageOptimizedStrategy(SearchStrategy):
    """Weight states by their estimated ability to cover new code.

    The paper's coverage-optimized searcher weighs states "according to an
    estimated distance to an uncovered line of code" and samples by weight.
    Our estimate for a candidate node is based on the current line of its
    state: a state sitting on an uncovered line gets the highest weight, then
    states in functions that still contain uncovered lines, then the rest.
    The covered-line set is the union of locally covered lines and the global
    coverage vector received from the load balancer.
    """

    name = "coverage_optimized"

    def __init__(self, seed: int = 0, program=None):
        self._rng = random.Random(seed)
        self._covered: Set[int] = set()
        self._program = program
        self._function_lines: Dict[str, Set[int]] = {}
        if program is not None:
            for name, fn in program.functions.items():
                self._function_lines[name] = {i.line for i in fn.instructions}

    def notify_covered(self, lines: Iterable[int]) -> None:
        self._covered.update(lines)

    def merge_global_coverage(self, lines: Iterable[int]) -> None:
        self._covered.update(lines)

    def _weight(self, node: TreeNode) -> float:
        state = node.state
        if state is None or not state.is_running or state.current is None:
            return 1.0
        if not state.current_thread.stack:
            # The current thread just terminated; the state is waiting for a
            # scheduling decision and carries no useful position information.
            return 1.0
        frame = state.current_thread.top
        function = state.program.function(frame.function)
        if frame.pc < len(function.instructions):
            line = function.instructions[frame.pc].line
            if line not in self._covered:
                return 16.0
        fn_lines = self._function_lines.get(frame.function)
        if fn_lines is None:
            fn_lines = {i.line for i in function.instructions}
            self._function_lines[frame.function] = fn_lines
        uncovered_here = len(fn_lines - self._covered)
        if uncovered_here:
            return 4.0 + min(uncovered_here, 8)
        return 1.0

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        ordered = sorted(candidates, key=lambda n: n.node_id)
        weights = [self._weight(n) for n in ordered]
        total = sum(weights)
        pick = self._rng.uniform(0.0, total)
        cumulative = 0.0
        for node, weight in zip(ordered, weights):
            cumulative += weight
            if pick <= cumulative:
                return node
        return ordered[-1]


class InterleavedStrategy(SearchStrategy):
    """Alternate between several strategies (KLEE's round-robin interleaving)."""

    name = "interleaved"

    def __init__(self, strategies: Sequence[SearchStrategy]):
        if not strategies:
            raise ValueError("InterleavedStrategy needs at least one strategy")
        self._strategies = list(strategies)
        self._next = 0

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        strategy = self._strategies[self._next % len(self._strategies)]
        self._next += 1
        return strategy.select(tree, candidates)

    def notify_covered(self, lines: Iterable[int]) -> None:
        lines = list(lines)
        for strategy in self._strategies:
            strategy.notify_covered(lines)

    def merge_global_coverage(self, lines: Iterable[int]) -> None:
        lines = list(lines)
        for strategy in self._strategies:
            strategy.merge_global_coverage(lines)


class FewestFaultsFirstStrategy(SearchStrategy):
    """Prefer states with fewer injected faults along their path (§7.3.3).

    Used in the memcached fault-injection experiment: first explore paths
    with one injected fault, then pairs of faults, and so on, which yields a
    uniform injection of faults over the original test-suite path.
    """

    name = "fewest_faults_first"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(self, tree: ExecutionTree, candidates: Sequence[TreeNode]) -> TreeNode:
        def fault_count(node: TreeNode) -> int:
            state = node.state
            if state is None:
                return 0
            return int(state.options.get("faults_injected", 0))

        ordered = sorted(candidates, key=lambda n: (fault_count(n), n.node_id))
        return ordered[0]


def make_strategy(name: str, seed: int = 0, program=None) -> SearchStrategy:
    """Factory used by configuration code and the cluster layer."""
    if name == "dfs":
        return DfsStrategy()
    if name == "bfs":
        return BfsStrategy()
    if name == "random_state":
        return RandomStateStrategy(seed)
    if name == "random_path":
        return RandomPathStrategy(seed)
    if name == "coverage_optimized":
        return CoverageOptimizedStrategy(seed, program=program)
    if name == "fewest_faults_first":
        return FewestFaultsFirstStrategy(seed)
    if name in ("interleaved", "default", "klee"):
        return InterleavedStrategy([
            RandomPathStrategy(seed),
            CoverageOptimizedStrategy(seed + 1, program=program),
        ])
    raise ValueError("unknown strategy %r" % name)
