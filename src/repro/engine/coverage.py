"""Line-coverage bit vectors.

Coverage in Cloud9 is represented as a bit vector with one bit per line of
code (§3.3).  Workers OR their local vector into the global one held by the
load balancer, which sends the merged vector back.  The same representation
is used by the coverage-optimized search strategy and by the evaluation
harness (Table 5, Figures 8 and 11).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set


class CoverageBitVector:
    """A fixed-size bit vector over program line numbers."""

    __slots__ = ("size", "_bits")

    def __init__(self, size: int, bits: int = 0):
        if size < 0:
            raise ValueError("coverage vector size must be non-negative")
        self.size = size
        self._bits = bits & ((1 << size) - 1) if size else 0

    @classmethod
    def from_lines(cls, size: int, lines: Iterable[int]) -> "CoverageBitVector":
        vector = cls(size)
        for line in lines:
            vector.set(line)
        return vector

    def set(self, line: int) -> None:
        if 0 <= line < self.size:
            self._bits |= 1 << line

    def get(self, line: int) -> bool:
        if not 0 <= line < self.size:
            return False
        return bool(self._bits >> line & 1)

    def or_with(self, other: "CoverageBitVector") -> "CoverageBitVector":
        """In-place OR (the LB-side merge); returns self for chaining."""
        if other.size != self.size:
            raise ValueError("coverage vector size mismatch: %d vs %d"
                             % (self.size, other.size))
        self._bits |= other._bits
        return self

    def union(self, other: "CoverageBitVector") -> "CoverageBitVector":
        return CoverageBitVector(self.size, self._bits | other._bits)

    def difference(self, other: "CoverageBitVector") -> "CoverageBitVector":
        return CoverageBitVector(self.size, self._bits & ~other._bits)

    def count(self) -> int:
        return bin(self._bits).count("1")

    def percent(self) -> float:
        """Covered fraction of the program, in percent."""
        return 100.0 * self.count() / self.size if self.size else 0.0

    def covered_lines(self) -> Set[int]:
        return {i for i in range(self.size) if self._bits >> i & 1}

    def copy(self) -> "CoverageBitVector":
        return CoverageBitVector(self.size, self._bits)

    def as_int(self) -> int:
        """The raw bits, e.g. for piggybacking on a status-update message."""
        return self._bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageBitVector):
            return NotImplemented
        return self.size == other.size and self._bits == other._bits

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[bool]:
        for i in range(self.size):
            yield bool(self._bits >> i & 1)

    def __repr__(self) -> str:
        return "CoverageBitVector(%d/%d lines)" % (self.count(), self.size)
