"""Concrete test cases generated from symbolic paths.

When a path terminates (normally or with a bug), solving its path constraint
yields concrete values for every symbolic input; together with the recorded
thread schedule and fault-injection decisions these "take the program to the
bug" (§3.2) and constitute a regular, replayable test case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.state import ExecutionState
from repro.solver.model import Model
from repro.solver.solver import Solver


@dataclass
class TestCase:
    """Concrete inputs reproducing one explored path."""

    # Not a pytest test class, despite the name (silences collection warning).
    __test__ = False

    state_id: int
    inputs: Dict[str, bytes]
    path_length: int
    fork_trace: List[int] = field(default_factory=list)
    exit_code: Optional[int] = None
    is_error: bool = False
    error_summary: Optional[str] = None

    def input_bytes(self, name: str) -> bytes:
        return self.inputs.get(name, b"")

    def __repr__(self) -> str:
        kind = "error" if self.is_error else "normal"
        return "TestCase(state=%d, %s, inputs=%s)" % (
            self.state_id, kind,
            {k: v.hex() for k, v in self.inputs.items()})


def generate_test_case(state: ExecutionState, solver: Solver,
                       error_summary: Optional[str] = None) -> Optional[TestCase]:
    """Solve a state's path constraint and concretize its symbolic inputs.

    Returns None when the path constraint is (or has become) unsatisfiable,
    which only happens if the solver previously returned "unknown" for a
    branch that was in fact infeasible.
    """
    model = solver.get_model(state.path_constraints)
    if model is None:
        if state.path_constraints:
            return None
        model = Model({})
    inputs = {
        name: model.as_bytes(symbols)
        for name, symbols in state.symbolic_inputs.items()
    }
    exit_code = state.exit_code if isinstance(state.exit_code, int) else None
    return TestCase(
        state_id=state.state_id,
        inputs=inputs,
        path_length=state.instructions_executed,
        fork_trace=list(state.fork_trace),
        exit_code=exit_code,
        is_error=error_summary is not None,
        error_summary=error_summary,
    )
