"""Symbolic memory: objects, address spaces, copy-on-write domains.

Section 4.2 of the paper describes the two engine extensions Cloud9 adds to
KLEE's memory model and that this module reproduces:

* multiple *address spaces* within one execution state (one per process), and
* *CoW domains*: groups of address spaces that share selected objects, so a
  write to a shared object in one process becomes visible to the others
  (used by the POSIX model for inter-process communication).

Section 6 ("Broken Replays") motivates the *per-state deterministic
allocator*: addresses must depend only on the history of allocations within
the state, never on host allocator behaviour, so that replaying a job path on
another worker reconstructs identical addresses.
"""

from __future__ import annotations

import itertools
from dataclasses import field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.solver.expr import Expr

# A memory cell holds either a concrete byte (int 0..255) or a symbolic
# 8-bit expression.
Cell = Union[int, Expr]


class MemoryError_(Exception):
    """Raised on out-of-bounds or use-after-free accesses.

    The interpreter converts it into a :class:`repro.engine.errors.BugReport`
    (the paper: "Cloud9 inherits KLEE's capabilities, being able to recognize
    memory errors").
    """

    def __init__(self, message: str, address: int = 0, offset: int = 0):
        super().__init__(message)
        self.address = address
        self.offset = offset


class MemoryObject:
    """A contiguous allocation of bytes.

    Objects are copy-on-write: cloning an address space shares objects until
    one side writes, at which point the writer gets a private copy.
    """

    __slots__ = ("address", "size", "cells", "name", "writable", "shared")

    def __init__(self, address: int, size: int, name: str = "",
                 fill: Cell = 0, writable: bool = True, shared: bool = False):
        if size < 0:
            raise ValueError("memory object size must be non-negative")
        self.address = address
        self.size = size
        self.cells: List[Cell] = [fill] * size
        self.name = name
        self.writable = writable
        self.shared = shared

    def copy(self) -> "MemoryObject":
        clone = MemoryObject.__new__(MemoryObject)
        clone.address = self.address
        clone.size = self.size
        clone.cells = list(self.cells)
        clone.name = self.name
        clone.writable = self.writable
        clone.shared = self.shared
        return clone

    def read_byte(self, offset: int) -> Cell:
        if not 0 <= offset < self.size:
            raise MemoryError_(
                "out-of-bounds read at %s+%d (size %d)" % (self.name or hex(self.address), offset, self.size),
                address=self.address, offset=offset)
        return self.cells[offset]

    def write_byte(self, offset: int, value: Cell) -> None:
        if not self.writable:
            raise MemoryError_(
                "write to read-only object %s" % (self.name or hex(self.address)),
                address=self.address, offset=offset)
        if not 0 <= offset < self.size:
            raise MemoryError_(
                "out-of-bounds write at %s+%d (size %d)" % (self.name or hex(self.address), offset, self.size),
                address=self.address, offset=offset)
        self.cells[offset] = value

    def read_bytes(self, offset: int, length: int) -> List[Cell]:
        return [self.read_byte(offset + i) for i in range(length)]

    def write_bytes(self, offset: int, values: Iterable[Cell]) -> None:
        for i, v in enumerate(values):
            self.write_byte(offset + i, v)

    def concrete_bytes(self) -> Optional[bytes]:
        """The object's contents as bytes, or None if any cell is symbolic."""
        out = bytearray()
        for cell in self.cells:
            if isinstance(cell, Expr):
                return None
            out.append(cell & 0xFF)
        return bytes(out)

    def __repr__(self) -> str:
        return "MemoryObject(%s @0x%x, %d bytes)" % (self.name, self.address, self.size)


# Address-space layout constants for the deterministic allocator.
_DATA_SEGMENT_BASE = 0x1000
_HEAP_BASE = 0x100000
_SHARED_BASE = 0x4000000
_ALIGNMENT = 16


def _align(value: int) -> int:
    return (value + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


class DeterministicAllocator:
    """Per-state bump allocator with fully deterministic addresses."""

    __slots__ = ("next_address",)

    def __init__(self, base: int = _HEAP_BASE):
        self.next_address = base

    def allocate(self, size: int) -> int:
        address = self.next_address
        self.next_address = _align(address + max(size, 1))
        return address

    def copy(self) -> "DeterministicAllocator":
        clone = DeterministicAllocator.__new__(DeterministicAllocator)
        clone.next_address = self.next_address
        return clone


class AddressSpace:
    """The private memory of one process."""

    __slots__ = ("objects", "_cow_shared")

    def __init__(self):
        self.objects: Dict[int, MemoryObject] = {}
        # Object addresses whose MemoryObject instance is currently shared
        # with a sibling address space / forked state and must be copied
        # before the first write.
        self._cow_shared: set = set()

    # -- cloning ------------------------------------------------------------

    def clone(self) -> "AddressSpace":
        """A copy-on-write clone (used on state fork and process fork)."""
        clone = AddressSpace.__new__(AddressSpace)
        clone.objects = dict(self.objects)
        shared = set(self.objects)
        clone._cow_shared = shared
        # The original must also treat all its objects as shared from now on.
        self._cow_shared = set(shared)
        return clone

    def _writable_object(self, address: int) -> MemoryObject:
        obj = self.objects.get(address)
        if obj is None:
            raise MemoryError_("access to unmapped address 0x%x" % address,
                               address=address)
        if address in self._cow_shared:
            obj = obj.copy()
            self.objects[address] = obj
            self._cow_shared.discard(address)
        return obj

    # -- object management ----------------------------------------------------

    def bind(self, obj: MemoryObject) -> None:
        self.objects[obj.address] = obj

    def unbind(self, address: int) -> None:
        if address not in self.objects:
            raise MemoryError_("free of unmapped address 0x%x" % address,
                               address=address)
        del self.objects[address]
        self._cow_shared.discard(address)

    def resolve(self, address: int) -> Tuple[MemoryObject, int]:
        """Find the object containing ``address``; returns (object, offset)."""
        obj = self.objects.get(address)
        if obj is not None:
            return obj, 0
        # Interior pointer: linear scan (objects are few per state).
        for base, candidate in self.objects.items():
            if base <= address < base + candidate.size:
                return candidate, address - base
        raise MemoryError_("access to unmapped address 0x%x" % address,
                           address=address)

    # -- accessors -------------------------------------------------------------

    def read_byte(self, address: int, offset: int = 0) -> Cell:
        obj, base_off = self.resolve(address)
        return obj.read_byte(base_off + offset)

    def write_byte(self, address: int, offset: int, value: Cell) -> None:
        obj, base_off = self.resolve(address)
        writable = self._writable_object(obj.address)
        writable.write_byte(base_off + offset, value)

    def __contains__(self, address: int) -> bool:
        try:
            self.resolve(address)
            return True
        except MemoryError_:
            return False

    def __len__(self) -> int:
        return len(self.objects)


class CowDomain:
    """A copy-on-write domain: objects shared between processes of one state.

    ``cloud9_make_shared`` moves an object into the domain; subsequent writes
    by any process are visible to every process attached to the domain
    (paper §4.2, "Address Spaces").  Across state forks the whole domain is
    cloned, so states never observe each other's writes.
    """

    __slots__ = ("objects",)

    def __init__(self):
        self.objects: Dict[int, MemoryObject] = {}

    def clone(self) -> "CowDomain":
        clone = CowDomain.__new__(CowDomain)
        clone.objects = {addr: obj.copy() for addr, obj in self.objects.items()}
        return clone

    def share(self, obj: MemoryObject) -> None:
        obj.shared = True
        self.objects[obj.address] = obj

    def unshare(self, address: int) -> Optional[MemoryObject]:
        """Remove an object from the domain (e.g. ``munmap`` of a shared map)."""
        return self.objects.pop(address, None)

    def resolve(self, address: int) -> Optional[Tuple[MemoryObject, int]]:
        obj = self.objects.get(address)
        if obj is not None:
            return obj, 0
        for base, candidate in self.objects.items():
            if base <= address < base + candidate.size:
                return candidate, address - base
        return None

    def __contains__(self, address: int) -> bool:
        return self.resolve(address) is not None

    def __len__(self) -> int:
        return len(self.objects)
