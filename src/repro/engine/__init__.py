"""Single-node symbolic execution engine (the KLEE analogue of the paper).

The engine interprets compiled programs (:mod:`repro.lang`) over states that
carry symbolic memory, multiple processes/threads and a path constraint.  It
provides:

* forking at symbolic branches with feasibility checks (:mod:`repro.engine.interpreter`),
* an address-space model with copy-on-write domains and a per-state
  deterministic allocator (:mod:`repro.engine.memory`, paper §4.2 and §6),
* a cooperative thread scheduler with optional schedule forking and hang
  detection (:mod:`repro.engine.scheduler`),
* the symbolic system-call primitives of Table 1 (:mod:`repro.engine.syscalls`),
* the execution tree with node pins and layers (:mod:`repro.engine.tree`, §6),
* search strategies including random-path and coverage-optimized
  (:mod:`repro.engine.strategies`, §7),
* the uniform exploration limits shared by every backend
  (:mod:`repro.engine.limits`, re-exported as :mod:`repro.api.limits`),
* a single-node exploration driver (:mod:`repro.engine.executor`).
"""

from repro.engine.config import EngineConfig
from repro.engine.errors import BugKind, BugReport
from repro.engine.executor import ExplorationResult, SymbolicExecutor, StepResult
from repro.engine.limits import ExplorationLimits
from repro.engine.state import ExecutionState, StateStatus
from repro.engine.strategies import (
    BfsStrategy,
    CoverageOptimizedStrategy,
    DfsStrategy,
    InterleavedStrategy,
    RandomPathStrategy,
    RandomStateStrategy,
    make_strategy,
)
from repro.engine.coverage import CoverageBitVector
from repro.engine.test_case import TestCase
from repro.engine.tree import NodeLife, NodeStatus, TreeNode

__all__ = [
    "EngineConfig",
    "BugKind",
    "BugReport",
    "ExplorationResult",
    "ExplorationLimits",
    "SymbolicExecutor",
    "StepResult",
    "ExecutionState",
    "StateStatus",
    "BfsStrategy",
    "CoverageOptimizedStrategy",
    "DfsStrategy",
    "InterleavedStrategy",
    "RandomPathStrategy",
    "RandomStateStrategy",
    "make_strategy",
    "CoverageBitVector",
    "TestCase",
    "NodeLife",
    "NodeStatus",
    "TreeNode",
]
