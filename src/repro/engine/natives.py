"""Native-function machinery: how modeled/POSIX code plugs into the engine.

Program code calls functions by name.  Names defined by the program execute
symbolically; every other name is looked up in the engine's *native registry*
-- the analogue of the boundary between the program and the symbolic C
library in Fig. 4 of the paper.

A native handler is a Python callable ``handler(ctx)`` receiving a
:class:`NativeContext`.  It can:

* return an ``int``/``Expr`` -- the call's return value;
* return ``None`` -- treated as returning 0;
* return a :class:`NativeFork` -- the engine forks the state, one successor
  per feasible branch (used for fault injection and symbolic read sizes);
* raise :class:`Block` -- the calling thread goes to sleep on a wait list and
  the call is re-executed when the thread is woken;
* raise :class:`NativeBug` -- the path terminates with a bug report;
* raise :class:`ExitProcess` / :class:`ExitState` -- terminate the current
  process or the whole state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.engine.errors import BugKind
from repro.engine.memory import MemoryObject
from repro.engine.state import ExecutionState, Process, Thread
from repro.engine.values import Value, is_concrete, to_expr
from repro.solver.expr import Expr
from repro.solver.solver import Solver


class Block(Exception):
    """Thread must sleep; the native call re-executes when the thread wakes.

    With ``wait_list=None`` the thread sleeps without being queued anywhere
    and must be woken explicitly (used by ``pthread_join``, whose wake-up is
    driven by the joiners list of the target thread).
    """

    def __init__(self, wait_list: Optional[int]):
        super().__init__("blocked on wait list %r" % (wait_list,))
        self.wait_list = wait_list


class NativeBug(Exception):
    """The native function detected a bug along this path."""

    def __init__(self, kind: BugKind, message: str):
        super().__init__(message)
        self.kind = kind
        self.message = message


class ExitProcess(Exception):
    """Terminate the calling process (e.g. ``exit()``)."""

    def __init__(self, code: Value = 0):
        super().__init__("process exit")
        self.code = code


class ExitState(Exception):
    """Terminate the whole execution state (all processes)."""

    def __init__(self, code: Value = 0):
        super().__init__("state exit")
        self.code = code


@dataclass
class ForkBranch:
    """One alternative outcome of a native call."""

    condition: Optional[Expr]          # None means "no extra constraint"
    return_value: Value = 0
    side_effect: Optional[Callable[[ExecutionState], None]] = None
    label: str = ""


@dataclass
class NativeFork:
    """A set of alternative outcomes; the engine keeps the feasible ones."""

    branches: List[ForkBranch]

    def __post_init__(self) -> None:
        if not self.branches:
            raise ValueError("NativeFork needs at least one branch")


NativeHandler = Callable[["NativeContext"], Union[None, Value, NativeFork]]


class NativeRegistry:
    """Name -> handler table, with late registration by environment models."""

    def __init__(self):
        self._handlers: Dict[str, NativeHandler] = {}

    def register(self, name: str, handler: NativeHandler) -> None:
        self._handlers[name] = handler

    def register_all(self, handlers: Dict[str, NativeHandler]) -> None:
        for name, handler in handlers.items():
            self.register(name, handler)

    def lookup(self, name: str) -> Optional[NativeHandler]:
        return self._handlers.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> List[str]:
        return sorted(self._handlers)


class NativeContext:
    """Everything a native handler may touch."""

    def __init__(self, executor, state: ExecutionState, args: Sequence[Value],
                 instruction) -> None:
        self.executor = executor
        self.state = state
        self.args = list(args)
        self.instruction = instruction

    # -- convenience accessors ------------------------------------------------

    @property
    def solver(self) -> Solver:
        return self.executor.solver

    @property
    def process(self) -> Process:
        return self.state.current_process

    @property
    def thread(self) -> Thread:
        return self.state.current_thread

    def arg(self, index: int, default: Value = 0) -> Value:
        if index < len(self.args):
            return self.args[index]
        return default

    def concrete_arg(self, index: int, default: int = 0) -> int:
        """Argument ``index`` as a concrete int, concretizing if symbolic."""
        return self.concretize(self.arg(index, default))

    # -- concretization ----------------------------------------------------------

    def concretize(self, value: Value, bind: bool = True) -> int:
        """Pick a concrete value consistent with the path constraint.

        When ``bind`` is true the binding is added to the path constraint so
        later execution cannot contradict the choice (KLEE-style
        concretization).
        """
        if is_concrete(value):
            return value
        from repro.solver import expr as E  # local import to avoid cycles at import time

        model = self.solver.get_model(self.state.path_constraints)
        concrete = int(model.evaluate(value)) if model is not None else 0
        if bind:
            width = value.width
            self.state.add_constraint(E.eq(value, E.bv_const(concrete, width)))
        return concrete

    # -- memory helpers ------------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> List[Value]:
        return self.state.mem_read_bytes(address, length)

    def write_bytes(self, address: int, values: Sequence[Value]) -> None:
        self.state.mem_write_bytes(address, values)

    def read_c_string(self, address: int, max_length: int = 4096) -> bytes:
        """Read a NUL-terminated concrete string from memory.

        Symbolic bytes encountered before the terminator are concretized.
        """
        out = bytearray()
        for offset in range(max_length):
            cell = self.state.mem_read(address, offset)
            value = cell if is_concrete(cell) else self.concretize(cell)
            if value == 0:
                break
            out.append(value & 0xFF)
        return bytes(out)

    def allocate(self, size: int, name: str = "") -> MemoryObject:
        return self.state.allocate(size, name=name)

    # -- errors ---------------------------------------------------------------------

    def bug(self, kind: BugKind, message: str) -> None:
        raise NativeBug(kind, message)
