"""Uniform exploration limits shared by every execution backend.

Historically each entry point grew its own subset of limit kwargs with
subtly different names (``coverage_target`` vs ``target_coverage_percent``,
``max_steps`` vs ``max_rounds``), so switching a test between the single
engine and a cluster meant re-plumbing every knob.  :class:`ExplorationLimits`
is the single bag of budgets and goals accepted by
:meth:`repro.engine.executor.SymbolicExecutor.run`,
:meth:`repro.cluster.coordinator.Cloud9Cluster.run`,
:meth:`repro.cluster.static_partition.StaticPartitionCluster.run` and the
:mod:`repro.api.runner` backends.

A backend applies every limit that is meaningful for it and ignores the
rest (``max_steps`` only bounds single-engine scheduling steps; ``max_rounds``
only bounds cluster virtual-time rounds).  ``None`` always means "unlimited".

The module lives under :mod:`repro.engine` (dependency-free, importable by
every layer) and is re-exported as :mod:`repro.api.limits`, the public name.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

__all__ = ["ExplorationLimits", "UNLIMITED", "effective_limits"]


@dataclass(frozen=True)
class ExplorationLimits:
    """Budgets and goals of one exploration run.

    Budgets (stop when exceeded):

    * ``max_steps`` -- scheduling/instruction steps of the single engine.
    * ``max_rounds`` -- virtual-time rounds of a cluster run.
    * ``max_instructions`` -- total instructions executed (useful + replay
      on clusters).
    * ``max_wall_time`` -- wall-clock seconds.

    Goals (stop when reached, marking the run successful):

    * ``max_paths`` -- complete this many paths.
    * ``coverage_target`` -- reach this line-coverage percentage.
    * ``stop_on_first_bug`` -- stop as soon as any bug is reported.

    Run settings (neither budget nor goal):

    * ``trace_path`` -- write a structured JSONL event trace of the run to
      this file (:mod:`repro.obs.trace`); ``None`` disables tracing
      entirely (the no-op tracer, zero overhead).
    """

    max_steps: Optional[int] = None
    max_paths: Optional[int] = None
    max_instructions: Optional[int] = None
    max_rounds: Optional[int] = None
    max_wall_time: Optional[float] = None
    coverage_target: Optional[float] = None
    stop_on_first_bug: bool = False
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("max_steps", "max_paths", "max_instructions", "max_rounds"):
            value = getattr(self, name)
            if value is not None and int(value) < 0:
                raise ValueError("%s must be non-negative, got %r" % (name, value))
        if self.max_wall_time is not None and self.max_wall_time < 0:
            raise ValueError("max_wall_time must be non-negative")
        if self.coverage_target is not None and not (0.0 <= self.coverage_target <= 100.0):
            raise ValueError("coverage_target must be a percentage in [0, 100]")

    # -- construction helpers ---------------------------------------------------------

    @classmethod
    def field_names(cls) -> tuple:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def pop_from(cls, options: Dict[str, object],
                 base: Optional["ExplorationLimits"] = None) -> "ExplorationLimits":
        """Extract limit fields from a kwargs dict, merging over ``base``.

        Mutates ``options`` (pops the recognized keys) so the caller can pass
        the remainder to the backend as backend-specific options.
        """
        picked = {name: options.pop(name)
                  for name in cls.field_names() if name in options}
        if base is None:
            return cls(**picked)
        return base.merged(**picked)

    def merged(self, **overrides: object) -> "ExplorationLimits":
        """A copy with the given fields replaced."""
        unknown = set(overrides) - set(self.field_names())
        if unknown:
            raise TypeError("unknown limit field(s): %s" % ", ".join(sorted(unknown)))
        return replace(self, **overrides)

    # -- introspection ----------------------------------------------------------------

    @property
    def unbounded(self) -> bool:
        """True when no budget or goal is set (pure exhaustive exploration).

        ``trace_path`` is a run setting, not a budget: a traced run with no
        limits is still unbounded."""
        return all(getattr(self, f.name) in (None, False) for f in fields(self)
                   if f.name != "trace_path")

    def satisfied_by(self, paths_completed: int, coverage_percent: float,
                     bug_count: int) -> bool:
        """Whether any *goal* (not budget) is met by the given outcome."""
        if self.max_paths is not None and paths_completed >= self.max_paths:
            return True
        if self.coverage_target is not None and coverage_percent >= self.coverage_target:
            return True
        if self.stop_on_first_bug and bug_count > 0:
            return True
        return False

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __repr__(self) -> str:
        set_fields = ", ".join(
            "%s=%r" % (f.name, getattr(self, f.name))
            for f in fields(self) if getattr(self, f.name) not in (None, False))
        return "ExplorationLimits(%s)" % (set_fields or "unbounded")


#: Shared "no limits at all" instance (the dataclass is frozen, so safe).
UNLIMITED = ExplorationLimits()


def effective_limits(limits: Optional[ExplorationLimits],
                     **explicit: object) -> ExplorationLimits:
    """Merge explicit per-call kwargs over a limits object.

    ``None`` (and ``False`` for ``stop_on_first_bug``) explicit values are
    treated as "not given" so they never mask a limit carried by ``limits``.
    """
    base = limits if limits is not None else UNLIMITED
    overrides = {name: value for name, value in explicit.items()
                 if value is not None and value is not False}
    return base.merged(**overrides) if overrides else base
