"""The symbolic execution tree and its node life-cycle.

Figure 2 and Figure 3 of the paper define the worker-side view of the global
execution tree.  Every node carries two attributes:

* ``status`` in {materialized, virtual}: a *materialized* node holds the
  corresponding program state; a *virtual* node is an "empty shell" received
  in a job and not yet replayed.
* ``life`` in {candidate, fence, dead}: *candidate* nodes form the
  exploration frontier, *fence* nodes demarcate work delegated to other
  workers, and *dead* nodes are fully explored interior nodes whose program
  state can be discarded.

The module also reproduces the two custom data structures of §6:

* :class:`NodePin` -- a "rubber band" smart pointer that keeps the path from
  a node up to the root alive; unpinned interior nodes are garbage collected
  in bulk rather than by chained destructors.
* *tree layers* -- each node may be tagged as belonging to any subset of
  layers (symbolic states, imported jobs, ...), and traversals take the layer
  of interest as a filter, so switching layers costs nothing.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set


class NodeStatus(enum.Enum):
    MATERIALIZED = "materialized"
    VIRTUAL = "virtual"


class NodeLife(enum.Enum):
    CANDIDATE = "candidate"
    FENCE = "fence"
    DEAD = "dead"


# Standard layers (callers may define their own names as well).
LAYER_STATES = "states"
LAYER_JOBS = "jobs"
LAYER_BREAKPOINTS = "breakpoints"


_node_id_counter = itertools.count(1)


class TreeNode:
    """One node of a worker's local view of the execution tree."""

    __slots__ = ("node_id", "parent", "children", "status", "life", "state",
                 "layers", "pin_count", "fork_index", "candidate_count")

    def __init__(self, parent: Optional["TreeNode"] = None, fork_index: int = 0,
                 status: NodeStatus = NodeStatus.MATERIALIZED,
                 life: NodeLife = NodeLife.CANDIDATE):
        self.node_id = next(_node_id_counter)
        self.parent = parent
        self.children: Dict[int, TreeNode] = {}
        self.status = status
        self.life = life
        self.state = None  # ExecutionState for materialized candidate/fence nodes
        self.layers: Set[str] = set()
        self.pin_count = 0
        self.fork_index = fork_index
        # Number of candidate nodes in this subtree (self included); kept up
        # to date by _set_life so random-path selection can walk the tree
        # without scanning it.
        self.candidate_count = 1 if life == NodeLife.CANDIDATE else 0
        if parent is not None:
            parent.children[fork_index] = self
            if self.candidate_count:
                parent._propagate_candidate_delta(self.candidate_count)

    # -- structure ----------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, fork_index: int,
                  status: NodeStatus = NodeStatus.MATERIALIZED,
                  life: NodeLife = NodeLife.CANDIDATE) -> "TreeNode":
        if fork_index in self.children:
            raise ValueError("child %d already exists under node %d"
                             % (fork_index, self.node_id))
        return TreeNode(self, fork_index, status=status, life=life)

    def path_from_root(self) -> List[int]:
        """The sequence of fork indices leading from the root to this node."""
        path: List[int] = []
        node = self
        while node.parent is not None:
            path.append(node.fork_index)
            node = node.parent
        path.reverse()
        return path

    def root(self) -> "TreeNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def descend(self, path: Sequence[int]) -> Optional["TreeNode"]:
        """Follow a fork-index path downward; None if it leaves the tree."""
        node = self
        for index in path:
            child = node.children.get(index)
            if child is None:
                return None
            node = child
        return node

    # -- life-cycle (Fig. 3) ---------------------------------------------------

    def _propagate_candidate_delta(self, delta: int) -> None:
        node: Optional[TreeNode] = self
        while node is not None:
            node.candidate_count += delta
            node = node.parent

    def _set_life(self, life: NodeLife) -> None:
        was_candidate = self.life == NodeLife.CANDIDATE
        will_be_candidate = life == NodeLife.CANDIDATE
        self.life = life
        if was_candidate and not will_be_candidate:
            self._propagate_candidate_delta(-1)
        elif will_be_candidate and not was_candidate:
            self._propagate_candidate_delta(1)

    def mark_dead(self) -> None:
        """Explored: discard the program state, keep only the skeleton."""
        self._set_life(NodeLife.DEAD)
        self.state = None

    def mark_fence(self) -> None:
        """The subtree below is being explored elsewhere (job sent away)."""
        self._set_life(NodeLife.FENCE)

    def mark_candidate(self) -> None:
        self._set_life(NodeLife.CANDIDATE)

    def materialize(self, state) -> None:
        """Attach a program state (virtual -> materialized after replay)."""
        self.status = NodeStatus.MATERIALIZED
        self.state = state

    @property
    def is_candidate(self) -> bool:
        return self.life == NodeLife.CANDIDATE

    @property
    def is_fence(self) -> bool:
        return self.life == NodeLife.FENCE

    @property
    def is_dead(self) -> bool:
        return self.life == NodeLife.DEAD

    @property
    def is_materialized(self) -> bool:
        return self.status == NodeStatus.MATERIALIZED

    @property
    def is_virtual(self) -> bool:
        return self.status == NodeStatus.VIRTUAL

    # -- traversal ---------------------------------------------------------------

    def iter_subtree(self, layer: Optional[str] = None) -> Iterator["TreeNode"]:
        """Depth-first iteration over the subtree, optionally layer-filtered."""
        stack = [self]
        while stack:
            node = stack.pop()
            if layer is None or layer in node.layers:
                yield node
            stack.extend(node.children[k] for k in sorted(node.children, reverse=True))

    def leaves(self, layer: Optional[str] = None) -> List["TreeNode"]:
        return [n for n in self.iter_subtree(layer) if n.is_leaf]

    def __repr__(self) -> str:
        return "TreeNode(id=%d, %s/%s, children=%d)" % (
            self.node_id, self.status.value, self.life.value, len(self.children))


class NodePin:
    """A smart pointer that anchors the path from ``node`` to the root.

    While at least one pin references a node, the chain of ancestors up to the
    root is protected from pruning.  Releasing a pin lets
    :meth:`ExecutionTree.prune` free, in one sweep, every unpinned node that
    no longer leads to a pinned descendant -- the "rubber band" behaviour of
    §6 that avoids deep recursive destructor chains.
    """

    __slots__ = ("node", "_released")

    def __init__(self, node: TreeNode):
        self.node = node
        self._released = False
        current: Optional[TreeNode] = node
        while current is not None:
            current.pin_count += 1
            current = current.parent

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        current: Optional[TreeNode] = self.node
        while current is not None:
            current.pin_count -= 1
            current = current.parent

    def __enter__(self) -> "NodePin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ExecutionTree:
    """A worker-local (or single-engine) view of the execution tree."""

    def __init__(self):
        self.root = TreeNode()

    def new_pin(self, node: TreeNode) -> NodePin:
        return NodePin(node)

    def nodes(self, layer: Optional[str] = None) -> List[TreeNode]:
        return list(self.root.iter_subtree(layer))

    def candidates(self) -> List[TreeNode]:
        return [n for n in self.root.iter_subtree() if n.is_candidate]

    def fences(self) -> List[TreeNode]:
        return [n for n in self.root.iter_subtree() if n.is_fence]

    def node_count(self) -> int:
        return sum(1 for _ in self.root.iter_subtree())

    def prune(self) -> int:
        """Remove unpinned dead leaves (iteratively, so interior chains of
        dead nodes whose subtrees were fully pruned get removed too).

        Returns the number of nodes removed.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            for node in list(self.root.iter_subtree()):
                if (node.parent is not None and node.is_leaf and node.is_dead
                        and node.pin_count == 0):
                    del node.parent.children[node.fork_index]
                    node.parent = None
                    removed += 1
                    changed = True
        return removed

    def node_at(self, path: Sequence[int]) -> Optional[TreeNode]:
        return self.root.descend(path)

    def ensure_path(self, path: Sequence[int],
                    status: NodeStatus = NodeStatus.VIRTUAL,
                    life: NodeLife = NodeLife.CANDIDATE) -> TreeNode:
        """Create any missing nodes along ``path`` (used when importing jobs).

        Intermediate nodes created on the way are virtual and dead (they are
        interior nodes of a path that will be replayed); only the final node
        gets the requested status/life.
        """
        node = self.root
        for depth, index in enumerate(path):
            child = node.children.get(index)
            if child is None:
                is_last = depth == len(path) - 1
                child = node.add_child(
                    index,
                    status=status if is_last else NodeStatus.VIRTUAL,
                    life=life if is_last else NodeLife.DEAD,
                )
            node = child
        return node
