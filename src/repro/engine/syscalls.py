"""Symbolic system calls (Table 1) and core built-in functions.

These are the minimal engine primitives the paper found necessary to support
a rich environment model: thread context switching, address-space isolation,
memory sharing and sleep operations.  The POSIX model (:mod:`repro.posix`)
is built exclusively on top of these plus ordinary memory accesses.

Naming follows the paper: ``cloud9_thread_create``, ``cloud9_thread_sleep``,
``cloud9_process_fork`` and so on.  A small set of libc-like helpers
(``malloc``, ``free``, ``memcpy``, ``strlen``, ``exit``, ...) that target
programs need is also provided here; richer POSIX functionality (files,
sockets, synchronization) lives in :mod:`repro.posix`.
"""

from __future__ import annotations

from typing import Dict

from repro.engine.errors import BugKind
from repro.engine.memory import MemoryError_
from repro.engine.natives import (
    ExitProcess,
    ExitState,
    NativeBug,
    NativeContext,
    NativeRegistry,
)
from repro.engine.state import Frame, Thread, ThreadStatus
from repro.engine.values import byte_value, is_concrete


# -- Table 1: Cloud9 primitives ------------------------------------------------


def cloud9_make_shared(ctx: NativeContext):
    """Share an object across the CoW domain (inter-process shared memory)."""
    address = ctx.concrete_arg(0)
    ctx.state.make_shared(address)
    return 0


def cloud9_thread_create(ctx: NativeContext):
    """Create a thread running function named by arg0, with arg1 as argument."""
    fn_name_addr = ctx.concrete_arg(0)
    argument = ctx.arg(1)
    fn_name = ctx.read_c_string(fn_name_addr).decode("latin-1")
    program = ctx.state.program
    if fn_name not in program.functions:
        raise NativeBug(BugKind.ABORT,
                        "thread_create: unknown function %r" % fn_name)
    process = ctx.process
    thread = process.new_thread()
    fn = program.function(fn_name)
    locals_ = {p: 0 for p in fn.params}
    if fn.params:
        locals_[fn.params[0]] = argument
    thread.stack.append(Frame(fn_name, 0, locals_))
    return thread.tid


def cloud9_thread_terminate(ctx: NativeContext):
    """Terminate the calling thread."""
    thread = ctx.thread
    thread.status = ThreadStatus.TERMINATED
    thread.exit_value = ctx.arg(0)
    for pid, tid in thread.joiners:
        joiner = ctx.state.processes[pid].threads.get(tid)
        if joiner is not None and joiner.status == ThreadStatus.SLEEPING:
            joiner.status = ThreadStatus.ENABLED
            joiner.wait_list = None
    thread.joiners = []
    return 0


def cloud9_process_fork(ctx: NativeContext):
    """Fork the current process inside the state (POSIX fork()).

    The parent receives the child's pid as the call's return value.  The
    child process gets a single thread that is a copy of the calling thread,
    already advanced past the fork call with a return value of 0.
    """
    state = ctx.state
    parent_proc = ctx.process
    calling_thread = ctx.thread
    child_proc = state.fork_process(parent_proc)

    child_thread = Thread(tid=0, pid=child_proc.pid)
    child_thread.stack = [f.copy() for f in calling_thread.stack]
    child_proc.threads[0] = child_thread
    child_proc.next_tid = 1

    # Make the fork "return 0" in the child: complete the CALL instruction
    # in the copied frame (advance the pc and bind the destination).
    frame = child_thread.top
    frame.pc += 1
    if ctx.instruction is not None and ctx.instruction.dest is not None:
        frame.locals[ctx.instruction.dest] = 0
    return child_proc.pid


def cloud9_process_terminate(ctx: NativeContext):
    """Terminate the calling process and all of its threads."""
    raise ExitProcess(ctx.arg(0))


def cloud9_get_context(ctx: NativeContext):
    """Return the current (pid, tid) packed as pid * 65536 + tid."""
    pid, tid = ctx.state.current
    return pid * 65536 + tid


def cloud9_get_pid(ctx: NativeContext):
    return ctx.state.current[0]


def cloud9_get_tid(ctx: NativeContext):
    return ctx.state.current[1]


def cloud9_thread_preempt(ctx: NativeContext):
    """Yield: force a scheduling decision before the next instruction."""
    ctx.state.options["force_reschedule"] = True
    return 0


def cloud9_thread_sleep(ctx: NativeContext):
    """Put the calling thread to sleep on a waiting queue.

    Unlike :class:`~repro.engine.natives.Block`, the call completes before
    the thread sleeps: when woken, execution continues *after* the sleep
    call, which is the semantics the POSIX model's synchronization code
    relies on (Fig. 5).
    """
    wlist = ctx.concrete_arg(0)
    ctx.state.sleep_on(wlist, ctx.thread)
    ctx.state.options["force_reschedule"] = True
    return 0


def cloud9_thread_notify(ctx: NativeContext):
    """Wake one thread (arg1 == 0) or all threads (arg1 != 0) from a queue."""
    wlist = ctx.concrete_arg(0)
    wake_all = bool(ctx.concrete_arg(1, 0))
    woken = ctx.state.notify(wlist, wake_all=wake_all)
    return len(woken)


def cloud9_get_wlist(ctx: NativeContext):
    """Create a new waiting queue and return its identifier."""
    return ctx.state.create_wait_list()


# -- libc-like built-ins ----------------------------------------------------------


def native_malloc(ctx: NativeContext):
    size = ctx.concrete_arg(0)
    limit = ctx.state.options.get("max_heap")
    if limit is not None:
        used = ctx.state.options.get("heap_used", 0)
        if used + size > int(limit):
            return 0  # NULL: out of (modeled) memory, cloud9_set_max_heap
        ctx.state.options["heap_used"] = used + size
    if size > ctx.executor.config.max_symbolic_malloc:
        size = ctx.executor.config.max_symbolic_malloc
    obj = ctx.allocate(size, name="heap")
    return obj.address


def native_calloc(ctx: NativeContext):
    count = ctx.concrete_arg(0)
    size = ctx.concrete_arg(1)
    obj = ctx.allocate(count * size, name="heap")
    return obj.address


def native_free(ctx: NativeContext):
    address = ctx.concrete_arg(0)
    if address == 0:
        return 0
    try:
        ctx.state.free(address)
    except MemoryError_ as exc:
        raise NativeBug(BugKind.INVALID_FREE, str(exc)) from exc
    return 0


def native_memcpy(ctx: NativeContext):
    dst = ctx.concrete_arg(0)
    src = ctx.concrete_arg(1)
    length = ctx.concrete_arg(2)
    data = ctx.read_bytes(src, length)
    ctx.write_bytes(dst, data)
    return dst


def native_memset(ctx: NativeContext):
    dst = ctx.concrete_arg(0)
    value = ctx.arg(1)
    length = ctx.concrete_arg(2)
    ctx.write_bytes(dst, [byte_value(value)] * length)
    return dst


def native_strlen(ctx: NativeContext):
    address = ctx.concrete_arg(0)
    return len(ctx.read_c_string(address))


def native_strcpy(ctx: NativeContext):
    dst = ctx.concrete_arg(0)
    src = ctx.concrete_arg(1)
    data = ctx.read_c_string(src)
    ctx.write_bytes(dst, list(data) + [0])
    return dst


def native_strcmp(ctx: NativeContext):
    a = ctx.read_c_string(ctx.concrete_arg(0))
    b = ctx.read_c_string(ctx.concrete_arg(1))
    if a == b:
        return 0
    return 1 if a > b else 0xFFFFFFFF


def native_abort(ctx: NativeContext):
    raise NativeBug(BugKind.ABORT, "abort() called")


def native_exit(ctx: NativeContext):
    raise ExitProcess(ctx.arg(0))


def native_state_exit(ctx: NativeContext):
    raise ExitState(ctx.arg(0))


def native_assume(ctx: NativeContext):
    """Constrain the path with a condition (klee_assume analogue)."""
    from repro.engine.values import truth_condition

    condition = truth_condition(ctx.arg(0))
    ctx.state.add_constraint(condition)
    return 0


def native_print(ctx: NativeContext):
    """Debug printing is a no-op under symbolic execution."""
    return 0


def cloud9_make_symbolic(ctx: NativeContext):
    """Mark an existing memory region as symbolic (Table 2).

    ``cloud9_make_symbolic(addr, size, label)``: the ``size`` bytes at
    ``addr`` are replaced with fresh symbolic bytes registered under
    ``label`` (or under an auto-generated label if arg2 is 0/omitted).
    """
    address = ctx.concrete_arg(0)
    size = ctx.concrete_arg(1)
    label_addr = ctx.concrete_arg(2, 0)
    label = (ctx.read_c_string(label_addr).decode("latin-1")
             if label_addr else "sym_%x" % address)
    state = ctx.state
    symbols = [state.new_symbol(label) for _ in range(size)]
    state.mem_write_bytes(address, symbols)
    state.symbolic_inputs.setdefault(label, []).extend(symbols)
    return 0


def cloud9_symbolic_buffer(ctx: NativeContext):
    """Allocate a fresh buffer of symbolic bytes and return its address.

    ``cloud9_symbolic_buffer(size, label)`` -- convenience wrapper combining
    ``malloc`` and ``cloud9_make_symbolic``.
    """
    size = ctx.concrete_arg(0)
    label_addr = ctx.concrete_arg(1, 0)
    label = (ctx.read_c_string(label_addr).decode("latin-1")
             if label_addr else "buffer")
    obj, _symbols = ctx.state.make_symbolic_buffer(label, size)
    return obj.address


def cloud9_symbolic_int(ctx: NativeContext):
    """Return a fresh 32-bit symbolic integer registered under a label."""
    label_addr = ctx.concrete_arg(0, 0)
    label = (ctx.read_c_string(label_addr).decode("latin-1")
             if label_addr else "int")
    state = ctx.state
    symbols = [state.new_symbol(label) for _ in range(4)]
    state.symbolic_inputs.setdefault(label, []).extend(symbols)
    from repro.solver.expr import concat_bytes

    return concat_bytes(symbols)


def default_registry() -> NativeRegistry:
    """A registry pre-populated with Table 1 primitives and libc built-ins."""
    registry = NativeRegistry()
    registry.register_all({
        # Table 1 symbolic system calls.
        "cloud9_make_shared": cloud9_make_shared,
        "cloud9_thread_create": cloud9_thread_create,
        "cloud9_thread_terminate": cloud9_thread_terminate,
        "cloud9_process_fork": cloud9_process_fork,
        "cloud9_process_terminate": cloud9_process_terminate,
        "cloud9_get_context": cloud9_get_context,
        "cloud9_get_pid": cloud9_get_pid,
        "cloud9_get_tid": cloud9_get_tid,
        "cloud9_thread_preempt": cloud9_thread_preempt,
        "cloud9_thread_sleep": cloud9_thread_sleep,
        "cloud9_thread_notify": cloud9_thread_notify,
        "cloud9_get_wlist": cloud9_get_wlist,
        "cloud9_make_symbolic": cloud9_make_symbolic,
        "cloud9_symbolic_buffer": cloud9_symbolic_buffer,
        "cloud9_symbolic_int": cloud9_symbolic_int,
        # libc-like built-ins.
        "malloc": native_malloc,
        "calloc": native_calloc,
        "free": native_free,
        "memcpy": native_memcpy,
        "memset": native_memset,
        "strlen": native_strlen,
        "strcpy": native_strcpy,
        "strcmp": native_strcmp,
        "abort": native_abort,
        "exit": native_exit,
        "c9_exit_state": native_state_exit,
        "c9_assume": native_assume,
        "printf": native_print,
        "puts": native_print,
    })
    return registry
