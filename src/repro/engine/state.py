"""Execution states: program counters, threads, processes, memory, constraints.

An :class:`ExecutionState` is one node's worth of program state in the
symbolic execution tree: everything needed to continue executing a path.
States are cloned when execution forks at a symbolic branch, at a scheduling
decision (when schedule forking is enabled), or at a fault-injection point.
"""

from __future__ import annotations

import copy
import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.engine.memory import (
    AddressSpace,
    Cell,
    CowDomain,
    DeterministicAllocator,
    MemoryError_,
    MemoryObject,
    _DATA_SEGMENT_BASE,
    _SHARED_BASE,
)
from repro.lang.compiler import CompiledProgram
from repro.solver.expr import Expr, bv_symbol

Value = Union[int, Expr]


class StateStatus(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"
    ERROR = "error"


class ThreadStatus(enum.Enum):
    ENABLED = "enabled"
    SLEEPING = "sleeping"
    TERMINATED = "terminated"


@dataclass
class Frame:
    """One activation record of a program function."""

    function: str
    pc: int
    locals: Dict[str, Value]
    return_dest: Optional[str] = None

    def copy(self) -> "Frame":
        return Frame(self.function, self.pc, dict(self.locals), self.return_dest)


class Thread:
    """A thread of execution inside one process."""

    __slots__ = ("tid", "pid", "stack", "status", "wait_list", "joiners",
                 "exit_value")

    def __init__(self, tid: int, pid: int):
        self.tid = tid
        self.pid = pid
        self.stack: List[Frame] = []
        self.status = ThreadStatus.ENABLED
        self.wait_list: Optional[int] = None
        self.joiners: List[Tuple[int, int]] = []
        self.exit_value: Value = 0

    @property
    def top(self) -> Frame:
        return self.stack[-1]

    @property
    def is_enabled(self) -> bool:
        return self.status == ThreadStatus.ENABLED

    def copy(self) -> "Thread":
        clone = Thread.__new__(Thread)
        clone.tid = self.tid
        clone.pid = self.pid
        clone.stack = [f.copy() for f in self.stack]
        clone.status = self.status
        clone.wait_list = self.wait_list
        clone.joiners = list(self.joiners)
        clone.exit_value = self.exit_value
        return clone


class Process:
    """A process: an address space plus a set of threads."""

    __slots__ = ("pid", "parent_pid", "address_space", "threads",
                 "next_tid", "exit_code", "alive")

    def __init__(self, pid: int, parent_pid: int = 0):
        self.pid = pid
        self.parent_pid = parent_pid
        self.address_space = AddressSpace()
        self.threads: Dict[int, Thread] = {}
        self.next_tid = 0
        self.exit_code: Optional[Value] = None
        self.alive = True

    def new_thread(self) -> Thread:
        tid = self.next_tid
        self.next_tid += 1
        thread = Thread(tid, self.pid)
        self.threads[tid] = thread
        return thread

    def copy(self) -> "Process":
        clone = Process.__new__(Process)
        clone.pid = self.pid
        clone.parent_pid = self.parent_pid
        clone.address_space = self.address_space.clone()
        clone.threads = {tid: t.copy() for tid, t in self.threads.items()}
        clone.next_tid = self.next_tid
        clone.exit_code = self.exit_code
        clone.alive = self.alive
        return clone


_state_id_counter = itertools.count(1)


class ExecutionState:
    """A complete symbolic execution state (one path prefix).

    Attributes of note:

    * ``path_constraints`` -- the conjunction of branch conditions taken.
    * ``coverage`` -- line numbers executed along this path.
    * ``symbolic_inputs`` -- named byte-symbol lists created by
      ``make_symbolic`` calls; used for test-case generation.
    * ``fork_trace`` -- the child index chosen at every fork point; this is
      exactly the path encoding Cloud9 ships between workers in a job.
    """

    def __init__(self, program: CompiledProgram):
        self.state_id = next(_state_id_counter)
        self.program = program
        self.status = StateStatus.RUNNING
        self.exit_code: Value = 0
        self.error: Optional[object] = None  # BugReport, set by the interpreter

        # Memory.
        self.allocator = DeterministicAllocator()
        self.shared_allocator = DeterministicAllocator(base=_SHARED_BASE)
        self.cow_domain = CowDomain()
        self.data_segment: Dict[bytes, int] = {}

        # Processes / threads / scheduling.
        self.processes: Dict[int, Process] = {}
        self.next_pid = 1
        self.current: Optional[Tuple[int, int]] = None  # (pid, tid)
        self.wait_lists: Dict[int, List[Tuple[int, int]]] = {}
        self.next_wait_list = 1

        # Path bookkeeping.
        self.path_constraints: List[Expr] = []
        self._constraint_set: Set[Expr] = set()
        self.coverage: Set[int] = set()
        self.fork_trace: List[int] = []
        self.instructions_executed = 0
        self.forks = 0
        self.depth = 0

        # Symbolic inputs: name -> list of byte symbols (ordering matters).
        self.symbolic_inputs: Dict[str, List[Expr]] = {}
        self._symbol_counter = 0

        # Environment-model private data (the POSIX model hangs its
        # auxiliary structures here; see repro.posix).  Copy-on-write across
        # forks: read/mutate it through env_for_write(), never directly.
        self.env: Dict[str, object] = {}
        self._env_shared = False

        # Testing-platform knobs (fault injection, scheduler policy, ...).
        self.options: Dict[str, object] = {}

    # -- construction -----------------------------------------------------------

    def create_main_process(self) -> Process:
        """Create the initial process/thread pair running the entry function."""
        process = Process(self.next_pid)
        self.next_pid += 1
        self.processes[process.pid] = process
        thread = process.new_thread()
        entry = self.program.function(self.program.entry)
        thread.stack.append(Frame(entry.name, 0, {p: 0 for p in entry.params}))
        self.current = (process.pid, thread.tid)
        self._bind_data_segment(process)
        return process

    def _bind_data_segment(self, process: Process) -> None:
        """Map the program's read-only string constants into a process.

        Layout is deterministic: blobs are placed consecutively in the order
        the compiler interned them, so replayed paths observe identical
        addresses (see §6 "Broken Replays").
        """
        next_address = _DATA_SEGMENT_BASE
        for blob in self.program.data:
            address = self.data_segment.setdefault(blob, next_address)
            next_address = max(next_address, address + len(blob) + 1)
            obj = MemoryObject(address, len(blob) + 1, name="rodata", writable=False)
            obj.cells = list(blob) + [0]
            obj.writable = False
            process.address_space.bind(obj)

    # -- cloning -------------------------------------------------------------------

    def fork(self) -> "ExecutionState":
        """Clone this state (copy-on-write for memory, deep for bookkeeping)."""
        clone = ExecutionState.__new__(ExecutionState)
        clone.state_id = next(_state_id_counter)
        clone.program = self.program
        clone.status = self.status
        clone.exit_code = self.exit_code
        clone.error = self.error

        clone.allocator = self.allocator.copy()
        clone.shared_allocator = self.shared_allocator.copy()
        clone.cow_domain = self.cow_domain.clone()
        clone.data_segment = dict(self.data_segment)

        clone.processes = {pid: p.copy() for pid, p in self.processes.items()}
        clone.next_pid = self.next_pid
        clone.current = self.current
        clone.wait_lists = {k: list(v) for k, v in self.wait_lists.items()}
        clone.next_wait_list = self.next_wait_list

        clone.path_constraints = list(self.path_constraints)
        clone._constraint_set = set(self._constraint_set)
        clone.coverage = set(self.coverage)
        clone.fork_trace = list(self.fork_trace)
        clone.instructions_executed = self.instructions_executed
        clone.forks = self.forks
        clone.depth = self.depth

        clone.symbolic_inputs = {k: list(v) for k, v in self.symbolic_inputs.items()}
        clone._symbol_counter = self._symbol_counter

        # The environment area is copied lazily: forking used to deep-copy
        # it eagerly, which made every fork pay for the whole POSIX model
        # even when the child was pruned (or exported) without ever running.
        # Both sides now share the structure and the first write (any
        # env_for_write call) peels off a private deep copy.
        clone.env = self.env
        clone._env_shared = True
        self._env_shared = True
        clone.options = dict(self.options)
        return clone

    def env_for_write(self) -> Dict[str, object]:
        """The environment area, privately owned by this state.

        The write barrier of the copy-on-write fork: when the area is still
        shared with a fork sibling, take a private deep copy first.  Every
        accessor that may mutate model data (in practice: any syscall) must
        come through here rather than touching ``env`` directly.
        """
        if self._env_shared:
            self.env = copy.deepcopy(self.env)
            self._env_shared = False
        return self.env

    # -- processes / threads -------------------------------------------------------

    @property
    def current_process(self) -> Process:
        return self.processes[self.current[0]]

    @property
    def current_thread(self) -> Thread:
        pid, tid = self.current
        return self.processes[pid].threads[tid]

    def thread(self, pid: int, tid: int) -> Thread:
        return self.processes[pid].threads[tid]

    def all_threads(self) -> List[Thread]:
        return [t for p in self.processes.values() for t in p.threads.values()]

    def enabled_threads(self) -> List[Thread]:
        return [t for t in self.all_threads() if t.status == ThreadStatus.ENABLED]

    def live_threads(self) -> List[Thread]:
        return [t for t in self.all_threads() if t.status != ThreadStatus.TERMINATED]

    def fork_process(self, parent: Process) -> Process:
        """Duplicate a process within this state (used by ``fork()``)."""
        child = Process(self.next_pid, parent_pid=parent.pid)
        self.next_pid += 1
        child.address_space = parent.address_space.clone()
        child.next_tid = parent.next_tid
        self.processes[child.pid] = child
        return child

    # -- wait lists -----------------------------------------------------------------

    def create_wait_list(self) -> int:
        wlist = self.next_wait_list
        self.next_wait_list += 1
        self.wait_lists[wlist] = []
        return wlist

    def sleep_on(self, wlist: int, thread: Thread) -> None:
        thread.status = ThreadStatus.SLEEPING
        thread.wait_list = wlist
        self.wait_lists.setdefault(wlist, []).append((thread.pid, thread.tid))

    def notify(self, wlist: int, wake_all: bool = False) -> List[Thread]:
        """Wake one (or all) threads sleeping on a wait list."""
        queue = self.wait_lists.get(wlist, [])
        woken: List[Thread] = []
        count = len(queue) if wake_all else min(1, len(queue))
        for _ in range(count):
            pid, tid = queue.pop(0)
            thread = self.processes[pid].threads[tid]
            thread.status = ThreadStatus.ENABLED
            thread.wait_list = None
            woken.append(thread)
        return woken

    # -- memory --------------------------------------------------------------------

    def allocate(self, size: int, name: str = "", fill: Cell = 0,
                 process: Optional[Process] = None) -> MemoryObject:
        """Allocate a fresh object in a process's address space."""
        target = process if process is not None else self.current_process
        address = self.allocator.allocate(size)
        obj = MemoryObject(address, size, name=name, fill=fill)
        target.address_space.bind(obj)
        return obj

    def allocate_shared(self, size: int, name: str = "", fill: Cell = 0) -> MemoryObject:
        """Allocate an object directly in the CoW (shared) domain."""
        address = self.shared_allocator.allocate(size)
        obj = MemoryObject(address, size, name=name, fill=fill, shared=True)
        self.cow_domain.share(obj)
        return obj

    def make_shared(self, address: int) -> MemoryObject:
        """Move an existing private object into the CoW domain (Table 1)."""
        space = self.current_process.address_space
        obj, offset = space.resolve(address)
        if offset != 0:
            raise MemoryError_("make_shared requires an object base address",
                               address=address)
        space.unbind(obj.address)
        self.cow_domain.share(obj)
        return obj

    def free(self, address: int) -> None:
        space = self.current_process.address_space
        obj, offset = space.resolve(address)
        if offset != 0:
            raise MemoryError_("free of an interior pointer 0x%x" % address,
                               address=address)
        space.unbind(obj.address)

    def resolve(self, address: int, process: Optional[Process] = None
                ) -> Tuple[MemoryObject, int, bool]:
        """Resolve an address to (object, offset, is_shared)."""
        shared = self.cow_domain.resolve(address)
        if shared is not None:
            return shared[0], shared[1], True
        target = process if process is not None else self.current_process
        obj, offset = target.address_space.resolve(address)
        return obj, offset, False

    def mem_read(self, address: int, offset: int = 0,
                 process: Optional[Process] = None) -> Cell:
        obj, base_off, _ = self.resolve(address, process)
        return obj.read_byte(base_off + offset)

    def mem_write(self, address: int, offset: int, value: Cell,
                  process: Optional[Process] = None) -> None:
        obj, base_off, is_shared = self.resolve(address, process)
        if is_shared:
            obj.write_byte(base_off + offset, value)
            return
        target = process if process is not None else self.current_process
        target.address_space.write_byte(address, offset, value)

    def mem_read_bytes(self, address: int, length: int,
                       process: Optional[Process] = None) -> List[Cell]:
        return [self.mem_read(address, i, process) for i in range(length)]

    def mem_write_bytes(self, address: int, values: Sequence[Cell],
                        process: Optional[Process] = None) -> None:
        for i, v in enumerate(values):
            self.mem_write(address, i, v, process)

    def string_address(self, blob: bytes) -> int:
        """Address of an interned read-only string constant."""
        return self.data_segment[blob]

    # -- symbolic data -----------------------------------------------------------------

    def new_symbol(self, label: str, width: int = 8) -> Expr:
        """Create a fresh symbol with a replay-deterministic name."""
        self._symbol_counter += 1
        return bv_symbol("%s!%d" % (label, self._symbol_counter), width)

    def make_symbolic_buffer(self, name: str, size: int) -> Tuple[MemoryObject, List[Expr]]:
        """Allocate a buffer of fresh symbolic bytes and register it as an input."""
        symbols = [self.new_symbol(name) for _ in range(size)]
        obj = self.allocate(size, name=name)
        obj.cells = list(symbols)
        self.symbolic_inputs.setdefault(name, []).extend(symbols)
        return obj, symbols

    def add_constraint(self, constraint: Expr) -> None:
        """Append a branch condition to the path constraint (deduplicated).

        Loops re-test the same conditions on every iteration; skipping exact
        duplicates keeps the constraint set (and thus solver queries) small
        on long loop-heavy paths such as the memcached UDP hang.
        """
        if constraint in self._constraint_set:
            return
        self._constraint_set.add(constraint)
        self.path_constraints.append(constraint)

    # -- termination ----------------------------------------------------------------------

    def terminate(self, exit_code: Value = 0) -> None:
        self.status = StateStatus.EXITED
        self.exit_code = exit_code

    def terminate_error(self, report: object) -> None:
        self.status = StateStatus.ERROR
        self.error = report

    @property
    def is_running(self) -> bool:
        return self.status == StateStatus.RUNNING

    def __repr__(self) -> str:
        return "ExecutionState(id=%d, status=%s, depth=%d, pc=%s)" % (
            self.state_id, self.status.value, self.depth,
            self.current_thread.top.pc if self.is_running and self.current else "-")
