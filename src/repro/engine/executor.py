"""The single-node symbolic execution engine (KLEE analogue).

:class:`SymbolicExecutor` ties together the interpreter, the cooperative
scheduler, the native-function registry and the execution tree.  It exposes
two levels of API:

* :meth:`SymbolicExecutor.step` -- execute one scheduling decision or one
  instruction of one state, returning all resulting states.  The cluster
  worker (:mod:`repro.cluster.worker`) drives exploration through this.
* :meth:`SymbolicExecutor.run` -- a complete single-node exploration loop
  with a search strategy and limits; this is what "1-worker Cloud9" (i.e.
  plain KLEE) uses in the evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.engine.config import EngineConfig
from repro.engine.coverage import CoverageBitVector
from repro.engine.errors import BugKind, BugReport
from repro.engine.interpreter import Interpreter
from repro.engine.limits import ExplorationLimits, effective_limits
from repro.engine.natives import NativeRegistry
from repro.engine.scheduler import CooperativeScheduler
from repro.engine.state import ExecutionState, ThreadStatus
from repro.engine.strategies import SearchStrategy, make_strategy
from repro.engine.syscalls import default_registry
from repro.engine.test_case import TestCase, generate_test_case
from repro.engine.tree import ExecutionTree, NodeStatus, TreeNode
from repro.lang.ast import Program
from repro.lang.compiler import CompiledProgram, compile_program
from repro.obs.metrics import CounterField, bind_counters, counter_fields
from repro.obs import schema as trace_schema
from repro.obs.trace import NULL_TRACER, Tracer
from repro.solver.solver import Solver

@dataclass
class StepResult:
    """Outcome of stepping one state once.

    ``children`` is the ordered list of all resulting states (running or
    terminated); its order defines the fork indices used in job paths.
    ``forked`` is true when more than one child was produced.
    """

    children: List[ExecutionState] = field(default_factory=list)
    terminated: List[ExecutionState] = field(default_factory=list)
    bugs: List[BugReport] = field(default_factory=list)
    test_cases: List[TestCase] = field(default_factory=list)
    instructions: int = 0

    @property
    def forked(self) -> bool:
        return len(self.children) > 1

    @property
    def running(self) -> List[ExecutionState]:
        return [s for s in self.children if s.is_running]


@dataclass
class ExplorationResult:
    """Summary of a (single-node) exploration run."""

    program_name: str
    paths_completed: int = 0
    bugs: List[BugReport] = field(default_factory=list)
    test_cases: List[TestCase] = field(default_factory=list)
    covered_lines: Set[int] = field(default_factory=set)
    line_count: int = 0
    instructions_executed: int = 0
    states_remaining: int = 0
    steps: int = 0
    wall_time: float = 0.0
    exhausted: bool = False
    #: Solver-counter increments over this run (queries, search steps,
    #: independence groups/hits, ... -- see SolverStats.snapshot()).
    solver_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage_percent(self) -> float:
        if not self.line_count:
            return 0.0
        return 100.0 * len(self.covered_lines) / self.line_count

    def coverage_vector(self) -> CoverageBitVector:
        return CoverageBitVector.from_lines(self.line_count, self.covered_lines)

    def bug_kinds(self) -> Set[BugKind]:
        return {b.kind for b in self.bugs}


StateFactory = Callable[[], ExecutionState]


class SymbolicExecutor:
    """A single-node symbolic execution engine for one compiled program."""

    # Global exploration statistics (across run()/step() calls), registry-
    # backed (:mod:`repro.obs.metrics`) so the live-status/trace layer sees
    # them without extra plumbing.  Read/write surface is unchanged.
    total_instructions = CounterField("engine_instructions")
    paths_completed = CounterField("engine_paths_completed")

    def __init__(self, program: Union[Program, CompiledProgram],
                 config: Optional[EngineConfig] = None,
                 solver: Optional[Solver] = None,
                 natives: Optional[NativeRegistry] = None,
                 environment_installers: Sequence[Callable[["SymbolicExecutor"], None]] = ()):
        self.program = (program if isinstance(program, CompiledProgram)
                        else compile_program(program))
        self.config = config or EngineConfig()
        self.solver = solver or Solver()
        self.natives = natives or default_registry()
        self.scheduler = CooperativeScheduler(
            policy=self.config.scheduler_policy,
            fork_schedules=self.config.fork_on_schedule)
        self.interpreter = Interpreter(self.solver, self.natives, self.config)
        self.interpreter.executor = self

        #: One registry per engine, shared with the solver and its caches
        #: (and, on clusters, with the owning worker's ``WorkerStats``).
        self.metrics = self.solver.metrics
        bind_counters(self, counter_fields(type(self)), self.metrics)
        self.covered_lines: Set[int] = set()
        self.bugs: List[BugReport] = []
        self.test_cases: List[TestCase] = []

        # Environment models (e.g. the POSIX model) register natives and
        # per-state initialization hooks through installers.
        self.state_initializers: List[Callable[[ExecutionState], None]] = []
        for installer in environment_installers:
            installer(self)

    # -- state construction -----------------------------------------------------------

    def make_initial_state(self, options: Optional[Dict[str, object]] = None
                           ) -> ExecutionState:
        """Create the initial state: main process + thread at the entry point."""
        state = ExecutionState(self.program)
        if options:
            state.options.update(options)
        state.create_main_process()
        for initializer in self.state_initializers:
            initializer(state)
        return state

    # -- stepping ---------------------------------------------------------------------

    def _needs_schedule(self, state: ExecutionState) -> bool:
        if state.current is None:
            return True
        if state.options.pop("force_reschedule", False):
            return True
        return state.current_thread.status != ThreadStatus.ENABLED

    def step(self, state: ExecutionState) -> StepResult:
        """Advance a state by one scheduling decision or one instruction."""
        result = StepResult()
        if not state.is_running:
            return result

        # Per-path instruction limit: the infinite-loop/hang detector.
        limit = state.options.get("max_instructions",
                                  self.config.max_instructions_per_path)
        if limit is not None and state.instructions_executed >= int(limit):
            report = BugReport(
                kind=BugKind.INFINITE_LOOP,
                message="path exceeded %d instructions (possible hang)" % int(limit),
                state_id=state.state_id,
                function=(state.current_thread.top.function
                          if state.current else None),
            )
            state.terminate_error(report)
            self._finish_state(state, result)
            result.children = [state]
            return result

        if self._needs_schedule(state):
            return self._schedule(state, result)

        children = self.interpreter.execute_instruction(state)
        result.instructions = 1
        self.total_instructions += 1
        result.children = children
        for child in children:
            self.covered_lines.update(child.coverage)
            if not child.is_running:
                self._finish_state(child, result)
        return result

    def _schedule(self, state: ExecutionState, result: StepResult) -> StepResult:
        decision = self.scheduler.decide(state)
        if decision.all_exited:
            exit_code = 0
            main_process = state.processes.get(1)
            if main_process is not None and main_process.exit_code is not None:
                exit_code = main_process.exit_code
            state.terminate(exit_code)
            self._finish_state(state, result)
            result.children = [state]
            return result
        if decision.deadlock:
            if self.config.detect_deadlocks:
                state.terminate_error(self.scheduler.deadlock_report(state))
                self._finish_state(state, result)
            else:
                state.terminate(0)
                self._finish_state(state, result)
            result.children = [state]
            return result

        choices = decision.choices
        if len(choices) == 1:
            self.scheduler.apply(state, choices[0])
            result.children = [state]
            return result

        # Schedule fork: one successor per runnable thread.  All clones are
        # taken from the unmodified state before any choice is applied.
        state.forks += 1
        children: List[ExecutionState] = [
            state if index == 0 else state.fork()
            for index in range(len(choices))
        ]
        for index, (choice, succ) in enumerate(zip(choices, children)):
            succ.fork_trace.append(index)
            self.scheduler.apply(succ, choice)
        result.children = children
        return result

    def _finish_state(self, state: ExecutionState, result: StepResult) -> None:
        """Bookkeeping when a state reaches a terminal status."""
        result.terminated.append(state)
        self.paths_completed += 1
        self.covered_lines.update(state.coverage)
        error = state.error
        summary = error.summary() if error is not None else None
        test_case = generate_test_case(state, self.solver, error_summary=summary)
        if test_case is not None:
            state_test_case = test_case
            self.test_cases.append(test_case)
            result.test_cases.append(test_case)
            if error is not None:
                error.test_case = state_test_case
        if error is not None:
            self.bugs.append(error)
            result.bugs.append(error)

    # -- complete exploration -------------------------------------------------------------

    def run(self,
            initial_state: Optional[Union[ExecutionState, StateFactory]] = None,
            strategy: Optional[Union[str, SearchStrategy]] = None,
            max_steps: Optional[int] = None,
            max_paths: Optional[int] = None,
            max_instructions: Optional[int] = None,
            max_wall_time: Optional[float] = None,
            coverage_target: Optional[float] = None,
            stop_on_first_bug: bool = False,
            limits: Optional[ExplorationLimits] = None) -> ExplorationResult:
        """Explore until exhaustion or until a limit/goal is reached.

        Limits may be given as explicit kwargs or bundled in an
        :class:`~repro.engine.limits.ExplorationLimits` (explicit kwargs
        win); ``limits.max_rounds`` has no meaning on a single engine and is
        ignored.
        """
        lim = effective_limits(limits, max_steps=max_steps, max_paths=max_paths,
                               max_instructions=max_instructions,
                               max_wall_time=max_wall_time,
                               coverage_target=coverage_target,
                               stop_on_first_bug=stop_on_first_bug)
        max_steps, max_paths = lim.max_steps, lim.max_paths
        max_instructions, max_wall_time = lim.max_instructions, lim.max_wall_time
        coverage_target, stop_on_first_bug = lim.coverage_target, lim.stop_on_first_bug
        if initial_state is None:
            state = self.make_initial_state()
        elif callable(initial_state):
            state = initial_state()
        else:
            state = initial_state

        if strategy is None:
            strategy = make_strategy("interleaved", program=self.program)
        elif isinstance(strategy, str):
            strategy = make_strategy(strategy, program=self.program)

        tree = ExecutionTree()
        tree.root.materialize(state)
        candidates: Dict[int, TreeNode] = {tree.root.node_id: tree.root}

        result = ExplorationResult(program_name=self.program.name,
                                   line_count=self.program.line_count)
        start = time.monotonic()
        instructions_at_start = self.total_instructions
        paths_at_start = self.paths_completed
        bugs_at_start = len(self.bugs)
        solver_stats_at_start = self.solver.stats.snapshot()

        tracer = Tracer(lim.trace_path) if lim.trace_path else NULL_TRACER
        tracer.emit(trace_schema.RUN_STARTED, backend="single", workers=1,
                    test=self.program.name, line_count=result.line_count)
        # The single engine has no rounds; every ``trace_round`` steps it
        # emits a pseudo round so coverage-over-time still renders.
        trace_round = 256
        traced_rounds = 0
        traced_bugs = bugs_at_start
        traced_prev_useful = 0

        while candidates:
            if max_steps is not None and result.steps >= max_steps:
                break
            if stop_on_first_bug and len(self.bugs) > bugs_at_start:
                break
            if max_paths is not None and self.paths_completed - paths_at_start >= max_paths:
                break
            if max_instructions is not None and (
                    self.total_instructions - instructions_at_start >= max_instructions):
                break
            if max_wall_time is not None and time.monotonic() - start > max_wall_time:
                break
            if coverage_target is not None and result.line_count:
                percent = 100.0 * len(self.covered_lines) / result.line_count
                if percent >= coverage_target:
                    break

            node = strategy.select(tree, list(candidates.values()))
            step_result = self.step(node.state)
            result.steps += 1
            self._apply_step_to_tree(tree, node, step_result, candidates, strategy)

            if tracer.enabled:
                while len(self.bugs) > traced_bugs:
                    bug = self.bugs[traced_bugs]
                    traced_bugs += 1
                    tracer.emit(trace_schema.BUG_FOUND, kind=bug.kind.name,
                                message=bug.message)
                if result.steps % trace_round == 0:
                    traced_prev_useful = self._trace_round(
                        tracer, traced_rounds, start, result,
                        instructions_at_start, paths_at_start, candidates,
                        traced_prev_useful)
                    traced_rounds += 1

        result.exhausted = not candidates
        result.paths_completed = self.paths_completed - paths_at_start
        result.bugs = list(self.bugs)
        result.test_cases = list(self.test_cases)
        result.covered_lines = set(self.covered_lines)
        result.instructions_executed = self.total_instructions - instructions_at_start
        result.states_remaining = len(candidates)
        result.wall_time = time.monotonic() - start
        result.solver_stats = self.solver.stats.delta_since(solver_stats_at_start)
        if tracer.enabled:
            self._trace_round(tracer, traced_rounds, start, result,
                              instructions_at_start, paths_at_start, candidates,
                              traced_prev_useful)
            tracer.emit(trace_schema.SOLVER_QUERY, **{k: v for k, v
                                           in result.solver_stats.items() if v})
            tracer.emit(trace_schema.RUN_FINISHED, paths=result.paths_completed,
                        coverage_percent=round(result.coverage_percent, 3),
                        bugs=len(result.bugs), steps=result.steps,
                        instructions=result.instructions_executed,
                        exhausted=result.exhausted,
                        wall_time=round(result.wall_time, 6))
            tracer.close()
        return result

    def _trace_round(self, tracer, round_index: int, start: float,
                     result: ExplorationResult, instructions_at_start: int,
                     paths_at_start: int, candidates: Dict[int, TreeNode],
                     prev_useful: int) -> int:
        """One pseudo ``round_completed`` event (single-engine time series).

        Like the cluster events, ``useful``/``replay`` are this round's
        increments, not cumulative totals.  Returns the new cumulative
        useful-instruction count for the next delta.
        """
        covered = len(self.covered_lines)
        percent = (100.0 * covered / result.line_count
                   if result.line_count else 0.0)
        total_useful = self.total_instructions - instructions_at_start
        useful = total_useful - prev_useful
        tracer.emit(
            trace_schema.ROUND_COMPLETED, round=round_index,
            elapsed=round(time.monotonic() - start, 6),
            coverage_percent=round(percent, 3), covered_lines=covered,
            paths=self.paths_completed - paths_at_start,
            candidates=len(candidates), workers=1,
            useful=useful, replay=0, transferred=0,
            queues={0: len(candidates)},
            workers_detail={0: {"useful": useful, "replay": 0,
                                "queue": len(candidates)}})
        return total_useful

    def _apply_step_to_tree(self, tree: ExecutionTree, node: TreeNode,
                            step_result: StepResult,
                            candidates: Dict[int, TreeNode],
                            strategy: SearchStrategy) -> None:
        """Update the execution tree and candidate set after one step."""
        children = step_result.children
        newly_covered: Set[int] = set()
        for child in children:
            newly_covered.update(child.coverage)
        strategy.notify_covered(newly_covered)

        if len(children) == 1 and children[0] is node.state:
            child = children[0]
            if not child.is_running:
                node.mark_dead()
                candidates.pop(node.node_id, None)
            return

        # A fork (or a termination that replaced the state object): the node
        # becomes an interior dead node and each resulting state gets a child.
        candidates.pop(node.node_id, None)
        for index, child_state in enumerate(children):
            child_node = node.add_child(index)
            if child_state.is_running:
                child_node.materialize(child_state)
                candidates[child_node.node_id] = child_node
            else:
                child_node.status = NodeStatus.MATERIALIZED
                child_node.mark_dead()
        node.mark_dead()
