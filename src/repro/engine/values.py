"""Runtime values and mixed concrete/symbolic arithmetic.

A runtime value is either a plain Python ``int`` (concrete, interpreted as an
unsigned machine integer of the engine's default width) or a
:class:`repro.solver.expr.Expr` bitvector.  All helpers in this module accept
either form, performing concrete arithmetic whenever possible and building
solver expressions only when a symbolic operand is involved -- keeping
expressions small is what keeps the solver fast.
"""

from __future__ import annotations

from typing import Union

from repro.lang.ast import BinaryOp, UnaryOp
from repro.solver import expr as E
from repro.solver.expr import Expr
from repro.solver.simplify import simplify

Value = Union[int, Expr]

DEFAULT_WIDTH = 32
_DEFAULT_MASK = (1 << DEFAULT_WIDTH) - 1


def is_concrete(value: Value) -> bool:
    return isinstance(value, int)


def is_symbolic(value: Value) -> bool:
    return isinstance(value, Expr)


def width_of(value: Value) -> int:
    if isinstance(value, Expr):
        return value.width
    return DEFAULT_WIDTH


def mask_concrete(value: int, width: int = DEFAULT_WIDTH) -> int:
    return value & ((1 << width) - 1)


def to_expr(value: Value, width: int = DEFAULT_WIDTH) -> Expr:
    """Lift a value to a solver expression of exactly ``width`` bits."""
    if isinstance(value, Expr):
        if value.width == width:
            return value
        if value.width < width:
            return E.zext(value, width)
        return E.extract(value, width - 1, 0)
    return E.bv_const(mask_concrete(int(value), width), width)


def common_width(a: Value, b: Value) -> int:
    return max(width_of(a), width_of(b), DEFAULT_WIDTH)


def as_signed(value: int, width: int = DEFAULT_WIDTH) -> int:
    return E.to_signed(value, width)


def concrete_binop(op: BinaryOp, a: int, b: int, width: int = DEFAULT_WIDTH) -> int:
    """Concrete evaluation of a binary operator with C-like unsigned semantics."""
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    if op == BinaryOp.ADD:
        return (a + b) & mask
    if op == BinaryOp.SUB:
        return (a - b) & mask
    if op == BinaryOp.MUL:
        return (a * b) & mask
    if op == BinaryOp.DIV:
        return mask if b == 0 else (a // b) & mask
    if op == BinaryOp.MOD:
        return a if b == 0 else (a % b) & mask
    if op == BinaryOp.AND:
        return a & b
    if op == BinaryOp.OR:
        return a | b
    if op == BinaryOp.XOR:
        return a ^ b
    if op == BinaryOp.SHL:
        return 0 if b >= width else (a << b) & mask
    if op == BinaryOp.SHR:
        return 0 if b >= width else a >> b
    if op == BinaryOp.EQ:
        return int(a == b)
    if op == BinaryOp.NE:
        return int(a != b)
    if op == BinaryOp.LT:
        return int(as_signed(a, width) < as_signed(b, width))
    if op == BinaryOp.LE:
        return int(as_signed(a, width) <= as_signed(b, width))
    if op == BinaryOp.GT:
        return int(as_signed(a, width) > as_signed(b, width))
    if op == BinaryOp.GE:
        return int(as_signed(a, width) >= as_signed(b, width))
    if op == BinaryOp.LAND:
        return int(bool(a) and bool(b))
    if op == BinaryOp.LOR:
        return int(bool(a) or bool(b))
    raise NotImplementedError("concrete_binop: unsupported operator %r" % op)


def symbolic_binop(op: BinaryOp, a: Value, b: Value) -> Expr:
    """Build a solver expression for a binary operator over mixed operands."""
    width = common_width(a, b)
    lhs = to_expr(a, width)
    rhs = to_expr(b, width)
    if op == BinaryOp.ADD:
        return E.add(lhs, rhs)
    if op == BinaryOp.SUB:
        return E.sub(lhs, rhs)
    if op == BinaryOp.MUL:
        return E.mul(lhs, rhs)
    if op == BinaryOp.DIV:
        return E.udiv(lhs, rhs)
    if op == BinaryOp.MOD:
        return E.urem(lhs, rhs)
    if op == BinaryOp.AND:
        return E.band(lhs, rhs)
    if op == BinaryOp.OR:
        return E.bor(lhs, rhs)
    if op == BinaryOp.XOR:
        return E.bxor(lhs, rhs)
    if op == BinaryOp.SHL:
        return E.shl(lhs, rhs)
    if op == BinaryOp.SHR:
        return E.lshr(lhs, rhs)

    one = E.bv_const(1, width)
    zero = E.bv_const(0, width)
    if op == BinaryOp.EQ:
        return E.ite(E.eq(lhs, rhs), one, zero)
    if op == BinaryOp.NE:
        return E.ite(E.ne(lhs, rhs), one, zero)
    if op == BinaryOp.LT:
        return E.ite(E.slt(lhs, rhs), one, zero)
    if op == BinaryOp.LE:
        return E.ite(E.sle(lhs, rhs), one, zero)
    if op == BinaryOp.GT:
        return E.ite(E.sgt(lhs, rhs), one, zero)
    if op == BinaryOp.GE:
        return E.ite(E.sge(lhs, rhs), one, zero)
    if op == BinaryOp.LAND:
        return E.ite(E.logical_and(E.ne(lhs, zero), E.ne(rhs, zero)), one, zero)
    if op == BinaryOp.LOR:
        return E.ite(E.logical_or(E.ne(lhs, zero), E.ne(rhs, zero)), one, zero)
    raise NotImplementedError("symbolic_binop: unsupported operator %r" % op)


def binop(op: BinaryOp, a: Value, b: Value) -> Value:
    """Evaluate a binary operator, staying concrete when both operands are."""
    if is_concrete(a) and is_concrete(b):
        return concrete_binop(op, a, b)
    return simplify(symbolic_binop(op, a, b))


def unop(op: UnaryOp, value: Value) -> Value:
    if is_concrete(value):
        if op == UnaryOp.NEG:
            return mask_concrete(-value)
        if op == UnaryOp.NOT:
            return int(value == 0)
        if op == UnaryOp.BNOT:
            return mask_concrete(~value)
        raise NotImplementedError("unop: unsupported operator %r" % op)
    width = width_of(value)
    expr = to_expr(value, width)
    if op == UnaryOp.NEG:
        return simplify(E.sub(E.bv_const(0, width), expr))
    if op == UnaryOp.NOT:
        return simplify(E.ite(E.eq(expr, E.bv_const(0, width)),
                              E.bv_const(1, width), E.bv_const(0, width)))
    if op == UnaryOp.BNOT:
        return simplify(E.bnot(expr))
    raise NotImplementedError("unop: unsupported operator %r" % op)


def truth_condition(value: Value) -> Expr:
    """The boolean constraint "value is non-zero" (C truthiness)."""
    width = width_of(value)
    return simplify(E.ne(to_expr(value, width), E.bv_const(0, width)))


def false_condition(value: Value) -> Expr:
    width = width_of(value)
    return simplify(E.eq(to_expr(value, width), E.bv_const(0, width)))


def byte_value(cell: Value) -> Value:
    """Normalize a memory cell into an 8-bit-range value."""
    if isinstance(cell, int):
        return cell & 0xFF
    if cell.width == 8:
        return cell
    return simplify(E.extract(cell, 7, 0))
