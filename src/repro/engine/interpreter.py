"""Instruction interpretation with symbolic forking.

The interpreter executes exactly one instruction of one state per call and
returns the ordered list of resulting states: one state for straight-line
execution, several when the instruction forks (symbolic branch, fault
injection fork, out-of-bounds possibility, schedule fork handled by the
executor).  The order of the returned list is deterministic; the cluster
layer relies on this to encode jobs as fork-index paths and to replay them on
other workers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.config import EngineConfig
from repro.engine.errors import BugKind, BugReport
from repro.engine.memory import MemoryError_
from repro.engine.natives import (
    Block,
    ExitProcess,
    ExitState,
    NativeBug,
    NativeContext,
    NativeFork,
    NativeRegistry,
)
from repro.engine.state import (
    ExecutionState,
    Frame,
    Thread,
    ThreadStatus,
)
from repro.engine.values import (
    Value,
    binop,
    byte_value,
    false_condition,
    is_concrete,
    to_expr,
    truth_condition,
    unop,
)
from repro.lang.ast import (
    BinaryOp,
    BinExpr,
    CallExpr,
    Const,
    Index,
    StrConst,
    UnExpr,
    Var,
)
from repro.lang.compiler import Instruction, Opcode
from repro.solver import expr as E
from repro.solver.simplify import simplify
from repro.solver.solver import Solver


class EngineInternalError(Exception):
    """A malformed program or an engine invariant violation (not a target bug)."""


class DivisionByZeroError(Exception):
    """The program divided (or took a remainder) by a divisor that is zero.

    Raised during expression evaluation and converted by
    :meth:`Interpreter.execute_instruction` into a ``DIVISION_BY_ZERO`` bug
    report, the same way KLEE turns a zero divisor into a test case.
    """


class Interpreter:
    """Executes instructions of compiled programs over execution states."""

    def __init__(self, solver: Solver, natives: NativeRegistry,
                 config: EngineConfig):
        self.solver = solver
        self.natives = natives
        self.config = config
        # Back-reference installed by the executor (native handlers need it).
        self.executor = None

    # -- expression evaluation ----------------------------------------------------

    def eval_expr(self, state: ExecutionState, frame: Frame, expr) -> Value:
        """Evaluate a call-free expression to a concrete or symbolic value."""
        if isinstance(expr, Const):
            return expr.value & ((1 << 32) - 1) if expr.value < 0 else expr.value
        if isinstance(expr, StrConst):
            return state.string_address(expr.data)
        if isinstance(expr, Var):
            try:
                return frame.locals[expr.name]
            except KeyError:
                raise EngineInternalError(
                    "use of undefined variable %r in %s"
                    % (expr.name, frame.function)) from None
        if isinstance(expr, BinExpr):
            left = self.eval_expr(state, frame, expr.left)
            right = self.eval_expr(state, frame, expr.right)
            if expr.op in (BinaryOp.DIV, BinaryOp.MOD):
                self._check_divisor(state, right)
            return binop(expr.op, left, right)
        if isinstance(expr, UnExpr):
            return unop(expr.op, self.eval_expr(state, frame, expr.operand))
        if isinstance(expr, Index):
            return self._eval_load(state, frame, expr)
        if isinstance(expr, CallExpr):
            raise EngineInternalError(
                "call expression survived lowering: %r" % (expr,))
        raise EngineInternalError("unknown expression node %r" % (expr,))

    def _eval_load(self, state: ExecutionState, frame: Frame, expr: Index) -> Value:
        base = self.eval_expr(state, frame, expr.base)
        offset = self.eval_expr(state, frame, expr.offset)
        base = self._concretize(state, base)
        obj, base_off, _ = state.resolve(base)

        if is_concrete(offset):
            return byte_value(obj.read_byte(base_off + offset))

        # Symbolic offset: constrain it in bounds (an offset that can only be
        # out of bounds is a definite memory error).  In-bounds accesses are
        # summarized with an ITE chain when the object is small, otherwise
        # the offset is concretized.
        offset32 = to_expr(offset, 32)
        limit = E.bv_const(obj.size - base_off, 32)
        in_bounds = simplify(E.ult(offset32, limit))
        if not self._feasible(state, in_bounds):
            raise MemoryError_(
                "out-of-bounds read from %s (symbolic offset)"
                % (obj.name or hex(obj.address)), address=base)
        state.add_constraint(in_bounds)
        size = obj.size
        if size - base_off <= 64:
            result: Value = 0
            offset_expr = to_expr(offset, 32)
            for i in range(size - base_off):
                cell = byte_value(obj.read_byte(base_off + i))
                cond = E.eq(offset_expr, E.bv_const(i, 32))
                result = simplify(E.ite(cond, to_expr(cell, 8), to_expr(result, 8)))
            return result
        concrete_offset = self._concretize(state, offset)
        return byte_value(obj.read_byte(base_off + concrete_offset))

    def _check_divisor(self, state: ExecutionState, divisor: Value) -> None:
        """Flag divisions whose divisor is (or must be) zero on this path.

        A concrete zero divisor is a definite bug.  A symbolic divisor is a
        bug when the path constraint forces it to zero; when it merely *may*
        be zero the division goes through with KLEE's unsigned semantics (the
        zero case surfaces once a branch pins the divisor down).
        """
        if is_concrete(divisor):
            if divisor == 0:
                raise DivisionByZeroError("division by zero")
            return
        nonzero = simplify(E.ne(to_expr(divisor, divisor.width),
                                E.bv_const(0, divisor.width)))
        if not self._feasible(state, nonzero):
            raise DivisionByZeroError("division by a divisor constrained to zero")

    def _concretize(self, state: ExecutionState, value: Value) -> int:
        if is_concrete(value):
            return value
        model = self.solver.get_model(state.path_constraints)
        concrete = int(model.evaluate(value)) if model is not None else 0
        state.add_constraint(E.eq(to_expr(value, value.width),
                                  E.bv_const(concrete, value.width)))
        return concrete

    # -- feasibility ----------------------------------------------------------------

    def _feasible(self, state: ExecutionState, condition) -> bool:
        return self.solver.is_satisfiable(state.path_constraints + [condition])

    # -- instruction execution ---------------------------------------------------------

    def execute_instruction(self, state: ExecutionState) -> List[ExecutionState]:
        """Execute one instruction of the state's current thread.

        Returns the ordered list of resulting states (the input state is
        always included, possibly terminated).  All bookkeeping (coverage,
        instruction counters) is applied to every resulting state.
        """
        thread = state.current_thread
        frame = thread.top
        function = state.program.function(frame.function)
        if frame.pc >= len(function.instructions):
            raise EngineInternalError(
                "program counter %d out of range in %s" % (frame.pc, frame.function))
        instr = function.instructions[frame.pc]

        state.instructions_executed += 1
        state.coverage.add(instr.line)
        state.depth += 1

        try:
            if instr.opcode == Opcode.ASSIGN:
                return self._exec_assign(state, frame, instr)
            if instr.opcode == Opcode.STORE:
                return self._exec_store(state, frame, instr)
            if instr.opcode == Opcode.BRANCH:
                return self._exec_branch(state, frame, instr)
            if instr.opcode == Opcode.JUMP:
                frame.pc = instr.target
                return [state]
            if instr.opcode == Opcode.CALL:
                return self._exec_call(state, thread, frame, instr)
            if instr.opcode == Opcode.RET:
                return self._exec_ret(state, thread, frame, instr)
            if instr.opcode == Opcode.ASSERT:
                return self._exec_assert(state, frame, instr)
        except MemoryError_ as exc:
            return [self._terminate_error(state, BugKind.MEMORY_ERROR, str(exc), instr)]
        except DivisionByZeroError as exc:
            return [self._terminate_error(state, BugKind.DIVISION_BY_ZERO,
                                          str(exc), instr)]
        except NativeBug as exc:
            return [self._terminate_error(state, exc.kind, exc.message, instr)]
        except ExitProcess as exc:
            return [self._exit_process(state, exc.code)]
        except ExitState as exc:
            state.terminate(exc.code)
            return [state]
        raise EngineInternalError("unknown opcode %r" % (instr.opcode,))

    # -- opcode handlers ------------------------------------------------------------------

    def _exec_assign(self, state: ExecutionState, frame: Frame,
                     instr: Instruction) -> List[ExecutionState]:
        frame.locals[instr.dest] = self.eval_expr(state, frame, instr.expr)
        frame.pc += 1
        return [state]

    def _exec_store(self, state: ExecutionState, frame: Frame,
                    instr: Instruction) -> List[ExecutionState]:
        base = self._concretize(state, self.eval_expr(state, frame, instr.base))
        offset = self.eval_expr(state, frame, instr.offset)
        value = byte_value(self.eval_expr(state, frame, instr.value))
        obj, base_off, is_shared = state.resolve(base)

        if is_concrete(offset):
            self._store_byte(state, base, offset, value)
            frame.pc += 1
            return [state]

        # Symbolic offset: fork an error state if out-of-bounds is feasible.
        successors: List[ExecutionState] = []
        offset_expr = to_expr(offset, 32)
        limit = E.bv_const(obj.size - base_off, 32)
        oob = simplify(E.uge(offset_expr, limit))
        in_bounds = simplify(E.ult(offset_expr, limit))

        oob_feasible = self._feasible(state, oob)
        in_feasible = self._feasible(state, in_bounds)

        err_message = ("out-of-bounds write to %s (symbolic offset)"
                       % (obj.name or hex(obj.address)))
        if in_feasible and oob_feasible:
            state.forks += 1
            err_state = state.fork()
            # In-bounds continuation (fork index 0).
            state.add_constraint(in_bounds)
            state.fork_trace.append(0)
            concrete_offset = self._concretize(state, offset)
            self._store_byte(state, base, concrete_offset, value)
            frame.pc += 1
            successors.append(state)
            # Out-of-bounds error path (fork index 1).
            err_state.add_constraint(oob)
            err_state.fork_trace.append(1)
            successors.append(self._terminate_error(
                err_state, BugKind.MEMORY_ERROR, err_message, instr))
            return successors
        if in_feasible:
            state.add_constraint(in_bounds)
            concrete_offset = self._concretize(state, offset)
            self._store_byte(state, base, concrete_offset, value)
            frame.pc += 1
            return [state]
        if oob_feasible:
            state.add_constraint(oob)
            return [self._terminate_error(state, BugKind.MEMORY_ERROR,
                                          err_message, instr)]
        return [self._terminate_error(state, BugKind.MEMORY_ERROR,
                                      "store with infeasible bounds", instr)]

    def _store_byte(self, state: ExecutionState, base: int, offset: int,
                    value: Value) -> None:
        state.mem_write(base, offset, value)

    def _exec_branch(self, state: ExecutionState, frame: Frame,
                     instr: Instruction) -> List[ExecutionState]:
        cond_value = self.eval_expr(state, frame, instr.expr)
        if is_concrete(cond_value):
            frame.pc = instr.target if cond_value != 0 else instr.false_target
            return [state]

        true_cond = truth_condition(cond_value)
        false_cond = false_condition(cond_value)
        can_true = self._feasible(state, true_cond)
        can_false = self._feasible(state, false_cond)

        if can_true and can_false:
            state.forks += 1
            false_state = state.fork()
            # True branch continues in the original state (fork index 0).
            state.add_constraint(true_cond)
            state.fork_trace.append(0)
            frame.pc = instr.target
            # False branch in the clone (fork index 1).
            false_state.add_constraint(false_cond)
            false_state.fork_trace.append(1)
            false_state.current_thread.top.pc = instr.false_target
            return [state, false_state]
        if can_true:
            state.add_constraint(true_cond)
            frame.pc = instr.target
            return [state]
        if can_false:
            state.add_constraint(false_cond)
            frame.pc = instr.false_target
            return [state]
        # Neither side feasible: the path constraint itself became
        # unsatisfiable (possible only after an "unknown" solver verdict).
        state.terminate(0)
        return [state]

    def _exec_call(self, state: ExecutionState, thread: Thread, frame: Frame,
                   instr: Instruction) -> List[ExecutionState]:
        args = [self.eval_expr(state, frame, a) for a in instr.args]
        name = instr.name

        if name in state.program.functions:
            if len(thread.stack) >= self.config.max_call_depth:
                return [self._terminate_error(
                    state, BugKind.STACK_OVERFLOW,
                    "call depth limit (%d) exceeded calling %s"
                    % (self.config.max_call_depth, name), instr)]
            callee = state.program.function(name)
            locals_ = {p: (args[i] if i < len(args) else 0)
                       for i, p in enumerate(callee.params)}
            frame.pc += 1
            thread.stack.append(Frame(name, 0, locals_, return_dest=instr.dest))
            return [state]

        handler = self.natives.lookup(name)
        if handler is None:
            raise EngineInternalError("call to unknown function %r" % name)

        ctx = NativeContext(self.executor, state, args, instr)
        try:
            result = handler(ctx)
        except Block as blocked:
            # Sleep and retry: the pc is left pointing at the CALL, so the
            # call re-executes when the thread is woken.
            if blocked.wait_list is None:
                thread.status = ThreadStatus.SLEEPING
            else:
                state.sleep_on(blocked.wait_list, thread)
            state.options["force_reschedule"] = True
            return [state]

        if isinstance(result, NativeFork):
            return self._apply_native_fork(state, instr, result)

        value = 0 if result is None else result
        if instr.dest is not None:
            frame.locals[instr.dest] = value
        frame.pc += 1
        return [state]

    def _apply_native_fork(self, state: ExecutionState, instr: Instruction,
                           fork: NativeFork) -> List[ExecutionState]:
        feasible: List[Tuple[int, object]] = []
        for branch in fork.branches:
            if branch.condition is None or self._feasible(state, branch.condition):
                feasible.append(branch)
        if not feasible:
            state.terminate(0)
            return [state]

        multi = len(feasible) > 1
        if multi:
            state.forks += 1
        # Clone all successors from the unmodified state first; applying a
        # branch mutates its successor, which must not leak into the others.
        successors: List[ExecutionState] = [
            state if index == 0 else state.fork()
            for index in range(len(feasible))
        ]
        for index, (branch, succ) in enumerate(zip(feasible, successors)):
            if branch.condition is not None:
                succ.add_constraint(branch.condition)
            if multi:
                succ.fork_trace.append(index)
            if branch.side_effect is not None:
                branch.side_effect(succ)
            succ_frame = succ.current_thread.top
            if instr.dest is not None:
                succ_frame.locals[instr.dest] = branch.return_value
            succ_frame.pc += 1
        return successors

    def _exec_ret(self, state: ExecutionState, thread: Thread, frame: Frame,
                  instr: Instruction) -> List[ExecutionState]:
        value = self.eval_expr(state, frame, instr.expr) if instr.expr is not None else 0
        thread.stack.pop()
        if thread.stack:
            caller = thread.top
            if frame.return_dest is not None:
                caller.locals[frame.return_dest] = value
            return [state]

        # The thread's bottom frame returned: the thread terminates.
        thread.status = ThreadStatus.TERMINATED
        thread.exit_value = value
        for pid, tid in thread.joiners:
            joiner = state.processes[pid].threads.get(tid)
            if joiner is not None and joiner.status == ThreadStatus.SLEEPING:
                joiner.status = ThreadStatus.ENABLED
                joiner.wait_list = None
        thread.joiners = []

        if thread.pid == 1 and thread.tid == 0:
            # main() returned: the whole symbolic test finishes.
            state.terminate(value)
            return [state]
        state.options["force_reschedule"] = True
        return [state]

    def _exec_assert(self, state: ExecutionState, frame: Frame,
                     instr: Instruction) -> List[ExecutionState]:
        cond_value = self.eval_expr(state, frame, instr.expr)
        if is_concrete(cond_value):
            if cond_value != 0:
                frame.pc += 1
                return [state]
            return [self._terminate_error(state, BugKind.ASSERTION_FAILURE,
                                          instr.message or "assertion failed", instr)]

        holds = truth_condition(cond_value)
        fails = false_condition(cond_value)
        can_hold = self._feasible(state, holds)
        can_fail = self._feasible(state, fails)

        if can_hold and not can_fail:
            state.add_constraint(holds)
            frame.pc += 1
            return [state]
        if can_fail and not can_hold:
            state.add_constraint(fails)
            return [self._terminate_error(state, BugKind.ASSERTION_FAILURE,
                                          instr.message or "assertion failed", instr)]
        # Both possible: continue on the holding side, report the failing side.
        state.forks += 1
        fail_state = state.fork()
        state.add_constraint(holds)
        state.fork_trace.append(0)
        frame.pc += 1
        fail_state.add_constraint(fails)
        fail_state.fork_trace.append(1)
        failed = self._terminate_error(fail_state, BugKind.ASSERTION_FAILURE,
                                       instr.message or "assertion failed", instr)
        return [state, failed]

    # -- termination helpers -------------------------------------------------------------

    def _terminate_error(self, state: ExecutionState, kind: BugKind, message: str,
                         instr: Optional[Instruction]) -> ExecutionState:
        in_function = None
        if state.is_running and state.current and state.current_thread.stack:
            in_function = state.current_thread.top.function
        report = BugReport(
            kind=kind,
            message=message,
            state_id=state.state_id,
            line=instr.line if instr is not None else None,
            function=in_function,
        )
        state.terminate_error(report)
        return state

    def _exit_process(self, state: ExecutionState, code: Value) -> ExecutionState:
        process = state.current_process
        process.alive = False
        process.exit_code = code
        for thread in process.threads.values():
            thread.status = ThreadStatus.TERMINATED
        if not any(t.status != ThreadStatus.TERMINATED for t in state.all_threads()):
            state.terminate(code)
        else:
            state.options["force_reschedule"] = True
        return state
