"""Engine configuration knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class EngineConfig:
    """Limits and policies for a single symbolic execution engine instance.

    The defaults mirror what the paper's experiments rely on:

    * ``max_instructions_per_path`` implements the hang/infinite-loop
      detector of §7.3.3 (memcached UDP bug): a path that exceeds the limit
      is terminated with an ``infinite_loop`` bug report.
    * ``fork_on_schedule`` enables forking the state for every possible next
      thread at scheduling points (§4.2), useful for concurrency bugs but a
      significant source of path explosion, hence off by default.
    * ``max_forks`` and ``max_states`` bound the exploration for use in unit
      tests and benchmarks.
    """

    max_instructions_per_path: Optional[int] = None
    max_forks: Optional[int] = None
    max_states: Optional[int] = None
    max_call_depth: int = 256
    fork_on_schedule: bool = False
    detect_deadlocks: bool = True
    default_int_width: int = 32
    max_symbolic_malloc: int = 4096
    scheduler_policy: str = "round_robin"
    max_loop_concretizations: int = 64

    def copy(self) -> "EngineConfig":
        return EngineConfig(
            max_instructions_per_path=self.max_instructions_per_path,
            max_forks=self.max_forks,
            max_states=self.max_states,
            max_call_depth=self.max_call_depth,
            fork_on_schedule=self.fork_on_schedule,
            detect_deadlocks=self.detect_deadlocks,
            default_int_width=self.default_int_width,
            max_symbolic_malloc=self.max_symbolic_malloc,
            scheduler_policy=self.scheduler_policy,
            max_loop_concretizations=self.max_loop_concretizations,
        )
