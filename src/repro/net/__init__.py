"""Network transports for cross-machine clusters.

The paper evaluated Cloud9 on large EC2 clusters; :mod:`repro.distrib`
reproduces the coordinator/worker protocol but carried it on one host's
multiprocessing queues.  This package abstracts the carrier:

* :mod:`repro.net.framing` -- length-prefixed frames with size limits and
  corrupt-frame containment (the TCP wire format).
* :mod:`repro.net.transport` -- the :class:`~repro.net.transport.Transport`
  interface plus both implementations: the in-host mp-queue pair
  (:class:`~repro.net.transport.QueuePairTransport`, unchanged behavior)
  and framed pickles over a socket
  (:class:`~repro.net.transport.TcpTransport`), with the hello/welcome
  handshake messages and protocol version.
* :mod:`repro.net.heartbeat` -- ping-based liveness replacing
  ``Process.is_alive()`` across machines.
* :mod:`repro.net.server` -- the coordinator-side listener and
  pending-agent pool (:class:`~repro.net.server.AgentServer`).
* :mod:`repro.net.agent` -- the remote worker agent
  (``python -m repro.net.agent --connect HOST:PORT``).  Not imported here:
  it pulls in the worker stack, which would cycle back through
  :mod:`repro.distrib`.

Used by :class:`~repro.distrib.cluster.ProcessCloud9Cluster` under
``ProcessClusterConfig(transport="tcp", ...)``, surfaced as
``backend="tcp"`` in :mod:`repro.api.runner`.
"""

from repro.net.framing import (
    DEFAULT_MAX_FRAME_SIZE,
    FrameCorruptError,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    encode_frame,
)
from repro.net.heartbeat import HeartbeatMonitor, HeartbeatSender
from repro.net.server import AgentServer, NoPendingAgent
from repro.net.transport import (
    PROTOCOL_VERSION,
    HelloMessage,
    QueuePairTransport,
    ReceiveTimeout,
    RejectMessage,
    TcpTransport,
    Transport,
    TransportClosed,
    TransportError,
    WelcomeMessage,
)

__all__ = [
    "DEFAULT_MAX_FRAME_SIZE", "FrameError", "FrameTooLarge",
    "FrameCorruptError", "FrameDecoder", "encode_frame",
    "HeartbeatMonitor", "HeartbeatSender",
    "AgentServer", "NoPendingAgent",
    "PROTOCOL_VERSION", "HelloMessage", "WelcomeMessage", "RejectMessage",
    "Transport", "QueuePairTransport", "TcpTransport",
    "TransportError", "TransportClosed", "ReceiveTimeout",
]
