"""Length-prefixed frames: the wire format of the TCP transport.

A frame is a 4-byte big-endian payload length followed by that many payload
bytes.  The payload of a normal frame is a pickled message object (the same
command/reply dataclasses :mod:`repro.distrib.messages` already sends over
multiprocessing queues); a *zero-length* payload is a heartbeat ping -- the
cheapest possible "still alive" signal, decodable without touching pickle.

Hardening lives at this layer:

* every declared payload length is checked against a configurable
  ``max_frame_size`` *before* any allocation, on both the sending and the
  receiving side, so one runaway (or hostile) peer cannot balloon the
  coordinator's memory;
* :class:`FrameDecoder` is incremental -- TCP gives back arbitrary chunks,
  so it must reassemble frames from partial reads and split coalesced ones;
* pickling failures are wrapped in :class:`FrameCorruptError` so the caller
  can fail *one peer* with a clear message instead of crashing the run.
"""

from __future__ import annotations

import pickle
import struct
from typing import List, Optional

__all__ = [
    "DEFAULT_MAX_FRAME_SIZE",
    "FrameError",
    "FrameTooLarge",
    "FrameCorruptError",
    "encode_frame",
    "encode_message",
    "decode_message",
    "FrameDecoder",
]

#: Generous ceiling: a JobTree payload of tens of thousands of jobs encodes
#: to well under a megabyte; anything near this size is a bug or an attack.
DEFAULT_MAX_FRAME_SIZE = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size

#: The complete heartbeat-ping frame: a zero-length payload.
PING_FRAME = _HEADER.pack(0)


class FrameError(RuntimeError):
    """Something on the wire violated the framing protocol."""


class FrameTooLarge(FrameError):
    """A frame declared (or would declare) a payload over the size limit."""


class FrameCorruptError(FrameError):
    """A frame's payload failed to unpickle into a message object."""


def encode_frame(payload: bytes,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> bytes:
    """Wrap raw payload bytes in a length header."""
    if len(payload) > max_frame_size:
        raise FrameTooLarge(
            "refusing to send a %d-byte frame (max_frame_size=%d)"
            % (len(payload), max_frame_size))
    return _HEADER.pack(len(payload)) + payload


def encode_message(message: object,
                   max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> bytes:
    """Pickle a message object into a complete frame."""
    try:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise FrameCorruptError(
            "message %r does not pickle: %s" % (type(message).__name__, exc)
        ) from exc
    return encode_frame(payload, max_frame_size=max_frame_size)


def decode_message(payload: bytes) -> object:
    """Unpickle one frame payload back into a message object."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameCorruptError(
            "corrupt frame (%d bytes): %s" % (len(payload), exc)) from exc


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed it whatever ``recv`` returned; it yields the payloads of every
    frame completed so far.  Partial headers, partial payloads and several
    coalesced frames per chunk are all handled; zero-length payloads
    (heartbeat pings) come out as ``b""``.
    """

    def __init__(self, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE):
        self.max_frame_size = max_frame_size
        self._buffer = bytearray()
        self._expected: Optional[int] = None  # payload length being read

    @property
    def buffered_bytes(self) -> int:
        """Bytes received but not yet part of a completed frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb one chunk; return the payloads of every completed frame."""
        self._buffer.extend(data)
        payloads: List[bytes] = []
        while True:
            if self._expected is None:
                if len(self._buffer) < HEADER_SIZE:
                    break
                (length,) = _HEADER.unpack(bytes(self._buffer[:HEADER_SIZE]))
                if length > self.max_frame_size:
                    raise FrameTooLarge(
                        "peer declared a %d-byte frame (max_frame_size=%d)"
                        % (length, self.max_frame_size))
                del self._buffer[:HEADER_SIZE]
                self._expected = length
            if len(self._buffer) < self._expected:
                break
            payloads.append(bytes(self._buffer[:self._expected]))
            del self._buffer[:self._expected]
            self._expected = None
        return payloads
