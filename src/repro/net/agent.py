"""The remote worker agent: ``python -m repro.net.agent --connect HOST:PORT``.

Run this on any machine that can reach the coordinator.  The agent dials in,
introduces itself (:class:`~repro.net.transport.HelloMessage`, protocol
version checked by the coordinator), waits in the coordinator's pending pool
until admitted, and on the :class:`~repro.net.transport.WelcomeMessage`
rebuilds the target locally from the spec registry -- exactly what a forked
:func:`~repro.distrib.worker.worker_main` process does, except the
``(spec_name, spec_params)`` pair arrives over the wire instead of as
process arguments.  From then on it runs the unchanged §3 worker loop
(:class:`~repro.distrib.worker.DistribWorker`): explore one budget per
round, report status, export/import path-encoded jobs.

A daemon thread sends heartbeat pings every ``heartbeat_interval`` seconds
(from the welcome), so the coordinator can tell "busy exploring" from
"dead" without an OS-level ``is_alive``.  Any exception -- while rebuilding
the spec or while handling a command -- ships back as an ``ErrorReply`` so
the coordinator fails *this worker* with a real traceback; a vanished
coordinator (EOF on the socket) just ends the agent.
"""

from __future__ import annotations

import argparse
import importlib
import os
import socket
import sys
import traceback
from typing import Optional, Sequence

from repro.net.framing import DEFAULT_MAX_FRAME_SIZE
from repro.net.heartbeat import HeartbeatSender
from repro.net.transport import (
    PROTOCOL_COMPAT_VERSION,
    PROTOCOL_VERSION,
    HelloMessage,
    ReceiveTimeout,
    RejectMessage,
    TcpTransport,
    TransportError,
    WelcomeMessage,
    parse_address,
)

__all__ = ["AgentRejected", "run_agent", "main"]


class AgentRejected(RuntimeError):
    """The coordinator refused this agent during the handshake."""


def _agent_name() -> str:
    return "%s:%d" % (socket.gethostname(), os.getpid())


def run_agent(connect: str, spec_modules: Sequence[str] = (),
              max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
              dial_timeout: float = 30.0,
              admission_timeout: Optional[float] = None) -> int:
    """Dial the coordinator and serve as one worker until stopped.

    Returns the number of commands served (useful to tests; the CLI ignores
    it).  ``admission_timeout`` bounds the wait in the pending pool (None =
    wait for admission indefinitely, the right default for a standby pool
    an autoscaler admits from).  Raises :class:`AgentRejected` on a
    handshake refusal and :class:`TransportError` if the coordinator
    vanishes before admission.
    """
    host, port = parse_address(connect)
    sock = socket.create_connection((host, port), timeout=dial_timeout)
    sock.settimeout(None)
    transport = TcpTransport(sock, peer="coordinator %s:%d" % (host, port),
                             max_frame_size=max_frame_size)
    transport.start_receiver()
    sender = None
    served = 0
    try:
        transport.send(HelloMessage(protocol_version=PROTOCOL_VERSION,
                                    agent=_agent_name()))
        try:
            welcome = transport.recv(timeout=admission_timeout)
        except ReceiveTimeout:
            raise TransportError(
                "coordinator %s:%d did not admit this agent within %.1fs"
                % (host, port, admission_timeout)) from None
        if isinstance(welcome, RejectMessage):
            raise AgentRejected(welcome.reason)
        if not isinstance(welcome, WelcomeMessage):
            raise TransportError("coordinator sent %r instead of a welcome"
                                 % (welcome,))
        if welcome.protocol_version < PROTOCOL_COMPAT_VERSION:
            # The mirror of the server-side window: this agent only knows
            # how to omit fields back to its own compat floor.
            raise AgentRejected(
                "coordinator speaks protocol %d but this agent requires "
                ">= %d" % (welcome.protocol_version,
                           PROTOCOL_COMPAT_VERSION))
        transport.max_frame_size = welcome.max_frame_size
        # Pings start *before* the (possibly slow) spec rebuild, so a big
        # target cannot read as a dead newcomer.
        sender = HeartbeatSender(transport.send_ping,
                                 interval=welcome.heartbeat_interval).start()
        worker_id = welcome.worker_id
        # Late imports: pulling in the engine stack only once we are
        # actually admitted keeps the dial-and-wait phase cheap.
        from repro.distrib.messages import ErrorReply, StopCommand
        try:
            for module_name in tuple(spec_modules) + tuple(welcome.spec_modules):
                importlib.import_module(module_name)
            from repro.distrib import specs
            from repro.distrib.worker import DistribWorker
            from repro.distrib.messages import ReadyReply
            test = specs.resolve_test(welcome.spec_name,
                                      **dict(welcome.spec_params))
            worker = DistribWorker(worker_id, test, strategy=welcome.strategy)
            transport.send(ReadyReply(worker_id=worker_id,
                                      line_count=worker.line_count))
        except TransportError:
            raise
        except BaseException:
            transport.send(ErrorReply(worker_id=worker_id,
                                      details=traceback.format_exc()))
            return served
        while True:
            try:
                command = transport.recv()
            except TransportError:
                break  # coordinator hung up; nothing left to serve
            if isinstance(command, StopCommand):
                break
            try:
                reply = worker.handle(command)
            except TransportError:
                raise
            except BaseException:
                transport.send(ErrorReply(worker_id=worker_id,
                                          details=traceback.format_exc()))
                break
            transport.send(reply)
            served += 1
        return served
    finally:
        if sender is not None:
            sender.stop()
        transport.close(timeout=0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.agent",
        description="Worker agent: dial into a listening repro coordinator "
                    "and serve as one cluster worker.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address (ProcessClusterConfig("
                             "transport='tcp', listen=...))")
    parser.add_argument("--spec-module", action="append", default=[],
                        metavar="MODULE",
                        help="extra module to import before resolving the "
                             "spec (repeatable; for specs registered outside "
                             "repro.targets)")
    parser.add_argument("--max-frame-size", type=int,
                        default=DEFAULT_MAX_FRAME_SIZE, metavar="BYTES",
                        help="reject wire frames larger than this "
                             "(default %(default)d)")
    args = parser.parse_args(argv)
    try:
        run_agent(args.connect, spec_modules=args.spec_module,
                  max_frame_size=args.max_frame_size)
    except AgentRejected as exc:
        print("agent rejected: %s" % exc, file=sys.stderr)
        return 2
    except (TransportError, OSError) as exc:
        print("agent: %s" % exc, file=sys.stderr)
        return 1
    return 0


def _local_agent_main(connect: str, spec_modules: Sequence[str],
                      max_frame_size: int) -> None:
    """Process entry point for coordinator-spawned loopback agents
    (``ProcessClusterConfig(spawn_local_agents=True)``)."""
    try:
        run_agent(connect, spec_modules=spec_modules,
                  max_frame_size=max_frame_size)
    except (AgentRejected, TransportError, OSError):
        pass  # the coordinator sees the death through the transport


if __name__ == "__main__":  # pragma: no cover - exercised by the CLI smoke
    sys.exit(main())
