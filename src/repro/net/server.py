"""Coordinator-side listener: where remote worker agents dial in.

The paper's clusters grow by *workers joining*, not by the coordinator
reaching out: an operator (or autoscaler) starts agents on as many machines
as desired and points them all at one coordinator address.  This module is
that rendezvous.  :class:`AgentServer` listens on a TCP address, performs
the protocol handshake with every connection (hello in, version checked,
reject or park), and keeps handshaken-but-unassigned connections in a
*pending pool*.  The cluster's ``add_worker`` on the TCP path means "admit
the next agent from this pool" -- so scale-up is an admission, and the PR 5
autoscaler scales against remote hosts without knowing it.

Admission (:meth:`AgentServer.admit`) is where an agent becomes a worker:
it is assigned its worker id and told, via :class:`WelcomeMessage`, which
registered spec to rebuild -- from then on the coordinator drives it with
the exact same command/reply protocol as a local worker process.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro.net.framing import (
    DEFAULT_MAX_FRAME_SIZE,
    FrameDecoder,
    FrameError,
    decode_message,
)
from repro.net.heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MISS_THRESHOLD,
    HeartbeatMonitor,
)
from repro.net.transport import (
    PROTOCOL_COMPAT_VERSION,
    PROTOCOL_VERSION,
    HelloMessage,
    RejectMessage,
    TcpTransport,
    TransportError,
    WelcomeMessage,
)

__all__ = ["AgentServer", "NoPendingAgent"]


class NoPendingAgent(RuntimeError):
    """``admit`` found no handshaken agent within its timeout."""


class AgentServer:
    """Listen for worker agents; handshake them; hand them out on demand.

    Parameters mirror what every admitted agent must be told: the spec to
    rebuild (name, params, strategy, extra modules) and the channel knobs
    (heartbeat cadence, frame-size ceiling).  ``listen`` is ``"host:port"``
    with port 0 meaning "pick a free port" -- the bound address is on
    :attr:`address` immediately after construction, so callers can print or
    publish it before any agent exists.
    """

    def __init__(self, spec_name: str,
                 spec_params: Optional[Dict[str, object]] = None,
                 strategy: Optional[str] = None,
                 spec_modules: Tuple[str, ...] = (),
                 listen: str = "127.0.0.1:0",
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_miss_threshold: int = DEFAULT_MISS_THRESHOLD,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
                 handshake_timeout: float = 5.0):
        from repro.net.transport import parse_address
        self.spec_name = spec_name
        self.spec_params = dict(spec_params or {})
        self.strategy = strategy
        self.spec_modules = tuple(spec_modules)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_miss_threshold = heartbeat_miss_threshold
        self.max_frame_size = max_frame_size
        self.handshake_timeout = handshake_timeout
        host, port = parse_address(listen)
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(0.2)
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._pending: "queue_module.Queue[TcpTransport]" = queue_module.Queue()
        self._closed = threading.Event()
        #: Total agents admitted as workers over this server's lifetime.
        self.agents_admitted = 0
        #: Connections refused during the handshake (version mismatch,
        #: malformed hello) -- visible for diagnostics and tests.
        self.handshakes_rejected = 0
        self._acceptor = threading.Thread(
            target=self._accept_loop,
            name="agent-server %s:%d" % self.address, daemon=True)
        self._acceptor.start()

    # -- accepting ----------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Handshaken agents waiting to be admitted."""
        return self._pending.qsize()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            try:
                self._handshake(conn, "%s:%d" % (addr[0], addr[1]))
            except Exception:
                # One bad connection must never take the acceptor down.
                try:
                    conn.close()
                except OSError:
                    pass

    def _handshake(self, conn: socket.socket, peer: str) -> None:
        """Read the hello, verify the version, park or reject."""
        conn.settimeout(self.handshake_timeout)
        decoder = FrameDecoder(max_frame_size=self.max_frame_size)
        try:
            hello = self._read_hello(conn, decoder)
        except (OSError, FrameError):
            conn.close()
            self.handshakes_rejected += 1
            return
        transport = TcpTransport(conn, peer="agent %s" % peer,
                                 max_frame_size=self.max_frame_size)
        if (not isinstance(hello, HelloMessage)
                or not (PROTOCOL_COMPAT_VERSION
                        <= hello.protocol_version <= PROTOCOL_VERSION)):
            got = (hello.protocol_version
                   if isinstance(hello, HelloMessage) else repr(hello))
            try:
                transport.send(RejectMessage(
                    reason="protocol version mismatch: coordinator accepts "
                           "%d..%d, agent sent %s"
                           % (PROTOCOL_COMPAT_VERSION, PROTOCOL_VERSION,
                              got)))
            except TransportError:
                pass
            transport.close(timeout=0)
            self.handshakes_rejected += 1
            return
        if hello.agent:
            transport.peer = "agent %s (%s)" % (peer, hello.agent)
        conn.settimeout(None)
        self._pending.put(transport)

    def _read_hello(self, conn: socket.socket, decoder: FrameDecoder):
        """Blocking read of exactly one frame (the hello) from a raw socket."""
        while True:
            data = conn.recv(TcpTransport.RECV_CHUNK)
            if not data:
                raise OSError("connection closed during handshake")
            payloads = decoder.feed(data)
            if payloads:
                return decode_message(payloads[0])

    # -- admission ----------------------------------------------------------------

    def admit(self, worker_id: int, timeout: float = 30.0) -> TcpTransport:
        """Turn the next pending agent into worker ``worker_id``.

        Sends the :class:`WelcomeMessage` (spec, strategy, heartbeat
        cadence), arms the heartbeat monitor, and starts the receiver
        thread.  An agent that hung up while waiting in the pool is skipped.
        Raises :class:`NoPendingAgent` when no agent dials in within
        ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise NoPendingAgent(
                    "no worker agent dialed into %s:%d within %.1fs -- "
                    "start one with: python -m repro.net.agent "
                    "--connect %s:%d"
                    % (self.address + (timeout,) + self.address))
            try:
                transport = self._pending.get(timeout=min(remaining, 0.5))
            except queue_module.Empty:
                continue
            monitor = HeartbeatMonitor(
                interval=self.heartbeat_interval,
                miss_threshold=self.heartbeat_miss_threshold)
            transport.heartbeat = monitor
            monitor.beat()
            try:
                transport.send(WelcomeMessage(
                    protocol_version=PROTOCOL_VERSION,
                    worker_id=worker_id,
                    spec_name=self.spec_name,
                    spec_params=dict(self.spec_params),
                    strategy=self.strategy,
                    spec_modules=self.spec_modules,
                    heartbeat_interval=self.heartbeat_interval,
                    max_frame_size=self.max_frame_size))
            except TransportError:
                transport.close(timeout=0)
                continue  # vanished while pending; try the next one
            transport.start_receiver()
            self.agents_admitted += 1
            return transport

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting and drop every still-pending connection."""
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._acceptor.is_alive():
            self._acceptor.join(timeout=2.0)
        while True:
            try:
                transport = self._pending.get_nowait()
            except queue_module.Empty:
                break
            transport.close(timeout=0)
