"""Heartbeat liveness: pings over the transport instead of ``is_alive()``.

On one host the coordinator can ask the OS whether a worker process is alive
(``Process.is_alive()``); across machines there is no such oracle -- only
traffic.  The agent therefore sends a tiny ping frame every
``interval`` seconds from a dedicated thread (so long explore rounds, which
keep the worker's main thread busy for seconds at a time, do not read as
death), and the coordinator feeds every received frame -- pings and real
replies alike -- into a :class:`HeartbeatMonitor`.  A peer that stays silent
for ``interval * miss_threshold`` seconds is declared dead, which flows into
the exact same ``_WorkerFailure`` -> frontier-ledger recovery machinery a
crashed local process does.

The monitor takes its clock as a parameter so the miss logic is testable
with a frozen clock, without sleeping in tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["HeartbeatMonitor", "HeartbeatSender",
           "DEFAULT_HEARTBEAT_INTERVAL", "DEFAULT_MISS_THRESHOLD"]

#: Seconds between pings.  Cheap (5 bytes each way is nothing next to a
#: single status reply), so the default errs on the side of fast detection.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Silent intervals tolerated before a peer is declared dead.  The product
#: ``interval * miss_threshold`` is the detection latency; the default
#: (0.5s x 10 = 5s) rides out GC pauses and scheduler hiccups comfortably.
DEFAULT_MISS_THRESHOLD = 10


class HeartbeatMonitor:
    """Tracks when a peer was last heard from and decides liveness."""

    def __init__(self, interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 miss_threshold: int = DEFAULT_MISS_THRESHOLD,
                 clock: Callable[[], float] = time.monotonic):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        self.interval = interval
        self.miss_threshold = miss_threshold
        self._clock = clock
        self._last_seen = clock()

    def beat(self) -> None:
        """Record traffic from the peer (a ping or any other frame)."""
        self._last_seen = self._clock()

    @property
    def last_seen(self) -> float:
        return self._last_seen

    def silence(self) -> float:
        """Seconds since the peer was last heard from."""
        return self._clock() - self._last_seen

    def misses(self) -> int:
        """Whole heartbeat intervals the peer has stayed silent for."""
        return int(self.silence() // self.interval)

    def is_alive(self) -> bool:
        return self.misses() < self.miss_threshold

    def describe_miss(self) -> str:
        return ("missed %d heartbeats (silent for %.1fs, interval %.2fs, "
                "threshold %d)" % (self.misses(), self.silence(),
                                   self.interval, self.miss_threshold))


class HeartbeatSender:
    """Agent-side ping pump: calls ``send_ping`` every ``interval`` seconds.

    Runs on a daemon thread so a wedged main loop cannot stop the pings (the
    whole point: liveness reflects the *process*, not one busy function).
    A failed send means the connection is gone; the thread just exits --
    the main loop will hit the same error on its next send or receive.
    """

    def __init__(self, send_ping: Callable[[], None],
                 interval: float = DEFAULT_HEARTBEAT_INTERVAL):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._send_ping = send_ping
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="heartbeat-sender", daemon=True)

    def start(self) -> "HeartbeatSender":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send_ping()
            except Exception:
                return

    def stop(self, join_timeout: float = 2.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=join_timeout)
