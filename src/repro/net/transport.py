"""The coordinator<->worker channel, abstracted.

The process cluster's protocol was message-based from day one: every command
gets exactly one reply, and everything crossing the boundary pickles
(:mod:`repro.distrib.messages`).  What varied was the *carrier* -- hardwired
multiprocessing queues.  This module names the carrier:

* :class:`Transport` -- what the coordinator needs from a channel to one
  worker: ``send``/``recv``, a liveness verdict, and teardown with the
  shutdown-escalation semantics the cluster already has.
* :class:`QueuePairTransport` -- the existing in-host mp-queue pair plus its
  worker process, refactored behind the interface with zero behavior change
  (liveness is still ``Process.is_alive()``, teardown is still
  join -> terminate -> kill plus queue draining).
* :class:`TcpTransport` -- length-prefixed framed pickles
  (:mod:`repro.net.framing`) over a socket, with heartbeat-based liveness
  (:mod:`repro.net.heartbeat`) and a receiver thread that turns wire faults
  (EOF, oversized or corrupt frames) into per-peer errors instead of
  coordinator crashes.

The handshake messages (:class:`HelloMessage` / :class:`WelcomeMessage` /
:class:`RejectMessage`) also live here: an agent dials in and says hello
with its protocol version; the coordinator either rejects the version or
welcomes it with a worker id and the spec to rebuild -- the same
``(spec_name, spec_params)`` pair :func:`repro.distrib.worker.worker_main`
receives as process arguments today, just travelling over the wire.
"""

from __future__ import annotations

import queue as queue_module
import select
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.framing import (
    DEFAULT_MAX_FRAME_SIZE,
    PING_FRAME,
    FrameDecoder,
    FrameError,
    decode_message,
    encode_message,
)
from repro.net.heartbeat import HeartbeatMonitor
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "PROTOCOL_VERSION", "PROTOCOL_COMPAT_VERSION",
    "HelloMessage", "WelcomeMessage", "RejectMessage",
    "TransportError", "TransportClosed", "ReceiveTimeout",
    "Transport", "QueuePairTransport", "TcpTransport",
    "parse_address", "reap_process",
]

#: Version of the coordinator<->agent wire protocol.  Bumped on any change
#: to the framing, the handshake, or the command/reply message set; the
#: handshake rejects mismatches so a stale agent fails fast with a clear
#: reason instead of desynchronizing mid-run.
#: v2: ExploreCommand.trace, DrainStatusCommand, StatusReply events and
#: cache_counters (the observability message set).
#: v3: FinalReply.latency -- the worker solver's query-latency histogram,
#: so the run-level solver_query p50/p99 covers process/tcp workers too.
PROTOCOL_VERSION = 3

#: Oldest protocol version whose agents may still join a campaign: the
#: coordinator admits any hello in
#: ``[PROTOCOL_COMPAT_VERSION, PROTOCOL_VERSION]``.  A purely additive
#: protocol change (new message fields with defaults) bumps
#: ``PROTOCOL_VERSION`` and leaves this floor behind; a breaking change
#: advances both.  The semver rule is enforced statically against
#: ``protocol.lock.json`` (PROTO004, :mod:`repro.analysis.protocol`).
PROTOCOL_COMPAT_VERSION = 3


# -- handshake messages ------------------------------------------------------------------


@dataclass(frozen=True)
class HelloMessage:
    """First frame an agent sends after connecting."""

    protocol_version: int
    agent: str = ""  # free-form peer description, e.g. "host:pid"


@dataclass(frozen=True)
class WelcomeMessage:
    """Coordinator's admission: identity plus everything needed to rebuild
    the target locally, exactly as a forked worker process receives it."""

    protocol_version: int
    worker_id: int
    spec_name: str
    spec_params: Dict[str, object] = field(default_factory=dict)
    strategy: Optional[str] = None
    spec_modules: Tuple[str, ...] = ()
    heartbeat_interval: float = 0.5
    max_frame_size: int = DEFAULT_MAX_FRAME_SIZE


@dataclass(frozen=True)
class RejectMessage:
    """Handshake refusal (version mismatch, malformed hello)."""

    reason: str
    protocol_version: int = PROTOCOL_VERSION


# -- errors ------------------------------------------------------------------------------


class TransportError(RuntimeError):
    """The channel to one peer failed (the peer, not the run, is lost)."""


class TransportClosed(TransportError):
    """The channel is closed: peer hung up or teardown already ran."""


class ReceiveTimeout(Exception):
    """``recv`` produced nothing within the caller's timeout (retryable)."""


# -- the interface -----------------------------------------------------------------------


class Transport:
    """One coordinator<->worker channel.

    ``send``/``recv`` move whole message objects; both raise
    :class:`TransportError` when the channel itself is broken (``recv``
    raises :class:`ReceiveTimeout` when merely idle).  ``is_alive`` is the
    liveness oracle the receive loop polls between timeouts -- process
    aliveness for the queue pair, heartbeat freshness for TCP.  ``close``
    tears the channel down, bounded by ``timeout`` at each escalation step.
    """

    #: Short human-readable peer name, used in every error message.
    peer: str = "?"
    #: ``"mp"`` or ``"tcp"`` -- which carrier this is.
    kind: str = "?"

    def send(self, message: object) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> object:
        raise NotImplementedError

    def is_alive(self) -> bool:
        raise NotImplementedError

    def liveness_error(self) -> str:
        """Why ``is_alive()`` is False (best effort; used in failure reports)."""
        return "peer %s is gone" % self.peer

    def close(self, timeout: float = 5.0) -> None:
        raise NotImplementedError


# -- helpers -----------------------------------------------------------------------------


def parse_address(address: str, default_host: str = "127.0.0.1"
                  ) -> Tuple[str, int]:
    """Parse ``"host:port"`` (or bare ``"port"``) into a (host, port) pair."""
    text = str(address).strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host.strip("[]") or default_host
    else:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError("bad address %r (expected HOST:PORT)" % (address,)
                         ) from None
    if not 0 <= port <= 65535:
        raise ValueError("bad port %d in address %r" % (port, address))
    return host, port


def reap_process(process, timeout: float = 5.0) -> None:
    """Join a child process, escalating join -> terminate -> kill."""
    process.join(timeout=timeout if process.is_alive() else 1.0)
    if process.is_alive():
        process.terminate()
        process.join(timeout=timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout=timeout)


# -- the in-host implementation ----------------------------------------------------------


class QueuePairTransport(Transport):
    """The original carrier: a worker process plus its mp-queue pair.

    Coordinator-side view: ``send`` puts on the command queue, ``recv`` gets
    from the reply queue, liveness is the OS's word on the child process,
    and ``close`` reaps the process (cooperative join, then terminate, then
    kill) and drains both queues so their feeder threads exit promptly.
    """

    kind = "mp"

    def __init__(self, process, command_queue, reply_queue):
        self.process = process
        self.command_queue = command_queue
        self.reply_queue = reply_queue
        self.peer = "worker process %s" % (getattr(process, "name", "?"),)

    def send(self, message: object) -> None:
        try:
            self.command_queue.put(message)
        except (OSError, ValueError) as exc:
            raise TransportClosed(
                "command queue to %s is closed: %s" % (self.peer, exc)
            ) from exc

    def recv(self, timeout: Optional[float] = None) -> object:
        try:
            return self.reply_queue.get(timeout=timeout)
        except queue_module.Empty:
            raise ReceiveTimeout from None
        except (OSError, ValueError, EOFError) as exc:
            raise TransportClosed(
                "reply queue from %s is closed: %s" % (self.peer, exc)
            ) from exc

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def liveness_error(self) -> str:
        return "died (exit code %r)" % (self.process.exitcode,)

    def close(self, timeout: float = 5.0) -> None:
        reap_process(self.process, timeout=timeout)
        for q in (self.command_queue, self.reply_queue):
            try:
                while True:
                    q.get_nowait()
            except (queue_module.Empty, OSError, ValueError, EOFError):
                pass
            q.close()


# -- the socket implementation -----------------------------------------------------------


class TcpTransport(Transport):
    """Framed pickles over one socket, with per-peer fault containment.

    A receiver thread reassembles frames (:class:`FrameDecoder`), feeds
    every arrival into the heartbeat monitor, answers pings by updating it,
    and parks decoded messages on an inbox queue that :meth:`recv` serves.
    Any wire fault -- EOF, an oversized frame, a payload that will not
    unpickle -- is recorded as *this peer's* failure: ``recv`` raises a
    :class:`TransportError` naming the peer, the coordinator turns that into
    a single ``_WorkerFailure``, and the run continues on the survivors.

    Used on both ends: the coordinator attaches a heartbeat monitor
    (``heartbeat=``); the agent leaves it None and detects a dead
    coordinator by EOF instead.
    """

    kind = "tcp"

    #: Socket read chunk size (frames are reassembled, so any value works).
    RECV_CHUNK = 65536

    #: Longest a single send may stall waiting for the peer to drain its
    #: receive buffer before the peer is declared dead.  Heartbeats bound
    #: how long a *silent* peer survives; this bounds a peer that stopped
    #: reading -- otherwise one stalled worker wedges the coordinator's
    #: broadcast loop (the send happens under ``_send_lock``).
    SEND_TIMEOUT = 30.0

    def __init__(self, sock: socket.socket, peer: str,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
                 heartbeat: Optional[HeartbeatMonitor] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 send_timeout: Optional[float] = None):
        self._sock = sock
        self.send_timeout = (self.SEND_TIMEOUT if send_timeout is None
                             else send_timeout)
        self.peer = peer
        self.max_frame_size = max_frame_size
        self.heartbeat = heartbeat
        # Wire accounting.  A shared registry (one per coordinator) yields
        # fleet totals; the default private registry keeps per-peer counts.
        self.metrics = metrics or MetricsRegistry()
        self._frames_sent = self.metrics.counter("net_frames_sent")
        self._bytes_sent = self.metrics.counter("net_bytes_sent")
        self._frames_received = self.metrics.counter("net_frames_received")
        self._bytes_received = self.metrics.counter("net_bytes_received")
        self._send_lock = threading.Lock()
        self._inbox: "queue_module.Queue[object]" = queue_module.Queue()
        self._receiver: Optional[threading.Thread] = None
        #: Set once the receiver observed EOF or a wire fault (or close ran).
        self._done = threading.Event()
        self._error: Optional[str] = None
        self._closed = False
        #: True when liveness was lost to heartbeat silence specifically
        #: (surfaced as the ``heartbeat_misses`` result counter).
        self.heartbeat_missed = False

    # -- sending ------------------------------------------------------------------

    def _sendall(self, data: bytes) -> None:
        # Bounded hand-rolled sendall: wait for writability with a deadline
        # instead of calling sock.sendall(), which can block indefinitely
        # under _send_lock when the peer stops reading (kernel buffers full).
        # Each write uses MSG_DONTWAIT so a single send() can never block
        # either (a blocking unix-stream send waits for the *whole* buffer,
        # even after select reports writability); the socket's blocking mode
        # is left alone because the receiver thread shares the fd.
        deadline = time.monotonic() + self.send_timeout
        view = memoryview(data)
        try:
            with self._send_lock:
                while view:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TransportClosed(
                            "send to %s stalled for %.0fs (peer stopped "
                            "reading)" % (self.peer, self.send_timeout))
                    _, writable, _ = select.select(
                        [], [self._sock], [], min(remaining, 1.0))
                    if not writable:
                        continue
                    try:
                        sent = self._sock.send(view, socket.MSG_DONTWAIT)
                    except BlockingIOError:
                        continue  # lost the race for the buffer space
                    view = view[sent:]
        except OSError as exc:
            raise TransportClosed(
                "connection to %s is closed: %s" % (self.peer, exc)) from exc
        self._frames_sent.inc()
        self._bytes_sent.inc(len(data))

    def send(self, message: object) -> None:
        if self._closed:
            raise TransportClosed("connection to %s already closed" % self.peer)
        try:
            frame = encode_message(message, max_frame_size=self.max_frame_size)
        except FrameError as exc:
            raise TransportError("cannot send to %s: %s" % (self.peer, exc)
                                 ) from exc
        self._sendall(frame)

    def send_ping(self) -> None:
        """Send one heartbeat ping (a zero-length frame)."""
        self._sendall(PING_FRAME)

    # -- receiving ----------------------------------------------------------------

    def start_receiver(self) -> "TcpTransport":
        """Start the frame-reassembly thread (idempotent)."""
        if self._receiver is None:
            self._receiver = threading.Thread(
                target=self._receive_loop,
                name="tcp-recv %s" % self.peer, daemon=True)
            self._receiver.start()
        return self

    def _receive_loop(self) -> None:
        decoder = FrameDecoder(max_frame_size=self.max_frame_size)
        try:
            while True:
                try:
                    data = self._sock.recv(self.RECV_CHUNK)
                except OSError:
                    if not self._closed:
                        self._error = "connection to %s lost" % self.peer
                    return
                if not data:  # orderly EOF
                    return
                self._bytes_received.inc(len(data))
                for payload in decoder.feed(data):
                    self._frames_received.inc()
                    if self.heartbeat is not None:
                        self.heartbeat.beat()
                    if not payload:  # heartbeat ping
                        continue
                    self._inbox.put(decode_message(payload))
        except FrameError as exc:
            self._error = "bad frame from %s: %s" % (self.peer, exc)
        finally:
            self._done.set()

    def recv(self, timeout: Optional[float] = None) -> object:
        """Next decoded message; drains the inbox even after the peer died.

        Raises :class:`ReceiveTimeout` when idle, :class:`TransportError`
        (naming the peer) once the inbox is dry and the channel is known
        broken.  ``timeout=None`` blocks until a message or channel death.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return self._inbox.get(timeout=0.2)
            except queue_module.Empty:
                pass
            if self._done.is_set() and self._inbox.empty():
                if self._error:
                    raise TransportError(self._error)
                raise TransportClosed(
                    "connection to %s closed by peer" % self.peer)
            if deadline is not None and time.monotonic() >= deadline:
                raise ReceiveTimeout

    # -- liveness -----------------------------------------------------------------

    def is_alive(self) -> bool:
        if self._closed or self._done.is_set():
            return False
        if self.heartbeat is not None and not self.heartbeat.is_alive():
            self.heartbeat_missed = True
            return False
        return True

    def liveness_error(self) -> str:
        if self._error:
            return self._error
        if self.heartbeat_missed and self.heartbeat is not None:
            return self.heartbeat.describe_miss()
        return "connection to %s closed" % self.peer

    # -- teardown -----------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Tear the channel down; waits up to ``timeout`` for a graceful EOF.

        The coordinator calls this after sending ``StopCommand``: the drain
        window lets a cooperative agent finish and hang up first, and a
        wedged one is simply disconnected when the window expires -- the
        socket-level analogue of the join -> terminate -> kill escalation.
        """
        if self._receiver is not None and timeout > 0:
            self._done.wait(timeout)
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        if self._receiver is not None:
            self._receiver.join(timeout=timeout)
