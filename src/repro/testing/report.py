"""Coverage accounting across testing methods (the shape of Table 5).

Table 5 of the paper reports, for each testing method applied to memcached,
the number of paths covered, the *isolated* line coverage of the method, and
the *cumulated* coverage obtained by augmenting the original test suite with
the method.  :class:`CoverageAccounting` reproduces exactly that bookkeeping
for arbitrary programs and methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set


@dataclass
class MethodCoverage:
    """Coverage of one testing method."""

    name: str
    paths: int
    covered_lines: Set[int]
    line_count: int

    @property
    def isolated_percent(self) -> float:
        if not self.line_count:
            return 0.0
        return 100.0 * len(self.covered_lines) / self.line_count


@dataclass
class CoverageAccounting:
    """Aggregates per-method coverage and computes cumulated numbers."""

    line_count: int
    baseline_name: Optional[str] = None
    methods: List[MethodCoverage] = field(default_factory=list)

    def add_method(self, name: str, paths: int,
                   covered_lines: Iterable[int],
                   baseline: bool = False) -> MethodCoverage:
        method = MethodCoverage(name=name, paths=paths,
                                covered_lines=set(covered_lines),
                                line_count=self.line_count)
        self.methods.append(method)
        if baseline:
            self.baseline_name = name
        return method

    def _baseline(self) -> Optional[MethodCoverage]:
        for method in self.methods:
            if method.name == self.baseline_name:
                return method
        return None

    def baseline_percent(self) -> float:
        baseline = self._baseline()
        return baseline.isolated_percent if baseline is not None else 0.0

    def cumulated_percent(self, name: str) -> float:
        """Coverage of the baseline suite augmented with the named method."""
        baseline = self._baseline()
        combined: Set[int] = set(baseline.covered_lines) if baseline else set()
        for method in self.methods:
            if method.name == name:
                combined |= method.covered_lines
        if not self.line_count:
            return 0.0
        return 100.0 * len(combined) / self.line_count

    def increase_over_baseline(self, name: str) -> float:
        return self.cumulated_percent(name) - self.baseline_percent()

    def rows(self) -> List[Dict[str, object]]:
        """Table rows: method, paths, isolated %, cumulated %, increase."""
        out: List[Dict[str, object]] = []
        for method in self.methods:
            is_baseline = method.name == self.baseline_name
            row: Dict[str, object] = {
                "method": method.name,
                "paths": method.paths,
                "isolated_percent": round(method.isolated_percent, 2),
            }
            if is_baseline:
                row["cumulated_percent"] = None
                row["increase_percent"] = None
            else:
                row["cumulated_percent"] = round(self.cumulated_percent(method.name), 2)
                row["increase_percent"] = round(self.increase_over_baseline(method.name), 2)
            out.append(row)
        return out

    def format_table(self) -> str:
        lines = ["%-28s %10s %12s %12s %10s" % (
            "Testing Method", "Paths", "Isolated%", "Cumulated%", "Increase")]
        for row in self.rows():
            lines.append("%-28s %10d %12.2f %12s %10s" % (
                row["method"], row["paths"], row["isolated_percent"],
                "-" if row["cumulated_percent"] is None else "%.2f" % row["cumulated_percent"],
                "-" if row["increase_percent"] is None else "+%.2f" % row["increase_percent"],
            ))
        return "\n".join(lines)
