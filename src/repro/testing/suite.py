"""Symbolic test suites: collections of symbolic tests run together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.api.limits import ExplorationLimits, effective_limits
from repro.engine.errors import BugReport
from repro.engine.executor import ExplorationResult
from repro.testing.report import CoverageAccounting
from repro.testing.symbolic_test import SymbolicTest


@dataclass
class SuiteResult:
    """Aggregated outcome of running a suite of symbolic tests."""

    suite_name: str
    per_test: Dict[str, ExplorationResult] = field(default_factory=dict)
    line_count: int = 0

    @property
    def total_paths(self) -> int:
        return sum(r.paths_completed for r in self.per_test.values())

    @property
    def all_bugs(self) -> List[BugReport]:
        out: List[BugReport] = []
        for result in self.per_test.values():
            out.extend(result.bugs)
        return out

    @property
    def combined_coverage_lines(self) -> Set[int]:
        covered: Set[int] = set()
        for result in self.per_test.values():
            covered.update(result.covered_lines)
        return covered

    @property
    def combined_coverage_percent(self) -> float:
        if not self.line_count:
            return 0.0
        return 100.0 * len(self.combined_coverage_lines) / self.line_count

    def coverage_accounting(self, baseline: Optional[str] = None) -> CoverageAccounting:
        accounting = CoverageAccounting(line_count=self.line_count)
        for name, result in self.per_test.items():
            accounting.add_method(name, result.paths_completed,
                                  result.covered_lines,
                                  baseline=(name == baseline))
        return accounting


class SymbolicTestSuite:
    """A named collection of symbolic tests over the same program."""

    def __init__(self, name: str):
        self.name = name
        self.tests: List[SymbolicTest] = []

    def add(self, test: SymbolicTest) -> SymbolicTest:
        if any(t.name == test.name for t in self.tests):
            raise ValueError("duplicate test name %r in suite %r" % (test.name, self.name))
        self.tests.append(test)
        return test

    def __len__(self) -> int:
        return len(self.tests)

    def __iter__(self):
        return iter(self.tests)

    def run(self, max_paths_per_test: Optional[int] = None,
            max_steps_per_test: Optional[int] = None,
            max_instructions_per_test: Optional[int] = None,
            limits: Optional[ExplorationLimits] = None) -> SuiteResult:
        """Run every test on a single engine and aggregate the results.

        Per-test limits may be given as the legacy ``*_per_test`` kwargs or
        as one :class:`~repro.api.limits.ExplorationLimits` applied to each
        test (explicit kwargs win).
        """
        per_test_limits = effective_limits(
            limits,
            max_paths=max_paths_per_test,
            max_steps=max_steps_per_test,
            max_instructions=max_instructions_per_test)
        result = SuiteResult(suite_name=self.name)
        for test in self.tests:
            exploration = test.run(backend="single", limits=per_test_limits).raw
            result.per_test[test.name] = exploration
            result.line_count = max(result.line_count, exploration.line_count)
        return result
