"""The symbolic testing platform (paper §5).

A :class:`SymbolicTest` packages a program under test together with the
environment setup (symbolic data, files, network conditions, fault injection,
scheduler policy, instruction limits) and can then be run either on a single
engine ("1-worker Cloud9", i.e. plain KLEE) or on a simulated cluster of any
size.  :class:`SymbolicTestSuite` groups tests and produces the combined
coverage accounting used by Table 5.
"""

from repro.testing.symbolic_test import SymbolicTest
from repro.testing.suite import SuiteResult, SymbolicTestSuite
from repro.testing.report import CoverageAccounting, MethodCoverage

__all__ = [
    "SymbolicTest",
    "SymbolicTestSuite",
    "SuiteResult",
    "CoverageAccounting",
    "MethodCoverage",
]
