"""Symbolic test definitions.

A symbolic test encompasses "many similar concrete test cases into a single
symbolic one" (§5): it names the program under test, how to set up its
environment (files, sockets, symbolic regions, fault injection, scheduling)
and the exploration limits.  The same test object can be executed on a single
engine or farmed out to a Cloud9 cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster.coordinator import Cloud9Cluster, ClusterConfig, ClusterResult
from repro.cluster.static_partition import StaticPartitionCluster, StaticPartitionConfig
from repro.engine.config import EngineConfig
from repro.engine.executor import ExplorationResult, SymbolicExecutor
from repro.engine.state import ExecutionState
from repro.lang.ast import Program
from repro.lang.compiler import CompiledProgram, compile_program
from repro.posix.model import install_posix_model

StateSetup = Callable[[ExecutionState], None]


@dataclass
class SymbolicTest:
    """A reusable description of one symbolic test.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in reports).
    program:
        The program under test (AST or compiled form); it is compiled once
        and shared by every engine instance the test creates.
    setup:
        Optional callback run on every freshly created initial state; this is
        where tests pre-populate files, queue datagrams or tweak options
        (symbolic tests "programmatically orchestrate environment events").
    options:
        Initial ``state.options`` entries (e.g. ``max_instructions``,
        ``fault_injection_all``, ``scheduler_policy``).
    engine_config:
        Engine limits/policies shared by all workers.
    use_posix_model:
        Install the POSIX environment model (on by default; pure
        computational targets may turn it off for speed).
    """

    name: str
    program: Union[Program, CompiledProgram]
    setup: Optional[StateSetup] = None
    options: Dict[str, object] = field(default_factory=dict)
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    use_posix_model: bool = True
    strategy: str = "interleaved"

    def __post_init__(self) -> None:
        if not isinstance(self.program, CompiledProgram):
            self.program = compile_program(self.program)

    # -- factories used by both execution modes ----------------------------------------

    def build_executor(self) -> SymbolicExecutor:
        installers = [install_posix_model] if self.use_posix_model else []
        return SymbolicExecutor(self.program, config=self.engine_config.copy(),
                                environment_installers=installers)

    def build_initial_state(self, executor: SymbolicExecutor) -> ExecutionState:
        state = executor.make_initial_state(options=dict(self.options))
        if self.setup is not None:
            self.setup(state)
        return state

    # -- single-node execution (plain KLEE / 1-worker Cloud9) ----------------------------

    def run_single(self,
                   max_steps: Optional[int] = None,
                   max_paths: Optional[int] = None,
                   max_instructions: Optional[int] = None,
                   max_wall_time: Optional[float] = None,
                   coverage_target: Optional[float] = None,
                   strategy: Optional[str] = None) -> ExplorationResult:
        executor = self.build_executor()
        return executor.run(
            initial_state=lambda: self.build_initial_state(executor),
            strategy=strategy or self.strategy,
            max_steps=max_steps,
            max_paths=max_paths,
            max_instructions=max_instructions,
            max_wall_time=max_wall_time,
            coverage_target=coverage_target,
        )

    # -- cluster execution -----------------------------------------------------------------

    def build_cluster(self, config: Optional[ClusterConfig] = None) -> Cloud9Cluster:
        cluster_config = config or ClusterConfig()
        if cluster_config.strategy is None:
            cluster_config.strategy = self.strategy
        return Cloud9Cluster(
            executor_factory=self.build_executor,
            state_factory=self.build_initial_state,
            config=cluster_config,
        )

    def run_cluster(self, num_workers: int,
                    instructions_per_round: int = 500,
                    max_rounds: Optional[int] = None,
                    target_coverage_percent: Optional[float] = None,
                    max_paths: Optional[int] = None,
                    stop_on_first_bug: bool = False,
                    cluster_config: Optional[ClusterConfig] = None) -> ClusterResult:
        config = cluster_config or ClusterConfig(
            num_workers=num_workers,
            instructions_per_round=instructions_per_round,
            strategy=self.strategy,
        )
        cluster = self.build_cluster(config)
        return cluster.run(max_rounds=max_rounds,
                           target_coverage_percent=target_coverage_percent,
                           max_paths=max_paths,
                           stop_on_first_bug=stop_on_first_bug)

    # -- static-partitioning baseline (for the ablation benchmarks) -------------------------

    def build_static_cluster(self, config: Optional[StaticPartitionConfig] = None
                             ) -> StaticPartitionCluster:
        cluster_config = config or StaticPartitionConfig()
        if cluster_config.strategy is None:
            cluster_config.strategy = self.strategy
        return StaticPartitionCluster(
            executor_factory=self.build_executor,
            state_factory=self.build_initial_state,
            config=cluster_config,
        )

    def run_static_cluster(self, num_workers: int,
                           instructions_per_round: int = 500,
                           max_rounds: Optional[int] = None,
                           target_coverage_percent: Optional[float] = None,
                           max_paths: Optional[int] = None,
                           cluster_config: Optional[StaticPartitionConfig] = None
                           ) -> ClusterResult:
        """Run the same test on the §2 static-partitioning strawman."""
        config = cluster_config or StaticPartitionConfig(
            num_workers=num_workers,
            instructions_per_round=instructions_per_round,
            strategy=self.strategy,
        )
        cluster = self.build_static_cluster(config)
        return cluster.run(max_rounds=max_rounds,
                           target_coverage_percent=target_coverage_percent,
                           max_paths=max_paths)

    # -- convenience ---------------------------------------------------------------------------

    @property
    def line_count(self) -> int:
        return self.program.line_count

    def with_options(self, **options: object) -> "SymbolicTest":
        """A copy of this test with additional state options."""
        merged = dict(self.options)
        merged.update(options)
        return SymbolicTest(
            name=self.name,
            program=self.program,
            setup=self.setup,
            options=merged,
            engine_config=self.engine_config.copy(),
            use_posix_model=self.use_posix_model,
            strategy=self.strategy,
        )
