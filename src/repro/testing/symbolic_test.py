"""Symbolic test definitions.

A symbolic test encompasses "many similar concrete test cases into a single
symbolic one" (§5): it names the program under test, how to set up its
environment (files, sockets, symbolic regions, fault injection, scheduling)
and the exploration limits.  The same test object runs unchanged on every
backend through :meth:`SymbolicTest.run`::

    test.run()                                        # one engine (KLEE)
    test.run(backend="cluster", workers=8)            # Cloud9 cluster
    test.run(backend="static", workers=8)             # §2 strawman baseline
    test.run(backend="threaded", workers=4)           # OS-thread cluster
    test.run(backend="process", workers=4)            # worker processes
                                                      # (spec-built tests)

The per-backend ``run_single``/``run_cluster``/``run_static_cluster``
methods remain as thin shims returning the legacy result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Type, Union

from repro.api.limits import ExplorationLimits, effective_limits
from repro.api.result import RunResult
from repro.cluster.coordinator import Cloud9Cluster, ClusterConfig, ClusterResult
from repro.cluster.static_partition import StaticPartitionCluster, StaticPartitionConfig
from repro.engine.config import EngineConfig
from repro.engine.executor import ExplorationResult, SymbolicExecutor
from repro.engine.state import ExecutionState
from repro.lang.ast import Program
from repro.lang.compiler import CompiledProgram, compile_program
from repro.posix.model import install_posix_model
from repro.solver.solver import Solver, SolverConfig

StateSetup = Callable[[ExecutionState], None]


@dataclass
class SymbolicTest:
    """A reusable description of one symbolic test.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in reports).
    program:
        The program under test (AST or compiled form); it is compiled once
        and shared by every engine instance the test creates.
    setup:
        Optional callback run on every freshly created initial state; this is
        where tests pre-populate files, queue datagrams or tweak options
        (symbolic tests "programmatically orchestrate environment events").
    options:
        Initial ``state.options`` entries (e.g. ``max_instructions``,
        ``fault_injection_all``, ``scheduler_policy``).
    engine_config:
        Engine limits/policies shared by all workers.
    solver_config:
        Optional :class:`~repro.solver.solver.SolverConfig` applied to every
        engine instance the test creates (one private solver per worker).
        This is how the benchmarks toggle the solver stack -- independence
        partitioning and the constraint/counterexample caches -- per run.
    use_posix_model:
        Install the POSIX environment model (on by default; pure
        computational targets may turn it off for speed).
    spec_name / spec_params:
        Set by :func:`repro.distrib.specs.resolve_test`: the registered
        test-spec this instance was built from.  Live tests hold closures and
        compiled programs that do not pickle, so process-based backends ship
        ``(spec_name, spec_params)`` and rebuild the test in each worker
        process instead.
    """

    name: str
    program: Union[Program, CompiledProgram]
    setup: Optional[StateSetup] = None
    options: Dict[str, object] = field(default_factory=dict)
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    solver_config: Optional[SolverConfig] = None
    use_posix_model: bool = True
    strategy: str = "interleaved"
    spec_name: Optional[str] = None
    spec_params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.program, CompiledProgram):
            self.program = compile_program(self.program)

    # -- factories used by both execution modes ----------------------------------------

    def build_executor(self) -> SymbolicExecutor:
        installers = [install_posix_model] if self.use_posix_model else []
        solver = (Solver(replace(self.solver_config))
                  if self.solver_config is not None else None)
        return SymbolicExecutor(self.program, config=self.engine_config.copy(),
                                solver=solver,
                                environment_installers=installers)

    def build_initial_state(self, executor: SymbolicExecutor) -> ExecutionState:
        state = executor.make_initial_state(options=dict(self.options))
        if self.setup is not None:
            self.setup(state)
        return state

    # -- the unified entry point ---------------------------------------------------------

    def run(self, backend: str = "single",
            limits: Optional[ExplorationLimits] = None,
            **options: object) -> RunResult:
        """Run this test on any registered backend, returning a
        :class:`~repro.api.result.RunResult`.

        Limit fields (``max_paths=...``, ``coverage_target=...``, ...) may be
        passed directly among ``options``; remaining options are
        backend-specific (``strategy=`` for ``"single"``; ``workers=``,
        ``config=`` or any cluster-config field for the cluster backends;
        ``resume_from=`` a :class:`~repro.cluster.checkpoint.ClusterCheckpoint`
        or saved checkpoint path for the ``"cluster"``/``"threaded"``/
        ``"process"`` backends, paired with the ``checkpoint_every=`` /
        ``checkpoint_path=`` config knobs that produce the checkpoints;
        ``autoscale=`` an :class:`~repro.cluster.autoscale.AutoscalePolicy`
        (or ``True`` for the defaults) to let those same backends grow and
        shrink the cluster mid-run from queue pressure and round wall time;
        ``trace_path=`` to write the run's structured JSONL event trace,
        on every backend -- see :mod:`repro.obs`).
        """
        from repro.api.runner import run_test
        return run_test(self, backend=backend, limits=limits, **options)

    # -- single-node execution (plain KLEE / 1-worker Cloud9) ----------------------------

    def run_single(self,
                   max_steps: Optional[int] = None,
                   max_paths: Optional[int] = None,
                   max_instructions: Optional[int] = None,
                   max_wall_time: Optional[float] = None,
                   coverage_target: Optional[float] = None,
                   strategy: Optional[str] = None) -> ExplorationResult:
        """Deprecated shim: use ``run(backend="single", ...)`` instead."""
        limits = effective_limits(None, max_steps=max_steps, max_paths=max_paths,
                                  max_instructions=max_instructions,
                                  max_wall_time=max_wall_time,
                                  coverage_target=coverage_target)
        return self.run(backend="single", limits=limits, strategy=strategy).raw

    # -- cluster execution -----------------------------------------------------------------

    def build_cluster(self, config: Optional[ClusterConfig] = None,
                      cluster_class: Optional[Type[Cloud9Cluster]] = None
                      ) -> Cloud9Cluster:
        cluster_config = config or ClusterConfig()
        if cluster_config.strategy is None:
            # Copy rather than mutate: the caller's config may be reused
            # across tests with different strategies.
            cluster_config = replace(cluster_config, strategy=self.strategy)
        cluster_cls = cluster_class or Cloud9Cluster
        return cluster_cls(
            executor_factory=self.build_executor,
            state_factory=self.build_initial_state,
            config=cluster_config,
        )

    def run_cluster(self, num_workers: int,
                    instructions_per_round: int = 500,
                    max_rounds: Optional[int] = None,
                    target_coverage_percent: Optional[float] = None,
                    max_paths: Optional[int] = None,
                    stop_on_first_bug: bool = False,
                    cluster_config: Optional[ClusterConfig] = None) -> ClusterResult:
        """Deprecated shim: use ``run(backend="cluster", ...)`` instead."""
        limits = effective_limits(None, max_rounds=max_rounds,
                                  coverage_target=target_coverage_percent,
                                  max_paths=max_paths,
                                  stop_on_first_bug=stop_on_first_bug)
        config = cluster_config or ClusterConfig(
            num_workers=num_workers,
            instructions_per_round=instructions_per_round,
        )
        return self.run(backend="cluster", limits=limits, config=config).raw

    # -- static-partitioning baseline (for the ablation benchmarks) -------------------------

    def build_static_cluster(self, config: Optional[StaticPartitionConfig] = None
                             ) -> StaticPartitionCluster:
        cluster_config = config or StaticPartitionConfig()
        if cluster_config.strategy is None:
            cluster_config = replace(cluster_config, strategy=self.strategy)
        return StaticPartitionCluster(
            executor_factory=self.build_executor,
            state_factory=self.build_initial_state,
            config=cluster_config,
        )

    def run_static_cluster(self, num_workers: int,
                           instructions_per_round: int = 500,
                           max_rounds: Optional[int] = None,
                           target_coverage_percent: Optional[float] = None,
                           max_paths: Optional[int] = None,
                           cluster_config: Optional[StaticPartitionConfig] = None
                           ) -> ClusterResult:
        """Deprecated shim: use ``run(backend="static", ...)`` instead."""
        limits = effective_limits(None, max_rounds=max_rounds,
                                  coverage_target=target_coverage_percent,
                                  max_paths=max_paths)
        config = cluster_config or StaticPartitionConfig(
            num_workers=num_workers,
            instructions_per_round=instructions_per_round,
        )
        return self.run(backend="static", limits=limits, config=config).raw

    # -- convenience ---------------------------------------------------------------------------

    @property
    def line_count(self) -> int:
        return self.program.line_count

    def with_options(self, **options: object) -> "SymbolicTest":
        """A copy of this test with additional state options."""
        merged = dict(self.options)
        merged.update(options)
        return SymbolicTest(
            name=self.name,
            program=self.program,
            setup=self.setup,
            options=merged,
            engine_config=self.engine_config.copy(),
            solver_config=(replace(self.solver_config)
                           if self.solver_config is not None else None),
            use_posix_model=self.use_posix_model,
            strategy=self.strategy,
            # Extra options are applied locally only; a worker process
            # rebuilding from the spec would not see them, so drop the ref.
            spec_name=None,
            spec_params={},
        )
