"""The multi-threaded / multi-process producer-consumer benchmark (§7.1).

"In addition to the testing targets mentioned above, we also tested a
benchmark consisting of a multi-threaded and multi-process producer-consumer
simulation.  The benchmark exercises the entire functionality of the POSIX
model: threads, synchronization, processes, and networking."

Structure of the model:

* the parent process creates a socket pair and ``fork()``s;
* the child (producer process) writes ``N`` items -- one of them symbolic --
  into the socket and exits;
* the parent's main thread reads items from the socket and pushes them into
  a bounded queue protected by a mutex and two condition variables;
* two consumer threads pop items from the queue and accumulate a checksum;
* the parent joins the consumers, ``waitpid``s the child, and asserts that
  every produced item was consumed exactly once.
"""

from __future__ import annotations

from typing import List

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

DEFAULT_ITEMS = 3
QUEUE_CAPACITY = 2

# Shared-state layout (a single shared buffer):
#   [0]          queue count
#   [1]          queue head index
#   [2]          queue tail index
#   [3]          items consumed (total)
#   [4]          checksum of consumed items (mod 256)
#   [5]          producer-done flag
#   [6]          mutex handle
#   [7]          "not full" condition-variable handle
#   [8]          "not empty" condition-variable handle
#   [10..10+cap) queue slots
SHARED_SIZE = 10 + QUEUE_CAPACITY


def build_program(num_items: int = DEFAULT_ITEMS,
                  num_consumers: int = 2,
                  symbolic_items: int = 1) -> L.Program:
    """Build the producer-consumer benchmark program."""

    # queue_push(shared, mutex, not_full, not_empty, value)
    queue_push = L.func(
        "queue_push", ["shared", "mutex", "not_full", "not_empty", "value"],
        L.expr_stmt(L.call("pthread_mutex_lock", L.var("mutex"))),
        L.while_(L.ge(L.index(L.var("shared"), 0), QUEUE_CAPACITY),
            L.expr_stmt(L.call("pthread_cond_wait", L.var("not_full"), L.var("mutex"))),
        ),
        L.decl("tail", L.index(L.var("shared"), 2)),
        L.store(L.var("shared"), L.add(10, L.var("tail")), L.var("value")),
        L.store(L.var("shared"), 2, L.mod(L.add(L.var("tail"), 1), QUEUE_CAPACITY)),
        L.store(L.var("shared"), 0, L.add(L.index(L.var("shared"), 0), 1)),
        L.expr_stmt(L.call("pthread_cond_signal", L.var("not_empty"))),
        L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
        L.ret(0),
    )

    # queue_pop(shared, mutex, not_full, not_empty) -> value, or 0xFFFF when
    # the producer is done and the queue drained.
    queue_pop = L.func(
        "queue_pop", ["shared", "mutex", "not_full", "not_empty"],
        L.expr_stmt(L.call("pthread_mutex_lock", L.var("mutex"))),
        L.while_(L.eq(L.index(L.var("shared"), 0), 0),
            L.if_(L.eq(L.index(L.var("shared"), 5), 1), [
                L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
                L.ret(0xFFFF),
            ]),
            L.expr_stmt(L.call("pthread_cond_wait", L.var("not_empty"), L.var("mutex"))),
        ),
        L.decl("head", L.index(L.var("shared"), 1)),
        L.decl("value", L.index(L.var("shared"), L.add(10, L.var("head")))),
        L.store(L.var("shared"), 1, L.mod(L.add(L.var("head"), 1), QUEUE_CAPACITY)),
        L.store(L.var("shared"), 0, L.sub(L.index(L.var("shared"), 0), 1)),
        L.expr_stmt(L.call("pthread_cond_signal", L.var("not_full"))),
        L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
        L.ret(L.var("value")),
    )

    # consumer(args): args is a pointer to a small block holding the shared
    # buffer address and the synchronization handles (packed as bytes would
    # lose information, so the block stores them as consecutive "slots" via
    # repeated byte writes -- instead we pass the shared address itself and
    # re-derive handles from the shared header where main stored them).
    consumer = L.func(
        "consumer", ["shared"],
        L.decl("mutex", L.index(L.var("shared"), 6)),
        L.decl("not_full", L.index(L.var("shared"), 7)),
        L.decl("not_empty", L.index(L.var("shared"), 8)),
        L.decl("running", 1),
        L.while_(L.eq(L.var("running"), 1),
            L.decl("value", L.call("queue_pop", L.var("shared"), L.var("mutex"),
                                   L.var("not_full"), L.var("not_empty"))),
            L.if_(L.eq(L.var("value"), 0xFFFF), [L.assign("running", 0)], [
                L.store(L.var("shared"), 3, L.add(L.index(L.var("shared"), 3), 1)),
                L.store(L.var("shared"), 4,
                        L.band(L.add(L.index(L.var("shared"), 4), L.var("value")), 0xFF)),
            ]),
        ),
        L.ret(0),
    )

    # producer(fd): runs in the child process, writes items into the socket.
    producer_body: List[object] = [
        L.decl("item", L.call("malloc", 1)),
    ]
    for index in range(num_items):
        if index < symbolic_items:
            producer_body.append(L.decl("sym%d" % index,
                                        L.call("cloud9_symbolic_buffer", 1,
                                               L.strconst("item%d" % index))))
            producer_body.append(L.store(L.var("item"), 0,
                                         L.index(L.var("sym%d" % index), 0)))
        else:
            producer_body.append(L.store(L.var("item"), 0, 10 + index))
        producer_body.append(L.expr_stmt(L.call("write", L.var("fd"),
                                                L.var("item"), 1)))
    producer_body.append(L.expr_stmt(L.call("close", L.var("fd"))))
    producer_body.append(L.expr_stmt(L.call("exit", 0)))
    producer_body.append(L.ret(0))
    producer = L.func("producer", ["fd"], *producer_body)

    main = L.func(
        "main", [],
        # Networking: a socket pair shared with the forked producer.
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("rx", L.index(L.var("pair"), 0)),
        L.decl("tx", L.index(L.var("pair"), 1)),
        # Shared state for the consumer threads.
        L.decl("shared", L.call("malloc", SHARED_SIZE)),
        L.decl("mutex", L.call("pthread_mutex_init")),
        L.decl("not_full", L.call("pthread_cond_init")),
        L.decl("not_empty", L.call("pthread_cond_init")),
        L.store(L.var("shared"), 6, L.var("mutex")),
        L.store(L.var("shared"), 7, L.var("not_full")),
        L.store(L.var("shared"), 8, L.var("not_empty")),
        # Processes: fork the producer.
        L.decl("child", L.call("fork")),
        L.if_(L.eq(L.var("child"), 0), [
            L.expr_stmt(L.call("producer", L.var("tx"))),
            L.ret(0),
        ]),
        # Threads: start the consumers.
        L.decl("consumers", L.call("malloc", num_consumers)),
        L.decl("c", 0),
        L.while_(L.lt(L.var("c"), num_consumers),
            L.store(L.var("consumers"), L.var("c"),
                    L.call("pthread_create", L.strconst("consumer"), L.var("shared"))),
            L.assign("c", L.add(L.var("c"), 1)),
        ),
        # The parent's main thread pumps items from the socket into the queue.
        L.decl("buf", L.call("malloc", 1)),
        L.decl("received", 0),
        L.while_(L.lt(L.var("received"), num_items),
            L.decl("n", L.call("read", L.var("rx"), L.var("buf"), 1)),
            L.if_(L.le(L.var("n"), 0), [L.break_()]),
            L.expr_stmt(L.call("queue_push", L.var("shared"), L.var("mutex"),
                               L.var("not_full"), L.var("not_empty"),
                               L.index(L.var("buf"), 0))),
            L.assign("received", L.add(L.var("received"), 1)),
        ),
        # Signal completion and wake any waiting consumer.
        L.expr_stmt(L.call("pthread_mutex_lock", L.var("mutex"))),
        L.store(L.var("shared"), 5, 1),
        L.expr_stmt(L.call("pthread_cond_broadcast", L.var("not_empty"))),
        L.expr_stmt(L.call("pthread_mutex_unlock", L.var("mutex"))),
        # Join the consumers, reap the child, check the invariant.
        L.assign("c", 0),
        L.while_(L.lt(L.var("c"), num_consumers),
            L.expr_stmt(L.call("pthread_join", L.index(L.var("consumers"), L.var("c")))),
            L.assign("c", L.add(L.var("c"), 1)),
        ),
        L.decl("child_status", L.call("waitpid", L.var("child"))),
        L.assert_(L.eq(L.index(L.var("shared"), 3), num_items),
                  "every produced item is consumed exactly once"),
        L.ret(L.index(L.var("shared"), 4)),
    )

    return L.program("prodcons", queue_push, queue_pop, consumer, producer, main)


def make_benchmark_test(num_items: int = DEFAULT_ITEMS,
                        num_consumers: int = 2,
                        symbolic_items: int = 1,
                        fork_schedules: bool = False,
                        max_instructions: int = 20_000) -> SymbolicTest:
    """The §7.1 benchmark: threads + synchronization + processes + sockets.

    With ``fork_schedules=True`` the scheduler forks the state at every
    scheduling decision (the "symbolic scheduler" of §5.1), exploring thread
    interleavings as well as input values.
    """
    options = {}
    if fork_schedules:
        options["fork_schedules"] = True
    return SymbolicTest(
        name="producer-consumer",
        program=build_program(num_items, num_consumers, symbolic_items),
        options=options,
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )
