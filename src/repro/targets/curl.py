"""A model of curl's URL globbing (§7.3.2).

Cloud9 found a new bug in curl: a URL such as
``http://site.{one,two,three}.com{`` -- a complete brace glob followed by an
*unmatched* opening brace -- crashes the globbing code.  "Cloud9 exposed a
general problem in curl's handling of the case when braces used for regular
expression globbing are not matched properly."

The model parses a URL with ``{a,b,c}`` alternation globs and ``[0-9]`` range
globs.  Faithfully to the original bug, the pattern-counting pass and the
expansion pass disagree when a glob opener appears without its closer at the
end of the URL: the expansion pass then reads past the end of the URL buffer
(out-of-bounds read -> crash).  A symbolic URL suffix makes symbolic
execution find the crashing input automatically.
"""

from __future__ import annotations

from typing import List

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

DEFAULT_PREFIX = b"http://s.{a,b}.com"
DEFAULT_SYMBOLIC_SUFFIX = 2


def build_program(prefix: bytes = DEFAULT_PREFIX,
                  symbolic_suffix: int = DEFAULT_SYMBOLIC_SUFFIX) -> L.Program:
    url_length = len(prefix) + symbolic_suffix

    # count_globs(url, n) -> number of glob openers ('{' or '[') seen.
    # Note: counts openers without verifying each has a matching closer --
    # the discrepancy at the heart of the bug.
    count_globs = L.func(
        "count_globs", ["url", "n"],
        L.decl("i", 0),
        L.decl("count", 0),
        L.while_(L.lt(L.var("i"), L.var("n")),
            L.decl("c", L.index(L.var("url"), L.var("i"))),
            L.if_(L.eq(L.var("c"), 0), [L.break_()]),
            L.if_(L.lor(L.eq(L.var("c"), ord("{")), L.eq(L.var("c"), ord("["))), [
                L.assign("count", L.add(L.var("count"), 1)),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("count")),
    )

    # expand_brace(url, n, start) -> index just past the matching '}'.
    # BUG: scans for ',' and '}' but never checks the running index against
    # the buffer length, so an unmatched '{' walks off the end of the buffer.
    expand_brace = L.func(
        "expand_brace", ["url", "n", "start"],
        L.decl("i", L.add(L.var("start"), 1)),
        L.decl("alternatives", 1),
        L.while_(L.ne(L.index(L.var("url"), L.var("i")), ord("}")),
            L.if_(L.eq(L.index(L.var("url"), L.var("i")), ord(",")), [
                L.assign("alternatives", L.add(L.var("alternatives"), 1)),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.add(L.var("i"), 1)),
    )

    # expand_range(url, n, start) -> index past the ']'; same missing check.
    expand_range = L.func(
        "expand_range", ["url", "n", "start"],
        L.decl("i", L.add(L.var("start"), 1)),
        L.while_(L.ne(L.index(L.var("url"), L.var("i")), ord("]")),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.add(L.var("i"), 1)),
    )

    # glob_url(url, n) -> number of globs expanded.
    glob_url = L.func(
        "glob_url", ["url", "n"],
        L.decl("total", L.call("count_globs", L.var("url"), L.var("n"))),
        L.if_(L.eq(L.var("total"), 0), [L.ret(0)]),
        L.decl("i", 0),
        L.decl("expanded", 0),
        L.while_(L.lt(L.var("i"), L.var("n")),
            L.decl("c", L.index(L.var("url"), L.var("i"))),
            L.if_(L.eq(L.var("c"), 0), [L.break_()]),
            L.if_(L.eq(L.var("c"), ord("{")), [
                L.assign("i", L.call("expand_brace", L.var("url"), L.var("n"),
                                     L.var("i"))),
                L.assign("expanded", L.add(L.var("expanded"), 1)),
                L.continue_(),
            ]),
            L.if_(L.eq(L.var("c"), ord("[")), [
                L.assign("i", L.call("expand_range", L.var("url"), L.var("n"),
                                     L.var("i"))),
                L.assign("expanded", L.add(L.var("expanded"), 1)),
                L.continue_(),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("expanded")),
    )

    body: List[object] = [
        L.decl("url", L.call("malloc", url_length)),
    ]
    for i, byte in enumerate(prefix):
        body.append(L.store(L.var("url"), i, byte))
    if symbolic_suffix:
        body.append(L.decl("suffix", L.call("cloud9_symbolic_buffer",
                                            L.const(symbolic_suffix),
                                            L.strconst("url_suffix"))))
        body.append(L.expr_stmt(L.call("memcpy",
                                       L.add(L.var("url"), len(prefix)),
                                       L.var("suffix"),
                                       L.const(symbolic_suffix))))
    body.append(L.decl("expanded", L.call("glob_url", L.var("url"),
                                          L.const(url_length))))
    body.append(L.ret(L.var("expanded")))
    main = L.func("main", [], *body)

    return L.program("curl", count_globs, expand_brace, expand_range,
                     glob_url, main)


def make_globbing_test(prefix: bytes = DEFAULT_PREFIX,
                       symbolic_suffix: int = DEFAULT_SYMBOLIC_SUFFIX,
                       max_instructions: int = 20_000) -> SymbolicTest:
    """The §7.3.2 workload: symbolic URL suffix after a concrete glob prefix.

    The crashing input of the paper corresponds to a suffix containing an
    unmatched ``{`` (or ``[``): the expansion loop then runs past the end of
    the URL buffer and the engine reports a memory error.
    """
    return SymbolicTest(
        name="curl-url-globbing",
        program=build_program(prefix, symbolic_suffix),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
        use_posix_model=False,
    )


def crashing_url() -> bytes:
    """The concrete URL shape reported in the paper."""
    return b"http://site.{one,two,three}.com{"
