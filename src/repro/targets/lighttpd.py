"""A model of lighttpd's request parsing across fragmented reads (§7.3.4).

The POSIX specification offers no guarantee on how many bytes a single
``read()`` returns, and lighttpd 1.4.12 crashed (hanging connected clients)
for certain fragmentations of an incoming request.  The fix shipped in 1.4.13
was incomplete: some fragmentation patterns still crash it, which the paper
demonstrates with the symbolic fragmentation ioctl (Table 6).

The model reproduces that history with three versions of the same parser:

* ``1.4.12`` -- when a chunk boundary falls inside the final ``CRLFCRLF``
  terminator, the parser "peeks" past the bytes received so far to look for
  the rest of the terminator and runs off the end of the request buffer
  (out-of-bounds read -> crash).
* ``1.4.13`` -- the peek is fixed, but per-request chunk bookkeeping lives in
  a fixed-size array that overflows when a request arrives in more than
  ``BOOKKEEPING_SLOTS`` chunks (out-of-bounds write -> crash).
* ``fixed`` -- bounds-checked bookkeeping; no crash for any fragmentation.

The three fragmentation patterns of Table 6 map onto these bugs exactly:
``1x28`` is fine everywhere, ``1x26 + 1x2`` splits the terminator (crashes
only 1.4.12), and ``2+5+1+5+2x1+3x2+5+2x1`` both splits the terminator and
uses 12 chunks (crashes 1.4.12 and 1.4.13).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

VERSION_1_4_12 = 1412
VERSION_1_4_13 = 1413
VERSION_FIXED = 1414

DEFAULT_REQUEST = b"GET /index.html HTTP/1.0\r\n\r\n"      # 28 bytes, as in Table 6
BOOKKEEPING_SLOTS = 8

# The three fragmentation patterns of Table 6.
PATTERN_WHOLE = [28]
PATTERN_SPLIT_TERMINATOR = [26, 2]
PATTERN_MANY_SMALL = [2, 5, 1, 5, 1, 1, 2, 2, 2, 5, 1, 1]

CR = 0x0D
LF = 0x0A


def build_program(version: int,
                  request: bytes = DEFAULT_REQUEST,
                  bookkeeping_slots: int = BOOKKEEPING_SLOTS,
                  fragment_pattern: Optional[Sequence[int]] = None,
                  symbolic_fragmentation: bool = False) -> L.Program:
    """Build the lighttpd model for one server version and one test driver."""
    request_length = len(request)

    # scan_terminator(buf, total) -> 1 if CRLFCRLF appears in buf[0..total).
    scan_terminator = L.func(
        "scan_terminator", ["buf", "total"],
        L.if_(L.lt(L.var("total"), 4), [L.ret(0)]),
        L.decl("i", 0),
        L.while_(L.le(L.var("i"), L.sub(L.var("total"), 4)),
            L.if_(L.land(
                    L.land(L.eq(L.index(L.var("buf"), L.var("i")), CR),
                           L.eq(L.index(L.var("buf"), L.add(L.var("i"), 1)), LF)),
                    L.land(L.eq(L.index(L.var("buf"), L.add(L.var("i"), 2)), CR),
                           L.eq(L.index(L.var("buf"), L.add(L.var("i"), 3)), LF))),
                  [L.ret(1)]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(0),
    )

    # parse_request_line(buf, total) -> 0 ok, 1 bad method, 2 bad protocol.
    parse_request_line = L.func(
        "parse_request_line", ["buf", "total"],
        L.if_(L.lt(L.var("total"), 14), [L.ret(2)]),
        L.decl("m0", L.index(L.var("buf"), 0)),
        L.decl("m1", L.index(L.var("buf"), 1)),
        L.decl("m2", L.index(L.var("buf"), 2)),
        L.decl("method", 0),
        L.if_(L.land(L.eq(L.var("m0"), ord("G")),
                     L.land(L.eq(L.var("m1"), ord("E")), L.eq(L.var("m2"), ord("T")))),
              [L.assign("method", 1)]),
        L.if_(L.land(L.eq(L.var("m0"), ord("P")),
                     L.land(L.eq(L.var("m1"), ord("O")), L.eq(L.var("m2"), ord("S")))),
              [L.assign("method", 2)]),
        L.if_(L.land(L.eq(L.var("m0"), ord("H")),
                     L.land(L.eq(L.var("m1"), ord("E")), L.eq(L.var("m2"), ord("A")))),
              [L.assign("method", 3)]),
        L.if_(L.eq(L.var("method"), 0), [L.ret(1)]),
        # Find the space before the protocol version and check "HTTP/1.".
        L.decl("i", 4),
        L.decl("space", 0),
        L.while_(L.lt(L.var("i"), L.var("total")),
            L.if_(L.eq(L.index(L.var("buf"), L.var("i")), ord(" ")), [
                L.assign("space", L.var("i")),
                L.break_(),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.if_(L.eq(L.var("space"), 0), [L.ret(2)]),
        L.if_(L.gt(L.add(L.var("space"), 7), L.var("total")), [L.ret(2)]),
        L.if_(L.ne(L.index(L.var("buf"), L.add(L.var("space"), 1)), ord("H")),
              [L.ret(2)]),
        L.if_(L.ne(L.index(L.var("buf"), L.add(L.var("space"), 5)), ord("/")),
              [L.ret(2)]),
        L.ret(0),
    )

    # read_request(fd, version) -> 0 incomplete, 1 parsed, 2 parse error.
    read_request = L.func(
        "read_request", ["fd", "version"],
        L.decl("reqbuf", L.call("malloc", request_length)),
        L.decl("chunk_sizes", L.call("malloc", bookkeeping_slots)),
        L.decl("total", 0),
        L.decl("chunks", 0),
        L.decl("complete", 0),
        L.decl("lookahead", 0),
        L.while_(L.land(L.eq(L.var("complete"), 0),
                        L.lt(L.var("total"), request_length)),
            L.decl("n", L.call("read", L.var("fd"),
                               L.add(L.var("reqbuf"), L.var("total")),
                               L.sub(request_length, L.var("total")))),
            L.if_(L.le(L.var("n"), 0), [L.break_()]),
            # Per-request chunk bookkeeping.  Version 1.4.13 writes without a
            # bounds check (the incomplete fix); the fixed version guards it.
            L.if_(L.eq(L.var("version"), VERSION_1_4_13), [
                L.store(L.var("chunk_sizes"), L.var("chunks"), L.var("n")),
            ]),
            L.if_(L.eq(L.var("version"), VERSION_FIXED), [
                L.if_(L.lt(L.var("chunks"), bookkeeping_slots), [
                    L.store(L.var("chunk_sizes"), L.var("chunks"), L.var("n")),
                ]),
            ]),
            L.assign("chunks", L.add(L.var("chunks"), 1)),
            L.assign("total", L.add(L.var("total"), L.var("n"))),
            L.assign("complete", L.call("scan_terminator", L.var("reqbuf"),
                                        L.var("total"))),
            # Version 1.4.12: if the data received so far ends in the middle
            # of what could be the terminator, peek ahead for the rest of it
            # -- past the bytes actually received, and past the end of the
            # request buffer when the boundary falls in the last bytes.
            L.if_(L.land(L.eq(L.var("version"), VERSION_1_4_12),
                         L.eq(L.var("complete"), 0)), [
                L.decl("last", L.index(L.var("reqbuf"), L.sub(L.var("total"), 1))),
                L.if_(L.lor(L.eq(L.var("last"), CR), L.eq(L.var("last"), LF)), [
                    L.assign("lookahead",
                             L.add(L.index(L.var("reqbuf"), L.var("total")),
                                   L.add(L.index(L.var("reqbuf"),
                                                 L.add(L.var("total"), 1)),
                                         L.index(L.var("reqbuf"),
                                                 L.add(L.var("total"), 2))))),
                ]),
            ]),
        ),
        L.if_(L.eq(L.var("complete"), 0), [L.ret(0)]),
        L.decl("status", L.call("parse_request_line", L.var("reqbuf"), L.var("total"))),
        L.if_(L.eq(L.var("status"), 0), [L.ret(1)]),
        L.ret(2),
    )

    # main: write the request to a socket pair (optionally with an explicit
    # fragmentation pattern or symbolic fragmentation) and run the server.
    body: List[object] = [
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("client", L.index(L.var("pair"), 0)),
        L.decl("server", L.index(L.var("pair"), 1)),
        L.decl("req", L.call("malloc", request_length)),
    ]
    for i, byte in enumerate(request):
        body.append(L.store(L.var("req"), i, byte))
    body.append(L.expr_stmt(L.call("write", L.var("client"), L.var("req"),
                                   L.const(request_length))))
    if fragment_pattern is not None:
        body.append(L.decl("pattern", L.call("malloc", len(fragment_pattern))))
        for i, size in enumerate(fragment_pattern):
            body.append(L.store(L.var("pattern"), i, size))
        body.append(L.expr_stmt(L.call("c9_set_frag_pattern", L.var("server"),
                                       L.var("pattern"),
                                       L.const(len(fragment_pattern)))))
    elif symbolic_fragmentation:
        # SIO_PKT_FRAGMENT = 0x9002 (see repro.posix.ioctl).
        body.append(L.expr_stmt(L.call("ioctl", L.var("server"), 0x9002, 1)))
    body.append(L.decl("result", L.call("read_request", L.var("server"),
                                        L.const(version))))
    body.append(L.assert_(L.ne(L.var("result"), 2), "request parse error"))
    body.append(L.ret(L.var("result")))
    main = L.func("main", [], *body)

    return L.program("lighttpd", scan_terminator, parse_request_line,
                     read_request, main)


# -- SymbolicTest factories -----------------------------------------------------------


def version_label(version: int) -> str:
    return {VERSION_1_4_12: "1.4.12", VERSION_1_4_13: "1.4.13",
            VERSION_FIXED: "fixed"}.get(version, str(version))


def make_fragmentation_test(version: int, pattern: Sequence[int],
                            request: bytes = DEFAULT_REQUEST) -> SymbolicTest:
    """One Table 6 cell: a concrete request delivered with a concrete pattern."""
    pattern_name = "x".join(str(p) for p in pattern)
    return SymbolicTest(
        name="lighttpd-%s-frag-%s" % (version_label(version), pattern_name),
        program=build_program(version, request=request, fragment_pattern=list(pattern)),
    )


def make_symbolic_fragmentation_test(version: int,
                                     request: bytes = DEFAULT_REQUEST,
                                     bookkeeping_slots: int = BOOKKEEPING_SLOTS,
                                     frag_choice_limit: int = 3) -> SymbolicTest:
    """The §7.3.4 regression test: let Cloud9 choose the fragmentation.

    ``frag_choice_limit`` bounds the per-read fan-out (each read forks over
    chunk sizes 1..limit-1 plus "all remaining"); the search still reaches
    both the terminator-split crash of 1.4.12 and, with a reduced
    ``bookkeeping_slots``, the many-chunks crash of 1.4.13.
    """
    return SymbolicTest(
        name="lighttpd-%s-symbolic-fragmentation" % version_label(version),
        program=build_program(version, request=request,
                              bookkeeping_slots=bookkeeping_slots,
                              symbolic_fragmentation=True),
        options={"frag_choice_limit": frag_choice_limit},
        engine_config=EngineConfig(max_instructions_per_path=50_000),
    )


def table6_patterns() -> List[List[int]]:
    return [list(PATTERN_WHOLE), list(PATTERN_SPLIT_TERMINATOR),
            list(PATTERN_MANY_SMALL)]


def table6_versions() -> List[int]:
    return [VERSION_1_4_12, VERSION_1_4_13]
