"""A model of rsync's delta-transfer algorithm (Table 4, "network utilities").

The paper lists rsync among the systems that run under the POSIX model.  The
interesting path structure in rsync is the block-matching delta algorithm:

1. the receiver computes a weak (rolling) checksum for every block of the
   *basis* file it already has;
2. the sender scans the *new* file byte by byte with a rolling checksum,
   emitting ``COPY(block)`` tokens where a block of the basis matches (weak
   checksum hit confirmed by a byte-wise strong check) and ``LITERAL(byte)``
   tokens elsewhere;
3. the receiver reconstructs the new file from the basis plus the delta.

The model implements all three phases over the modeled file system and
asserts the end-to-end invariant -- the reconstruction equals the new file --
on every explored path.  With parts of the new file symbolic, a run that
exhausts all paths is a small proof of the delta algorithm's correctness for
that file shape, the same "symbolic tests as proofs" angle the paper makes
for memcached (§7.3.3).
"""

from __future__ import annotations

from typing import Optional

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.engine.state import ExecutionState
from repro.posix.api import add_concrete_file
from repro.posix.data import posix_of
from repro.posix.buffers import BlockBuffer
from repro.posix.data import FileNode
from repro.testing.symbolic_test import SymbolicTest

BLOCK_SIZE = 4
DEFAULT_BASIS = b"abcdabce"
DEFAULT_FILE_SIZE = len(DEFAULT_BASIS)

# Delta op-codes in the encoded delta stream.
OP_COPY = 1
OP_LITERAL = 2


def build_program(file_size: int = DEFAULT_FILE_SIZE,
                  block_size: int = BLOCK_SIZE) -> L.Program:
    """The rsync model: delta-encode ``/new`` against ``/basis`` and verify."""
    num_blocks = file_size // block_size
    max_delta = 2 * file_size + 2    # worst case: every byte is a literal

    # weak_sum(buf, start, n) -> sum of n bytes starting at start, mod 256.
    weak_sum = L.func(
        "weak_sum", ["buf", "start", "n"],
        L.decl("sum", 0),
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("n")),
            L.assign("sum", L.mod(L.add(L.var("sum"),
                                        L.index(L.var("buf"),
                                                L.add(L.var("start"), L.var("i")))),
                                  256)),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("sum")),
    )

    # strong_match(a, a_start, b, b_start, n) -> 1 if the two ranges are equal.
    strong_match = L.func(
        "strong_match", ["a", "a_start", "b", "b_start", "n"],
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("n")),
            L.if_(L.ne(L.index(L.var("a"), L.add(L.var("a_start"), L.var("i"))),
                       L.index(L.var("b"), L.add(L.var("b_start"), L.var("i")))),
                  [L.ret(0)]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(1),
    )

    # build_signature(basis, sums): weak checksum of every basis block.
    build_signature = L.func(
        "build_signature", ["basis", "sums"],
        L.decl("b", 0),
        L.while_(L.lt(L.var("b"), num_blocks),
            L.store(L.var("sums"), L.var("b"),
                    L.call("weak_sum", L.var("basis"),
                           L.mul(L.var("b"), block_size), block_size)),
            L.assign("b", L.add(L.var("b"), 1)),
        ),
        L.ret(num_blocks),
    )

    # find_block(basis, sums, new, pos) -> matching block index, or 255.
    find_block = L.func(
        "find_block", ["basis", "sums", "new", "pos"],
        L.decl("w", L.call("weak_sum", L.var("new"), L.var("pos"), block_size)),
        L.decl("b", 0),
        L.while_(L.lt(L.var("b"), num_blocks),
            L.if_(L.eq(L.index(L.var("sums"), L.var("b")), L.var("w")), [
                L.if_(L.call("strong_match", L.var("basis"),
                             L.mul(L.var("b"), block_size),
                             L.var("new"), L.var("pos"), block_size),
                      [L.ret(L.var("b"))]),
            ]),
            L.assign("b", L.add(L.var("b"), 1)),
        ),
        L.ret(255),
    )

    # encode_delta(basis, sums, new, delta) -> number of delta bytes written.
    encode_delta = L.func(
        "encode_delta", ["basis", "sums", "new", "delta"],
        L.decl("pos", 0),
        L.decl("out", 0),
        L.while_(L.lt(L.var("pos"), file_size),
            L.decl("match", 255),
            L.if_(L.le(L.add(L.var("pos"), block_size), file_size), [
                L.assign("match", L.call("find_block", L.var("basis"),
                                         L.var("sums"), L.var("new"),
                                         L.var("pos"))),
            ]),
            L.if_(L.ne(L.var("match"), 255), [
                L.store(L.var("delta"), L.var("out"), OP_COPY),
                L.store(L.var("delta"), L.add(L.var("out"), 1), L.var("match")),
                L.assign("out", L.add(L.var("out"), 2)),
                L.assign("pos", L.add(L.var("pos"), block_size)),
            ], [
                L.store(L.var("delta"), L.var("out"), OP_LITERAL),
                L.store(L.var("delta"), L.add(L.var("out"), 1),
                        L.index(L.var("new"), L.var("pos"))),
                L.assign("out", L.add(L.var("out"), 2)),
                L.assign("pos", L.add(L.var("pos"), 1)),
            ]),
        ),
        L.ret(L.var("out")),
    )

    # apply_delta(basis, delta, delta_len, out) -> reconstructed length.
    apply_delta = L.func(
        "apply_delta", ["basis", "delta", "delta_len", "out"],
        L.decl("i", 0),
        L.decl("pos", 0),
        L.while_(L.lt(L.var("i"), L.var("delta_len")),
            L.decl("op", L.index(L.var("delta"), L.var("i"))),
            L.decl("arg", L.index(L.var("delta"), L.add(L.var("i"), 1))),
            L.if_(L.eq(L.var("op"), OP_COPY), [
                L.decl("j", 0),
                L.while_(L.lt(L.var("j"), block_size),
                    L.store(L.var("out"), L.add(L.var("pos"), L.var("j")),
                            L.index(L.var("basis"),
                                    L.add(L.mul(L.var("arg"), block_size),
                                          L.var("j")))),
                    L.assign("j", L.add(L.var("j"), 1)),
                ),
                L.assign("pos", L.add(L.var("pos"), block_size)),
            ], [
                L.store(L.var("out"), L.var("pos"), L.var("arg")),
                L.assign("pos", L.add(L.var("pos"), 1)),
            ]),
            L.assign("i", L.add(L.var("i"), 2)),
        ),
        L.ret(L.var("pos")),
    )

    # main: read both files, delta-encode, reconstruct, verify.
    main = L.func(
        "main", [],
        L.decl("basis", L.call("malloc", file_size)),
        L.decl("new", L.call("malloc", file_size)),
        L.decl("fd1", L.call("open", L.strconst("/basis"), 0)),
        L.decl("fd2", L.call("open", L.strconst("/new"), 0)),
        L.if_(L.lor(L.eq(L.var("fd1"), 0xFFFFFFFF),
                    L.eq(L.var("fd2"), 0xFFFFFFFF)), [L.ret(100)]),
        L.decl("n1", L.call("read", L.var("fd1"), L.var("basis"), file_size)),
        L.decl("n2", L.call("read", L.var("fd2"), L.var("new"), file_size)),
        L.if_(L.lor(L.ne(L.var("n1"), file_size), L.ne(L.var("n2"), file_size)),
              [L.ret(101)]),
        L.decl("sums", L.call("malloc", num_blocks)),
        L.expr_stmt(L.call("build_signature", L.var("basis"), L.var("sums"))),
        L.decl("delta", L.call("malloc", max_delta)),
        L.decl("delta_len", L.call("encode_delta", L.var("basis"), L.var("sums"),
                                   L.var("new"), L.var("delta"))),
        L.decl("out", L.call("malloc", file_size)),
        L.decl("rebuilt", L.call("apply_delta", L.var("basis"), L.var("delta"),
                                 L.var("delta_len"), L.var("out"))),
        L.assert_(L.eq(L.var("rebuilt"), file_size),
                  "reconstructed length differs from the new file"),
        L.decl("k", 0),
        L.while_(L.lt(L.var("k"), file_size),
            L.assert_(L.eq(L.index(L.var("out"), L.var("k")),
                           L.index(L.var("new"), L.var("k"))),
                      "reconstructed byte differs from the new file"),
            L.assign("k", L.add(L.var("k"), 1)),
        ),
        # Return the number of delta bytes: identical files give the most
        # compact delta (2 bytes per block).
        L.ret(L.var("delta_len")),
    )

    return L.program("rsync", weak_sum, strong_match, build_signature,
                     find_block, encode_delta, apply_delta, main)


def make_setup(basis: bytes = DEFAULT_BASIS,
               symbolic_bytes: int = 1):
    """Setup callback: ``/basis`` is concrete; ``/new`` is the basis with its
    first ``symbolic_bytes`` bytes replaced by fresh symbolic bytes."""

    def setup(state: ExecutionState) -> None:
        add_concrete_file(state, "/basis", basis)
        cells = list(basis)
        for i in range(min(symbolic_bytes, len(cells))):
            symbol = state.new_symbol("new_byte")
            state.symbolic_inputs.setdefault("new_byte", []).append(symbol)
            cells[i] = symbol
        node = FileNode(path=b"/new", data=BlockBuffer(), symbolic=symbolic_bytes > 0)
        node.data.set_contents(cells)
        posix_of(state).filesystem[b"/new"] = node

    return setup


def make_symbolic_test(basis: bytes = DEFAULT_BASIS,
                       symbolic_bytes: int = 1,
                       max_instructions: int = 400_000) -> SymbolicTest:
    """Delta-transfer a file whose first bytes are symbolic and verify it."""
    return SymbolicTest(
        name="rsync-delta-%d-symbolic" % symbolic_bytes,
        program=build_program(file_size=len(basis)),
        setup=make_setup(basis, symbolic_bytes),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )


def make_concrete_test(basis: bytes = DEFAULT_BASIS,
                       new: Optional[bytes] = None) -> SymbolicTest:
    """Delta-transfer one concrete file pair (single path)."""
    new = basis if new is None else new
    if len(new) != len(basis):
        raise ValueError("the model transfers equal-length files")

    def setup(state: ExecutionState) -> None:
        add_concrete_file(state, "/basis", basis)
        add_concrete_file(state, "/new", new)

    return SymbolicTest(
        name="rsync-delta-concrete",
        program=build_program(file_size=len(basis)),
        setup=setup,
    )
