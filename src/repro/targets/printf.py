"""A model of the ``printf`` UNIX utility's format-string parser.

The paper uses ``printf`` for the coverage-scaling experiment (Fig. 8) and
the useful-work experiment (Fig. 10) because "printf performs a lot of
parsing of its input (format specifiers), which produces complex constraints
when executed symbolically".  The model reproduces that structure: a
character-by-character scanner over a symbolic format string that recognizes
flags, field width, precision, length modifiers and conversion characters,
plus escape sequences, with distinct handling code per conversion class.
"""

from __future__ import annotations

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

DEFAULT_FORMAT_LENGTH = 5


def build_program() -> L.Program:
    """The printf model: ``main`` parses a symbolic format string."""

    # classify_conversion(c) -> 1 int-like, 2 unsigned-like, 3 char, 4 string,
    # 5 literal '%', 0 invalid.
    classify_conversion = L.func(
        "classify_conversion", ["c"],
        L.if_(L.lor(L.eq(L.var("c"), ord("d")), L.eq(L.var("c"), ord("i"))),
              [L.ret(1)]),
        L.if_(L.lor(L.eq(L.var("c"), ord("u")),
                    L.lor(L.eq(L.var("c"), ord("x")),
                          L.lor(L.eq(L.var("c"), ord("o")),
                                L.eq(L.var("c"), ord("X"))))),
              [L.ret(2)]),
        L.if_(L.eq(L.var("c"), ord("c")), [L.ret(3)]),
        L.if_(L.eq(L.var("c"), ord("s")), [L.ret(4)]),
        L.if_(L.eq(L.var("c"), ord("%")), [L.ret(5)]),
        L.ret(0),
    )

    is_digit = L.func(
        "is_digit", ["c"],
        L.if_(L.land(L.ge(L.var("c"), ord("0")), L.le(L.var("c"), ord("9"))),
              [L.ret(1)]),
        L.ret(0),
    )

    is_flag = L.func(
        "is_flag", ["c"],
        L.if_(L.eq(L.var("c"), ord("-")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord("+")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord(" ")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord("#")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord("0")), [L.ret(1)]),
        L.ret(0),
    )

    # emit_int(value, base, pad): digit-generation loop whose shape depends on
    # the parsed width, mimicking printf's number formatting code.
    emit_int = L.func(
        "emit_int", ["value", "base", "pad"],
        L.decl("digits", 0),
        L.decl("v", L.var("value")),
        L.while_(L.gt(L.var("v"), 0),
                 L.assign("v", L.div(L.var("v"), L.var("base"))),
                 L.assign("digits", L.add(L.var("digits"), 1))),
        L.if_(L.eq(L.var("digits"), 0), [L.assign("digits", 1)]),
        L.if_(L.gt(L.var("pad"), L.var("digits")),
              [L.ret(L.var("pad"))]),
        L.ret(L.var("digits")),
    )

    # parse_escape(c) -> output length contribution of a backslash escape.
    parse_escape = L.func(
        "parse_escape", ["c"],
        L.if_(L.eq(L.var("c"), ord("n")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord("t")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord("\\")), [L.ret(1)]),
        L.if_(L.eq(L.var("c"), ord("0")), [L.ret(0)]),
        # Unknown escape: printf prints it verbatim (2 characters).
        L.ret(2),
    )

    # parse_format(fmt, n) -> number of conversions, or a large error marker.
    parse_format = L.func(
        "parse_format", ["fmt", "n"],
        L.decl("i", 0),
        L.decl("conversions", 0),
        L.decl("output", 0),
        L.while_(L.lt(L.var("i"), L.var("n")),
            L.decl("c", L.index(L.var("fmt"), L.var("i"))),
            L.if_(L.eq(L.var("c"), 0), [L.break_()]),
            L.if_(L.eq(L.var("c"), ord("\\")), [
                L.assign("i", L.add(L.var("i"), 1)),
                L.if_(L.ge(L.var("i"), L.var("n")), [L.ret(9999)]),
                L.assign("output", L.add(L.var("output"),
                                         L.call("parse_escape",
                                                L.index(L.var("fmt"), L.var("i"))))),
                L.assign("i", L.add(L.var("i"), 1)),
                L.continue_(),
            ]),
            L.if_(L.ne(L.var("c"), ord("%")), [
                L.assign("output", L.add(L.var("output"), 1)),
                L.assign("i", L.add(L.var("i"), 1)),
                L.continue_(),
            ]),
            # '%' specifier: flags, width, precision, length, conversion.
            L.assign("i", L.add(L.var("i"), 1)),
            L.decl("width", 0),
            L.decl("precision", 0),
            L.decl("zero_pad", 0),
            L.while_(L.land(L.lt(L.var("i"), L.var("n")),
                            L.call("is_flag", L.index(L.var("fmt"), L.var("i")))),
                L.if_(L.eq(L.index(L.var("fmt"), L.var("i")), ord("0")),
                      [L.assign("zero_pad", 1)]),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.while_(L.land(L.lt(L.var("i"), L.var("n")),
                            L.call("is_digit", L.index(L.var("fmt"), L.var("i")))),
                L.assign("width", L.add(L.mul(L.var("width"), 10),
                                        L.sub(L.index(L.var("fmt"), L.var("i")), ord("0")))),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.if_(L.land(L.lt(L.var("i"), L.var("n")),
                         L.eq(L.index(L.var("fmt"), L.var("i")), ord("."))), [
                L.assign("i", L.add(L.var("i"), 1)),
                L.while_(L.land(L.lt(L.var("i"), L.var("n")),
                                L.call("is_digit", L.index(L.var("fmt"), L.var("i")))),
                    L.assign("precision", L.add(L.mul(L.var("precision"), 10),
                                                L.sub(L.index(L.var("fmt"), L.var("i")),
                                                      ord("0")))),
                    L.assign("i", L.add(L.var("i"), 1)),
                ),
            ]),
            L.if_(L.land(L.lt(L.var("i"), L.var("n")),
                         L.lor(L.eq(L.index(L.var("fmt"), L.var("i")), ord("l")),
                               L.eq(L.index(L.var("fmt"), L.var("i")), ord("h")))), [
                L.assign("i", L.add(L.var("i"), 1)),
            ]),
            L.if_(L.ge(L.var("i"), L.var("n")), [L.ret(9999)]),
            L.decl("kind", L.call("classify_conversion", L.index(L.var("fmt"), L.var("i")))),
            L.if_(L.eq(L.var("kind"), 0), [L.ret(9999)]),
            L.if_(L.eq(L.var("kind"), 1), [
                L.assign("output", L.add(L.var("output"),
                                         L.call("emit_int", 42, 10, L.var("width")))),
            ]),
            L.if_(L.eq(L.var("kind"), 2), [
                L.assign("output", L.add(L.var("output"),
                                         L.call("emit_int", 42, 16, L.var("width")))),
            ]),
            L.if_(L.eq(L.var("kind"), 3), [
                L.assign("output", L.add(L.var("output"), 1)),
            ]),
            L.if_(L.eq(L.var("kind"), 4), [
                L.decl("len", 5),
                L.if_(L.land(L.gt(L.var("precision"), 0),
                             L.lt(L.var("precision"), 5)),
                      [L.assign("len", L.var("precision"))]),
                L.assign("output", L.add(L.var("output"), L.var("len"))),
            ]),
            L.if_(L.eq(L.var("kind"), 5), [
                L.assign("output", L.add(L.var("output"), 1)),
            ]),
            L.if_(L.ne(L.var("kind"), 5), [
                L.assign("conversions", L.add(L.var("conversions"), 1)),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("conversions")),
    )

    main = L.func(
        "main", [],
        L.decl("fmt", L.call("cloud9_symbolic_buffer", L.const(DEFAULT_FORMAT_LENGTH),
                             L.strconst("format"))),
        L.decl("result", L.call("parse_format", L.var("fmt"),
                                L.const(DEFAULT_FORMAT_LENGTH))),
        L.ret(L.var("result")),
    )

    return L.program("printf", classify_conversion, is_digit, is_flag, emit_int,
                     parse_escape, parse_format, main)


def build_program_with_length(format_length: int) -> L.Program:
    """Same model with a caller-chosen symbolic format length."""
    program = build_program()
    main = L.func(
        "main", [],
        L.decl("fmt", L.call("cloud9_symbolic_buffer", L.const(format_length),
                             L.strconst("format"))),
        L.decl("result", L.call("parse_format", L.var("fmt"),
                                L.const(format_length))),
        L.ret(L.var("result")),
    )
    functions = [fn for name, fn in sorted(program.functions.items()) if name != "main"]
    return L.program("printf", *functions, main)


def make_symbolic_test(format_length: int = DEFAULT_FORMAT_LENGTH,
                       max_instructions: int = 200_000) -> SymbolicTest:
    """The Fig. 8 / Fig. 10 workload: a fully symbolic format string."""
    return SymbolicTest(
        name="printf-symbolic-format",
        program=build_program_with_length(format_length),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
        use_posix_model=False,
    )
