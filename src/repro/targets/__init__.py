"""Models of the real-world systems evaluated in the paper (§7, Table 4).

Each module builds one target as a program in :mod:`repro.lang` plus
ready-made :class:`~repro.testing.SymbolicTest` constructors for the
experiments that use it:

=====================  =======================================================
Module                 Paper target / experiment
=====================  =======================================================
``memcached``          memcached: symbolic packets (Fig. 7/9/12/13, Table 5),
                       fault injection, UDP hang (§7.3.3)
``lighttpd``           lighttpd request parsing and the incomplete
                       fragmentation bug fix (Table 6, §7.3.4)
``httpd``              Apache httpd header processing and the §5.2
                       X-NewExtension use case
``ghttpd``             ghttpd request logging and its path-length overflow
``printf``             the ``printf`` UNIX utility (Fig. 8, Fig. 10)
``testcmd``            the ``test`` UNIX utility (Fig. 10)
``curl``               curl URL globbing crash (§7.3.2)
``rsync``              rsync's delta-transfer algorithm over the modeled
                       file system
``pbzip``              pbzip2-style parallel block compression on worker
                       pthreads
``libevent``           libevent's event-dispatch core over the modeled
                       ``select``
``coreutils``          a Coreutils-like suite for the coverage-improvement
                       experiment (Fig. 11, §7.3.1)
``bandicoot``          Bandicoot DBMS out-of-bounds read (§7.3.5)
``prodcons``           the multi-threaded / multi-process producer-consumer
                       benchmark exercising the whole POSIX model (§7.1)
=====================  =======================================================

The models are not line-by-line ports of the original C code; they recreate
the *path structure* the paper's experiments depend on (which inputs crash,
hang, or cover new code), which is what the substitution policy in DESIGN.md
calls for.
"""

from repro.targets import (
    bandicoot,
    coreutils,
    curl,
    ghttpd,
    httpd,
    libevent,
    lighttpd,
    memcached,
    pbzip,
    printf,
    prodcons,
    rsync,
    testcmd,
)

__all__ = [
    "bandicoot",
    "coreutils",
    "curl",
    "ghttpd",
    "httpd",
    "libevent",
    "lighttpd",
    "memcached",
    "pbzip",
    "printf",
    "prodcons",
    "rsync",
    "testcmd",
]
