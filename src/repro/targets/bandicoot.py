"""A model of the Bandicoot DBMS GET handler (§7.3.5).

Bandicoot is a lightweight DBMS accessed over HTTP.  Exhaustively exploring
the paths that handle GET commands, Cloud9 found "a bug in which Bandicoot
reads from outside its allocated memory": the particular run did not crash
(the read landed in the allocator's metadata), but the read data was wrong
and the bug could crash depending on allocation layout.

The model parses a GET request of the form ``GET /<relation>?n=<count>``
against a fixed catalogue of relations.  The handler trusts the
client-supplied ``count`` when iterating over the relation's tuples, so a
count larger than the relation's cardinality walks past the end of the
relation's buffer -- an out-of-bounds read the engine reports as a memory
error.  Exhaustive exploration of the symbolic query string finds it.
"""

from __future__ import annotations

from typing import List

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

# Catalogue layout: two relations, each a byte array of tuples.
RELATION_A_TUPLES = 4
RELATION_B_TUPLES = 2
QUERY_LENGTH = 6     # "/x?n=Y" -- relation letter, count digit, padding


def build_program(query_length: int = QUERY_LENGTH) -> L.Program:
    # catalogue_init() -> pointer to two relations laid out back to back is
    # deliberately avoided: each relation is its own allocation so that an
    # overrun is an out-of-bounds access rather than a silent read of the
    # neighbouring relation.
    relation_init = L.func(
        "relation_init", ["tuples"],
        L.decl("rel", L.call("malloc", L.var("tuples"))),
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("tuples")),
            L.store(L.var("rel"), L.var("i"), L.add(L.var("i"), 1)),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("rel")),
    )

    # sum_tuples(rel, count): the handler's scan; no bounds check on count.
    sum_tuples = L.func(
        "sum_tuples", ["rel", "count"],
        L.decl("i", 0),
        L.decl("total", 0),
        L.while_(L.lt(L.var("i"), L.var("count")),
            L.assign("total", L.add(L.var("total"),
                                    L.index(L.var("rel"), L.var("i")))),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("total")),
    )

    # handle_get(query, n) -> response code.
    handle_get = L.func(
        "handle_get", ["query", "n"],
        L.if_(L.lt(L.var("n"), 5), [L.ret(400)]),
        L.if_(L.ne(L.index(L.var("query"), 0), ord("/")), [L.ret(400)]),
        L.decl("relname", L.index(L.var("query"), 1)),
        L.if_(L.ne(L.index(L.var("query"), 2), ord("?")), [L.ret(400)]),
        L.if_(L.ne(L.index(L.var("query"), 3), ord("n")), [L.ret(400)]),
        L.decl("digit", L.index(L.var("query"), 4)),
        L.if_(L.lor(L.lt(L.var("digit"), ord("0")), L.gt(L.var("digit"), ord("9"))),
              [L.ret(400)]),
        L.decl("count", L.sub(L.var("digit"), ord("0"))),
        L.if_(L.eq(L.var("relname"), ord("a")), [
            L.decl("rel_a", L.call("relation_init", RELATION_A_TUPLES)),
            # BUG: count comes straight from the request; counts above the
            # relation's cardinality read past the end of the allocation.
            L.decl("total_a", L.call("sum_tuples", L.var("rel_a"), L.var("count"))),
            L.ret(200),
        ]),
        L.if_(L.eq(L.var("relname"), ord("b")), [
            L.decl("rel_b", L.call("relation_init", RELATION_B_TUPLES)),
            L.decl("total_b", L.call("sum_tuples", L.var("rel_b"), L.var("count"))),
            L.ret(200),
        ]),
        L.ret(404),
    )

    main = L.func(
        "main", [],
        L.decl("query", L.call("cloud9_symbolic_buffer", L.const(query_length),
                               L.strconst("query"))),
        L.decl("code", L.call("handle_get", L.var("query"), L.const(query_length))),
        L.ret(L.var("code")),
    )

    return L.program("bandicoot", relation_init, sum_tuples, handle_get, main)


def make_get_exploration_test(query_length: int = QUERY_LENGTH,
                              max_instructions: int = 20_000) -> SymbolicTest:
    """The §7.3.5 workload: exhaustively explore GET handling."""
    return SymbolicTest(
        name="bandicoot-get",
        program=build_program(query_length),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
        use_posix_model=False,
    )
