"""A model of Apache httpd's request/header processing (Table 4, §5.2).

Apache httpd is the largest entry in the paper's target table; the paper's
use case (§5.2) tests "support for a new ``X-NewExtension`` HTTP header, just
added to a web server" by marking the header's value symbolic and letting the
engine fork at every branch that depends on it.

The model reproduces that scenario end to end:

* ``read_request`` pulls the request from a socket (so the fragmentation and
  fault-injection ioctls apply to it exactly as in the paper's use case);
* ``parse_request_line`` validates the method and protocol;
* ``parse_headers`` walks the header block line by line, recognising
  ``Host``, ``Content-Length``, ``Connection`` and ``X-NewExtension``;
* ``handle_extension`` is the newly added feature: it interprets the
  extension header's value (a mode character plus a decimal level) with
  distinct code per mode and a latent defect -- mode ``'t'`` with level 0
  divides by the level, which only a symbolic test is likely to reach.

Test factories cover the paper's three §5.2 drivers: a symbolic header value,
request fragmentation, and fault injection on the socket.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

CR = 0x0D
LF = 0x0A

HEADER_VALUE_LENGTH = 4          # symbolic bytes in the X-NewExtension value

REQUEST_PREFIX = b"GET /app HTTP/1.0\r\nHost: a\r\nX-NewExtension: "
REQUEST_SUFFIX = b"\r\n\r\n"


def build_program(symbolic_header: bool = True,
                  header_value: bytes = b"t1",
                  header_value_length: int = HEADER_VALUE_LENGTH,
                  fragment_pattern: Optional[Sequence[int]] = None,
                  fault_injection: bool = False,
                  buggy_extension: bool = True) -> L.Program:
    """Build the httpd model with one §5.2-style test driver."""
    value_length = header_value_length if symbolic_header else len(header_value)
    request_length = len(REQUEST_PREFIX) + value_length + len(REQUEST_SUFFIX)

    # find_eol(buf, start, total) -> index of the CR ending the line, or total.
    find_eol = L.func(
        "find_eol", ["buf", "start", "total"],
        L.decl("i", L.var("start")),
        L.while_(L.lt(L.var("i"), L.var("total")),
            L.if_(L.eq(L.index(L.var("buf"), L.var("i")), CR), [L.ret(L.var("i"))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("total")),
    )

    # parse_request_line(buf, total) -> end-of-line index, or 0 on error.
    parse_request_line = L.func(
        "parse_request_line", ["buf", "total"],
        L.if_(L.lt(L.var("total"), 5), [L.ret(0)]),
        L.decl("ok", 0),
        L.if_(L.land(L.eq(L.index(L.var("buf"), 0), ord("G")),
                     L.land(L.eq(L.index(L.var("buf"), 1), ord("E")),
                            L.eq(L.index(L.var("buf"), 2), ord("T")))),
              [L.assign("ok", 1)]),
        L.if_(L.land(L.eq(L.index(L.var("buf"), 0), ord("P")),
                     L.eq(L.index(L.var("buf"), 1), ord("O"))),
              [L.assign("ok", 1)]),
        L.if_(L.eq(L.var("ok"), 0), [L.ret(0)]),
        L.decl("eol", L.call("find_eol", L.var("buf"), 0, L.var("total"))),
        L.if_(L.ge(L.var("eol"), L.var("total")), [L.ret(0)]),
        L.ret(L.var("eol")),
    )

    # header_is(buf, start, eol, letter) -> 1 when the header name begins with
    # ``letter`` (the model distinguishes headers by their first character,
    # which is unambiguous for the set it recognises).
    header_is = L.func(
        "header_is", ["buf", "start", "letter"],
        L.ret(L.eq(L.index(L.var("buf"), L.var("start")), L.var("letter"))),
    )

    # header_value_start(buf, start, eol) -> index just past ": ", or eol.
    header_value_start = L.func(
        "header_value_start", ["buf", "start", "eol"],
        L.decl("i", L.var("start")),
        L.while_(L.lt(L.var("i"), L.var("eol")),
            L.if_(L.eq(L.index(L.var("buf"), L.var("i")), ord(":")), [
                L.ret(L.add(L.var("i"), 2)),
            ]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("eol")),
    )

    # handle_extension(buf, start, eol, buggy) -> a small status code.
    #
    # Value grammar: one mode character ('n' none, 'c' compress, 't' throttle)
    # optionally followed by a decimal level.  Mode 't' divides a window
    # constant by the level; the buggy version misses the level==0 check.
    handle_extension = L.func(
        "handle_extension", ["buf", "start", "eol", "buggy"],
        L.if_(L.ge(L.var("start"), L.var("eol")), [L.ret(0)]),
        L.decl("mode", L.index(L.var("buf"), L.var("start"))),
        L.decl("level", 0),
        L.decl("i", L.add(L.var("start"), 1)),
        L.while_(L.lt(L.var("i"), L.var("eol")),
            L.decl("c", L.index(L.var("buf"), L.var("i"))),
            L.if_(L.lor(L.lt(L.var("c"), ord("0")), L.gt(L.var("c"), ord("9"))),
                  [L.break_()]),
            L.assign("level", L.add(L.mul(L.var("level"), 10),
                                    L.sub(L.var("c"), ord("0")))),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.if_(L.eq(L.var("mode"), ord("n")), [L.ret(1)]),
        L.if_(L.eq(L.var("mode"), ord("c")), [
            L.if_(L.gt(L.var("level"), 9), [L.ret(2)]),
            L.ret(3),
        ]),
        L.if_(L.eq(L.var("mode"), ord("t")), [
            L.if_(L.eq(L.var("buggy"), 0), [
                L.if_(L.eq(L.var("level"), 0), [L.ret(4)]),
            ]),
            # Buggy version: divides without checking the level.
            L.decl("window", L.div(1000, L.var("level"))),
            L.if_(L.gt(L.var("window"), 500), [L.ret(5)]),
            L.ret(6),
        ]),
        L.ret(7),
    )

    # parse_headers(buf, start, total, buggy) -> status of the last
    # recognised header (0 when the block is well formed but empty).
    parse_headers = L.func(
        "parse_headers", ["buf", "start", "total", "buggy"],
        L.decl("pos", L.var("start")),
        L.decl("status", 0),
        L.decl("seen_host", 0),
        L.while_(L.lt(L.var("pos"), L.var("total")),
            # A CRLF at the cursor ends the header block.
            L.if_(L.land(L.eq(L.index(L.var("buf"), L.var("pos")), CR),
                         L.eq(L.index(L.var("buf"), L.add(L.var("pos"), 1)), LF)),
                  [L.break_()]),
            L.decl("eol", L.call("find_eol", L.var("buf"), L.var("pos"),
                                 L.var("total"))),
            L.if_(L.ge(L.var("eol"), L.var("total")), [L.ret(255)]),
            L.decl("vstart", L.call("header_value_start", L.var("buf"),
                                    L.var("pos"), L.var("eol"))),
            L.if_(L.call("header_is", L.var("buf"), L.var("pos"), ord("H")), [
                L.assign("seen_host", 1),
            ]),
            L.if_(L.call("header_is", L.var("buf"), L.var("pos"), ord("X")), [
                L.assign("status", L.call("handle_extension", L.var("buf"),
                                          L.var("vstart"), L.var("eol"),
                                          L.var("buggy"))),
            ]),
            L.assign("pos", L.add(L.var("eol"), 2)),
        ),
        L.if_(L.eq(L.var("seen_host"), 0), [L.ret(254)]),
        L.ret(L.var("status")),
    )

    # read_request(fd, buf, capacity) -> number of bytes received.
    read_request = L.func(
        "read_request", ["fd", "buf", "capacity"],
        L.decl("total", 0),
        L.while_(L.lt(L.var("total"), L.var("capacity")),
            L.decl("n", L.call("read", L.var("fd"),
                               L.add(L.var("buf"), L.var("total")),
                               L.sub(L.var("capacity"), L.var("total")))),
            L.if_(L.le(L.var("n"), 0), [L.break_()]),
            L.assign("total", L.add(L.var("total"), L.var("n"))),
        ),
        L.ret(L.var("total")),
    )

    # main: assemble the request, push it through a socket pair, parse it.
    body: List[object] = [
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("client", L.index(L.var("pair"), 0)),
        L.decl("server", L.index(L.var("pair"), 1)),
        L.decl("req", L.call("malloc", request_length)),
    ]
    offset = 0
    for byte in REQUEST_PREFIX:
        body.append(L.store(L.var("req"), offset, byte))
        offset += 1
    if symbolic_header:
        body += [
            L.decl("hval", L.call("cloud9_symbolic_buffer", value_length,
                                  L.strconst("extension"))),
            L.decl("h", 0),
            L.while_(L.lt(L.var("h"), value_length),
                L.store(L.var("req"), L.add(offset, L.var("h")),
                        L.index(L.var("hval"), L.var("h"))),
                L.assign("h", L.add(L.var("h"), 1)),
            ),
        ]
    else:
        for i, byte in enumerate(header_value):
            body.append(L.store(L.var("req"), offset + i, byte))
    offset += value_length
    for byte in REQUEST_SUFFIX:
        body.append(L.store(L.var("req"), offset, byte))
        offset += 1
    body.append(L.expr_stmt(L.call("write", L.var("client"), L.var("req"),
                                   request_length)))
    if fragment_pattern is not None:
        body.append(L.decl("pattern", L.call("malloc", len(fragment_pattern))))
        for i, size in enumerate(fragment_pattern):
            body.append(L.store(L.var("pattern"), i, size))
        body.append(L.expr_stmt(L.call("c9_set_frag_pattern", L.var("server"),
                                       L.var("pattern"),
                                       L.const(len(fragment_pattern)))))
    if fault_injection:
        # SIO_FAULT_INJ = 0x9003, RD | WR = 3 (see repro.posix.ioctl).
        body.append(L.expr_stmt(L.call("ioctl", L.var("server"), 0x9003, 3)))
    body += [
        L.decl("buf", L.call("malloc", request_length)),
        L.decl("total", L.call("read_request", L.var("server"), L.var("buf"),
                               request_length)),
        L.if_(L.eq(L.var("total"), 0), [L.ret(200)]),
        L.decl("eol", L.call("parse_request_line", L.var("buf"), L.var("total"))),
        L.if_(L.eq(L.var("eol"), 0), [L.ret(201)]),
        L.decl("status", L.call("parse_headers", L.var("buf"),
                                L.add(L.var("eol"), 2), L.var("total"),
                                L.const(1 if buggy_extension else 0))),
        L.ret(L.var("status")),
    ]
    main = L.func("main", [], *body)

    return L.program("httpd", find_eol, parse_request_line, header_is,
                     header_value_start, handle_extension, parse_headers,
                     read_request, main)


def make_concrete_test(header_value: bytes = b"c7") -> SymbolicTest:
    """One concrete request: the regression-suite baseline of §5.2."""
    return SymbolicTest(
        name="httpd-concrete",
        program=build_program(symbolic_header=False, header_value=header_value),
    )


def make_symbolic_header_test(value_length: int = HEADER_VALUE_LENGTH,
                              buggy: bool = True,
                              max_instructions: int = 200_000) -> SymbolicTest:
    """§5.2: mark the X-NewExtension header value symbolic."""
    return SymbolicTest(
        name="httpd-symbolic-extension%s" % ("-buggy" if buggy else "-fixed"),
        program=build_program(symbolic_header=True,
                              header_value_length=value_length,
                              buggy_extension=buggy),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )


def make_fragmentation_test(pattern: Sequence[int],
                            header_value: bytes = b"n") -> SymbolicTest:
    """§5.2: deliver the request under an explicit fragmentation pattern."""
    return SymbolicTest(
        name="httpd-frag-%s" % "x".join(str(p) for p in pattern),
        program=build_program(symbolic_header=False, header_value=header_value,
                              fragment_pattern=list(pattern)),
    )


def make_fault_injection_test(header_value: bytes = b"n") -> SymbolicTest:
    """§5.2: inject faults on the server's socket reads."""
    return SymbolicTest(
        name="httpd-fault-injection",
        program=build_program(symbolic_header=False, header_value=header_value,
                              fault_injection=True),
    )
