"""A model of memcached's command processing.

Covers the pieces of memcached the paper's evaluation exercises:

* the **binary protocol** (magic byte, opcode, key/value lengths, payload)
  backed by a small in-memory store -- used for the "two symbolic packets"
  exhaustive test of Fig. 7 / Fig. 9 / Fig. 12 / Fig. 13 and the coverage
  accounting of Table 5;
* a **concrete test suite** (the analogue of memcached's own C/Perl suite)
  that drives the server with well-formed commands -- the Table 5 baseline
  and the path along which faults are injected;
* the **UDP frame handling** with the infinite-loop hang of §7.3.3: a
  record-length field of zero makes the datagram scan stop advancing, which
  the per-path instruction limit turns into an ``infinite_loop`` bug report.

The model runs against the POSIX environment model: the test driver and the
server exchange packets through a modeled socket pair, so symbolic bytes
travel through stream buffers exactly as in the paper's setup.
"""

from __future__ import annotations

from typing import List, Sequence

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

# Binary protocol constants (simplified from the real protocol).
MAGIC_REQUEST = 0x80
OP_GET = 0x00
OP_SET = 0x01
OP_ADD = 0x02
OP_DELETE = 0x04
OP_INCR = 0x05
OP_QUIT = 0x07
OP_NOOP = 0x0A
OP_STAT = 0x10

HEADER_SIZE = 4           # magic, opcode, key length, value length
STORE_SLOTS = 4
SLOT_SIZE = 4             # used flag, key byte, value byte, hit counter
DEFAULT_PACKET_SIZE = 6


def _store_functions() -> List[L.Function]:
    """The tiny key/value store behind the protocol handlers."""

    store_init = L.func(
        "store_init", [],
        L.decl("store", L.call("malloc", STORE_SLOTS * SLOT_SIZE)),
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), STORE_SLOTS * SLOT_SIZE),
            L.store(L.var("store"), L.var("i"), 0),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("store")),
    )

    store_slot = L.func(
        "store_slot", ["key"],
        L.ret(L.mul(L.mod(L.var("key"), STORE_SLOTS), SLOT_SIZE)),
    )

    store_lookup = L.func(
        "store_lookup", ["store", "key"],
        L.decl("slot", L.call("store_slot", L.var("key"))),
        L.if_(L.eq(L.index(L.var("store"), L.var("slot")), 0), [L.ret(0xFFFF)]),
        L.if_(L.ne(L.index(L.var("store"), L.add(L.var("slot"), 1)), L.var("key")),
              [L.ret(0xFFFF)]),
        L.ret(L.var("slot")),
    )

    store_set = L.func(
        "store_set", ["store", "key", "value"],
        L.decl("slot", L.call("store_slot", L.var("key"))),
        L.store(L.var("store"), L.var("slot"), 1),
        L.store(L.var("store"), L.add(L.var("slot"), 1), L.var("key")),
        L.store(L.var("store"), L.add(L.var("slot"), 2), L.var("value")),
        L.ret(0),
    )

    store_delete = L.func(
        "store_delete", ["store", "key"],
        L.decl("slot", L.call("store_lookup", L.var("store"), L.var("key"))),
        L.if_(L.eq(L.var("slot"), 0xFFFF), [L.ret(1)]),
        L.store(L.var("store"), L.var("slot"), 0),
        L.ret(0),
    )

    store_incr = L.func(
        "store_incr", ["store", "key", "amount"],
        L.decl("slot", L.call("store_lookup", L.var("store"), L.var("key"))),
        L.if_(L.eq(L.var("slot"), 0xFFFF), [L.ret(1)]),
        L.decl("value", L.index(L.var("store"), L.add(L.var("slot"), 2))),
        L.store(L.var("store"), L.add(L.var("slot"), 2),
                L.band(L.add(L.var("value"), L.var("amount")), 0xFF)),
        L.ret(0),
    )

    return [store_init, store_slot, store_lookup, store_set, store_delete,
            store_incr]


def _protocol_functions(packet_size: int) -> List[L.Function]:
    """Binary-protocol parsing and dispatch."""

    # process_command(store, pkt, len) -> 0 ok, 1 protocol error, 2 quit.
    process_command = L.func(
        "process_command", ["store", "pkt", "len"],
        L.if_(L.lt(L.var("len"), HEADER_SIZE), [L.ret(1)]),
        L.decl("magic", L.index(L.var("pkt"), 0)),
        L.if_(L.ne(L.var("magic"), MAGIC_REQUEST), [L.ret(1)]),
        L.decl("opcode", L.index(L.var("pkt"), 1)),
        L.decl("klen", L.index(L.var("pkt"), 2)),
        L.decl("vlen", L.index(L.var("pkt"), 3)),
        # Length validation: header + key + value must fit in the packet.
        L.if_(L.gt(L.add(L.add(L.var("klen"), L.var("vlen")), HEADER_SIZE),
                   L.var("len")),
              [L.ret(1)]),
        L.decl("key", 0),
        L.if_(L.gt(L.var("klen"), 0),
              [L.assign("key", L.index(L.var("pkt"), HEADER_SIZE))]),
        L.decl("value", 0),
        L.if_(L.gt(L.var("vlen"), 0),
              [L.assign("value", L.index(L.var("pkt"),
                                         L.add(HEADER_SIZE, L.var("klen"))))]),
        L.if_(L.eq(L.var("opcode"), OP_NOOP), [L.ret(0)]),
        L.if_(L.eq(L.var("opcode"), OP_QUIT), [L.ret(2)]),
        L.if_(L.eq(L.var("opcode"), OP_STAT), [L.ret(0)]),
        L.if_(L.eq(L.var("opcode"), OP_GET), [
            L.if_(L.eq(L.var("klen"), 0), [L.ret(1)]),
            L.decl("slot", L.call("store_lookup", L.var("store"), L.var("key"))),
            L.if_(L.eq(L.var("slot"), 0xFFFF), [L.ret(0)]),
            L.ret(0),
        ]),
        L.if_(L.eq(L.var("opcode"), OP_SET), [
            L.if_(L.eq(L.var("klen"), 0), [L.ret(1)]),
            L.expr_stmt(L.call("store_set", L.var("store"), L.var("key"),
                               L.var("value"))),
            L.ret(0),
        ]),
        L.if_(L.eq(L.var("opcode"), OP_ADD), [
            L.if_(L.eq(L.var("klen"), 0), [L.ret(1)]),
            L.decl("slot", L.call("store_lookup", L.var("store"), L.var("key"))),
            L.if_(L.ne(L.var("slot"), 0xFFFF), [L.ret(1)]),
            L.expr_stmt(L.call("store_set", L.var("store"), L.var("key"),
                               L.var("value"))),
            L.ret(0),
        ]),
        L.if_(L.eq(L.var("opcode"), OP_DELETE), [
            L.if_(L.eq(L.var("klen"), 0), [L.ret(1)]),
            L.ret(L.call("store_delete", L.var("store"), L.var("key"))),
        ]),
        L.if_(L.eq(L.var("opcode"), OP_INCR), [
            L.if_(L.eq(L.var("klen"), 0), [L.ret(1)]),
            L.ret(L.call("store_incr", L.var("store"), L.var("key"),
                         L.var("value"))),
        ]),
        # Unknown opcode.
        L.ret(1),
    )

    # server_loop(fd, store, max_commands): read packets off a stream socket.
    server_loop = L.func(
        "server_loop", ["fd", "store", "max_commands"],
        L.decl("pkt", L.call("malloc", packet_size)),
        L.decl("handled", 0),
        L.while_(L.lt(L.var("handled"), L.var("max_commands")),
            L.decl("n", L.call("read", L.var("fd"), L.var("pkt"),
                               L.const(packet_size))),
            L.if_(L.le(L.var("n"), 0), [L.break_()]),
            L.decl("status", L.call("process_command", L.var("store"),
                                    L.var("pkt"), L.var("n"))),
            L.if_(L.eq(L.var("status"), 2), [L.break_()]),
            L.assign("handled", L.add(L.var("handled"), 1)),
        ),
        L.ret(L.var("handled")),
    )

    return [process_command, server_loop]


def _udp_functions() -> List[L.Function]:
    """UDP datagram handling with the record-scan hang of §7.3.3."""

    # process_udp_datagram(store, buf, len) -> records processed.
    # A datagram is a sequence of typed records; the record type determines
    # how far the scan advances.  Type 0 is a zero-size "padding" record the
    # parser forgets to skip, so a datagram containing a 0 byte at a record
    # boundary makes the loop stop advancing -- the infinite-loop hang the
    # paper found with symbolic UDP packets (§7.3.3).
    process_udp_datagram = L.func(
        "process_udp_datagram", ["store", "buf", "len"],
        L.decl("offset", 0),
        L.decl("records", 0),
        L.while_(L.lt(L.var("offset"), L.var("len")),
            L.decl("rtype", L.index(L.var("buf"), L.var("offset"))),
            L.decl("rsize", 0),
            L.if_(L.eq(L.var("rtype"), 1), [L.assign("rsize", 1)]),
            L.if_(L.eq(L.var("rtype"), 2), [L.assign("rsize", 2)]),
            L.if_(L.eq(L.var("rtype"), 3), [L.assign("rsize", 3)]),
            L.if_(L.gt(L.var("rtype"), 3), [L.ret(L.var("records"))]),
            # BUG (modeled after memcached's UDP hang): rtype == 0 leaves
            # rsize at 0, the offset never advances and the loop spins.
            L.if_(L.gt(L.add(L.var("offset"), L.var("rsize")), L.var("len")),
                  [L.ret(L.var("records"))]),
            L.if_(L.ge(L.var("rsize"), 2), [
                L.decl("key", L.index(L.var("buf"), L.add(L.var("offset"), 1))),
                L.expr_stmt(L.call("store_set", L.var("store"), L.var("key"), 1)),
            ]),
            L.assign("offset", L.add(L.var("offset"), L.var("rsize"))),
            L.assign("records", L.add(L.var("records"), 1)),
        ),
        L.ret(L.var("records")),
    )

    udp_server_loop = L.func(
        "udp_server_loop", ["fd", "store", "max_datagrams", "dgram_size"],
        L.decl("buf", L.call("malloc", 16)),
        L.decl("handled", 0),
        L.while_(L.lt(L.var("handled"), L.var("max_datagrams")),
            L.decl("n", L.call("recvfrom", L.var("fd"), L.var("buf"),
                               L.var("dgram_size"))),
            L.if_(L.le(L.var("n"), 0), [L.break_()]),
            L.expr_stmt(L.call("process_udp_datagram", L.var("store"),
                               L.var("buf"), L.var("n"))),
            L.assign("handled", L.add(L.var("handled"), 1)),
        ),
        L.ret(L.var("handled")),
    )

    return [process_udp_datagram, udp_server_loop]


def _driver_symbolic_packets(num_packets: int, packet_size: int) -> L.Function:
    """main(): send fully symbolic binary packets through a socket pair."""
    body: List[object] = [
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("client", L.index(L.var("pair"), 0)),
        L.decl("server", L.index(L.var("pair"), 1)),
        L.decl("store", L.call("store_init")),
    ]
    for index in range(num_packets):
        name = "packet%d" % index
        body.append(L.decl(name, L.call("cloud9_symbolic_buffer",
                                        L.const(packet_size),
                                        L.strconst(name))))
        body.append(L.expr_stmt(L.call("write", L.var("client"), L.var(name),
                                       L.const(packet_size))))
    body.append(L.decl("handled", L.call("server_loop", L.var("server"),
                                         L.var("store"),
                                         L.const(num_packets))))
    body.append(L.ret(L.var("handled")))
    return L.func("main", [], *body)


def _driver_concrete_suite(commands: Sequence[bytes], packet_size: int) -> L.Function:
    """main(): replay a suite of concrete binary commands."""
    body: List[object] = [
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("client", L.index(L.var("pair"), 0)),
        L.decl("server", L.index(L.var("pair"), 1)),
        L.decl("store", L.call("store_init")),
        L.decl("pkt", L.call("malloc", packet_size)),
    ]
    for command in commands:
        padded = command.ljust(packet_size, b"\x00")[:packet_size]
        for i, byte in enumerate(padded):
            body.append(L.store(L.var("pkt"), i, byte))
        body.append(L.expr_stmt(L.call("write", L.var("client"), L.var("pkt"),
                                       L.const(packet_size))))
    body.append(L.decl("handled", L.call("server_loop", L.var("server"),
                                         L.var("store"),
                                         L.const(len(commands)))))
    body.append(L.ret(L.var("handled")))
    return L.func("main", [], *body)


def _driver_udp(num_datagrams: int, datagram_size: int) -> L.Function:
    """main(): feed symbolic UDP datagrams to the UDP handler."""
    body: List[object] = [
        L.decl("sock", L.call("socket", 1, 2)),          # SOCK_DGRAM
        L.expr_stmt(L.call("bind", L.var("sock"), 11211)),
        L.decl("client", L.call("socket", 1, 2)),
        L.decl("store", L.call("store_init")),
    ]
    for index in range(num_datagrams):
        name = "datagram%d" % index
        body.append(L.decl(name, L.call("cloud9_symbolic_buffer",
                                        L.const(datagram_size),
                                        L.strconst(name))))
        body.append(L.expr_stmt(L.call("sendto", L.var("client"), L.var(name),
                                       L.const(datagram_size), 11211)))
    body.append(L.decl("handled", L.call("udp_server_loop", L.var("sock"),
                                         L.var("store"),
                                         L.const(num_datagrams),
                                         L.const(datagram_size))))
    body.append(L.ret(L.var("handled")))
    return L.func("main", [], *body)


def build_program(main: L.Function, packet_size: int = DEFAULT_PACKET_SIZE) -> L.Program:
    functions = (_store_functions() + _protocol_functions(packet_size)
                 + _udp_functions() + [main])
    return L.program("memcached", *functions)


# -- concrete test suite (the Table 5 baseline) ----------------------------------------


def concrete_suite_commands() -> List[bytes]:
    """A small "existing test suite": well-formed commands plus a few errors."""
    return [
        bytes([MAGIC_REQUEST, OP_SET, 1, 1, ord("a"), 7]),
        bytes([MAGIC_REQUEST, OP_GET, 1, 0, ord("a")]),
        bytes([MAGIC_REQUEST, OP_ADD, 1, 1, ord("b"), 9]),
        bytes([MAGIC_REQUEST, OP_ADD, 1, 1, ord("a"), 1]),     # add on existing key
        bytes([MAGIC_REQUEST, OP_INCR, 1, 1, ord("a"), 3]),
        bytes([MAGIC_REQUEST, OP_DELETE, 1, 0, ord("b")]),
        bytes([MAGIC_REQUEST, OP_DELETE, 1, 0, ord("z")]),     # delete missing key
        bytes([MAGIC_REQUEST, OP_STAT, 0, 0]),
        bytes([MAGIC_REQUEST, OP_NOOP, 0, 0]),
        bytes([0x13, OP_GET, 1, 0, ord("a")]),                  # bad magic
        bytes([MAGIC_REQUEST, 0x77, 0, 0]),                     # unknown opcode
        bytes([MAGIC_REQUEST, OP_GET, 9, 0, ord("a")]),         # bogus key length
        bytes([MAGIC_REQUEST, OP_QUIT, 0, 0]),
    ]


def binary_protocol_suite_commands() -> List[bytes]:
    """The smaller "binary protocol test suite" row of Table 5."""
    return [
        bytes([MAGIC_REQUEST, OP_SET, 1, 1, ord("k"), 5]),
        bytes([MAGIC_REQUEST, OP_GET, 1, 0, ord("k")]),
        bytes([MAGIC_REQUEST, OP_DELETE, 1, 0, ord("k")]),
        bytes([MAGIC_REQUEST, OP_NOOP, 0, 0]),
        bytes([MAGIC_REQUEST, OP_QUIT, 0, 0]),
    ]


# -- SymbolicTest factories ---------------------------------------------------------------


def make_symbolic_packets_test(num_packets: int = 2,
                               packet_size: int = DEFAULT_PACKET_SIZE,
                               max_instructions: int = 200_000) -> SymbolicTest:
    """The Fig. 7 workload: exhaustive exploration of N symbolic packets."""
    main = _driver_symbolic_packets(num_packets, packet_size)
    return SymbolicTest(
        name="memcached-symbolic-packets-%dx%d" % (num_packets, packet_size),
        program=build_program(main, packet_size),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )


def make_concrete_suite_test(packet_size: int = DEFAULT_PACKET_SIZE) -> SymbolicTest:
    """The baseline "entire test suite" row of Table 5 (concrete inputs)."""
    main = _driver_concrete_suite(concrete_suite_commands(), packet_size)
    return SymbolicTest(
        name="memcached-concrete-suite",
        program=build_program(main, packet_size),
    )


def make_binary_suite_test(packet_size: int = DEFAULT_PACKET_SIZE) -> SymbolicTest:
    """The "binary protocol test suite" row of Table 5."""
    main = _driver_concrete_suite(binary_protocol_suite_commands(), packet_size)
    return SymbolicTest(
        name="memcached-binary-suite",
        program=build_program(main, packet_size),
    )


def make_fault_injection_test(packet_size: int = DEFAULT_PACKET_SIZE,
                              max_instructions: int = 100_000) -> SymbolicTest:
    """The "test suite + fault injection" row of Table 5.

    The concrete suite is replayed with fault injection enabled on every
    POSIX call, and exploration is ordered by the fewest-faults-first
    strategy, reproducing the uniform fault coverage described in §7.3.3.
    """
    main = _driver_concrete_suite(concrete_suite_commands(), packet_size)
    return SymbolicTest(
        name="memcached-fault-injection",
        program=build_program(main, packet_size),
        options={"fault_injection_all": True},
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
        strategy="fewest_faults_first",
    )


def make_udp_hang_test(num_datagrams: int = 1, datagram_size: int = 3,
                       max_instructions: int = 2_000) -> SymbolicTest:
    """The §7.3.3 workload: symbolic UDP datagrams with an instruction limit.

    Paths that trigger the record-scan hang exceed the limit and are reported
    as ``infinite_loop`` bugs; healthy paths finish well under it.
    """
    main = _driver_udp(num_datagrams, datagram_size)
    return SymbolicTest(
        name="memcached-udp-symbolic",
        program=build_program(main),
        options={"max_instructions": max_instructions},
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )
