"""A model of the ghttpd web server (Table 4, 0.6 KLOC).

ghttpd is the smallest server in the paper's target table.  Its historically
famous defect (present in 1.4.x) is a fixed-size buffer in the logging path:
the requested URL is copied into a stack buffer without a bounds check, so a
sufficiently long request path overflows it.  The model reproduces that path
structure:

* ``serve_request`` reads an HTTP request from a socket, parses the method
  and the path;
* the path is copied into a fixed ``LOG_BUFFER_SIZE``-byte buffer by
  ``log_request`` -- without a length check in the vulnerable version, with a
  check in the fixed version;
* requests whose path is longer than the buffer therefore produce an
  out-of-bounds write (a memory-error bug report) on the vulnerable version
  only.

The symbolic test marks the request path symbolic in content and drives the
request through the POSIX socket model, so finding the overflow requires the
same combination of environment handling and path exploration as the paper's
case studies.
"""

from __future__ import annotations

from typing import List, Optional

from repro import lang as L
from repro.engine.config import EngineConfig
from repro.testing.symbolic_test import SymbolicTest

VERSION_VULNERABLE = 14
VERSION_FIXED = 15

LOG_BUFFER_SIZE = 8
DEFAULT_PATH_LENGTH = 12      # longer than LOG_BUFFER_SIZE: the overflow is reachable


def build_program(version: int = VERSION_VULNERABLE,
                  path_length: int = DEFAULT_PATH_LENGTH,
                  symbolic_path: bool = False,
                  concrete_path: bytes = b"/") -> L.Program:
    """Build the ghttpd model for one server version and one request shape."""

    # parse_method(buf, total) -> 1 GET, 2 HEAD, 3 POST, 0 unknown.
    parse_method = L.func(
        "parse_method", ["buf", "total"],
        L.if_(L.lt(L.var("total"), 4), [L.ret(0)]),
        L.if_(L.land(L.eq(L.index(L.var("buf"), 0), ord("G")),
                     L.land(L.eq(L.index(L.var("buf"), 1), ord("E")),
                            L.eq(L.index(L.var("buf"), 2), ord("T")))),
              [L.ret(1)]),
        L.if_(L.land(L.eq(L.index(L.var("buf"), 0), ord("H")),
                     L.eq(L.index(L.var("buf"), 1), ord("E"))),
              [L.ret(2)]),
        L.if_(L.land(L.eq(L.index(L.var("buf"), 0), ord("P")),
                     L.eq(L.index(L.var("buf"), 1), ord("O"))),
              [L.ret(3)]),
        L.ret(0),
    )

    # find_path(buf, total) -> offset of the path (first byte after "GET ").
    find_path = L.func(
        "find_path", ["buf", "total"],
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("total")),
            L.if_(L.eq(L.index(L.var("buf"), L.var("i")), ord(" ")),
                  [L.ret(L.add(L.var("i"), 1))]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("total")),
    )

    # path_length(buf, start, total) -> number of bytes until space/CR/end.
    path_length_fn = L.func(
        "path_length", ["buf", "start", "total"],
        L.decl("i", L.var("start")),
        L.while_(L.lt(L.var("i"), L.var("total")),
            L.decl("c", L.index(L.var("buf"), L.var("i"))),
            L.if_(L.lor(L.eq(L.var("c"), ord(" ")),
                        L.lor(L.eq(L.var("c"), 0x0D), L.eq(L.var("c"), 0))),
                  [L.break_()]),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.sub(L.var("i"), L.var("start"))),
    )

    # log_request(buf, start, n, version): the vulnerable copy.
    log_request = L.func(
        "log_request", ["buf", "start", "n", "version"],
        L.decl("log", L.call("malloc", LOG_BUFFER_SIZE)),
        L.decl("limit", L.var("n")),
        L.if_(L.eq(L.var("version"), VERSION_FIXED), [
            # The fixed version truncates the copy to the buffer size.
            L.if_(L.gt(L.var("limit"), LOG_BUFFER_SIZE),
                  [L.assign("limit", LOG_BUFFER_SIZE)]),
        ]),
        L.decl("i", 0),
        L.while_(L.lt(L.var("i"), L.var("limit")),
            L.store(L.var("log"), L.var("i"),
                    L.index(L.var("buf"), L.add(L.var("start"), L.var("i")))),
            L.assign("i", L.add(L.var("i"), 1)),
        ),
        L.ret(L.var("i")),
    )

    # serve_request(fd, version) -> 0 bad request, 1 served, 2 not found.
    request_capacity = path_length + 16
    serve_request = L.func(
        "serve_request", ["fd", "version"],
        L.decl("req", L.call("malloc", request_capacity)),
        L.decl("total", L.call("read", L.var("fd"), L.var("req"),
                               request_capacity)),
        L.if_(L.le(L.var("total"), 0), [L.ret(0)]),
        L.decl("method", L.call("parse_method", L.var("req"), L.var("total"))),
        L.if_(L.eq(L.var("method"), 0), [L.ret(0)]),
        L.decl("start", L.call("find_path", L.var("req"), L.var("total"))),
        L.if_(L.ge(L.var("start"), L.var("total")), [L.ret(0)]),
        L.decl("plen", L.call("path_length", L.var("req"), L.var("start"),
                              L.var("total"))),
        L.if_(L.eq(L.var("plen"), 0), [L.ret(0)]),
        # The request path must start with '/'.
        L.if_(L.ne(L.index(L.var("req"), L.var("start")), ord("/")), [L.ret(0)]),
        L.expr_stmt(L.call("log_request", L.var("req"), L.var("start"),
                           L.var("plen"), L.var("version"))),
        # Serve "/" and "/index.html"; everything else is a 404.
        L.if_(L.eq(L.var("plen"), 1), [L.ret(1)]),
        L.if_(L.eq(L.var("plen"), 11), [L.ret(1)]),
        L.ret(2),
    )

    # main: build the request (concrete prefix "GET " + path), push it through
    # a socket pair and serve it.
    body: List[object] = [
        L.decl("pair", L.call("malloc", 2)),
        L.expr_stmt(L.call("socketpair", L.var("pair"))),
        L.decl("client", L.index(L.var("pair"), 0)),
        L.decl("server", L.index(L.var("pair"), 1)),
    ]
    if symbolic_path:
        request_length = 4 + path_length
        body += [
            L.decl("req", L.call("malloc", request_length)),
            L.store(L.var("req"), 0, ord("G")),
            L.store(L.var("req"), 1, ord("E")),
            L.store(L.var("req"), 2, ord("T")),
            L.store(L.var("req"), 3, ord(" ")),
            L.decl("path", L.call("cloud9_symbolic_buffer", path_length,
                                  L.strconst("path"))),
            L.decl("i", 0),
            L.while_(L.lt(L.var("i"), path_length),
                L.store(L.var("req"), L.add(4, L.var("i")),
                        L.index(L.var("path"), L.var("i"))),
                L.assign("i", L.add(L.var("i"), 1)),
            ),
            L.expr_stmt(L.call("write", L.var("client"), L.var("req"),
                               request_length)),
        ]
    else:
        request = b"GET " + concrete_path + b" HTTP/1.0\r\n"
        body.append(L.decl("req", L.call("malloc", len(request))))
        for i, byte in enumerate(request):
            body.append(L.store(L.var("req"), i, byte))
        body.append(L.expr_stmt(L.call("write", L.var("client"), L.var("req"),
                                       len(request))))
    body += [
        L.decl("result", L.call("serve_request", L.var("server"),
                                L.const(version))),
        L.ret(L.var("result")),
    ]
    main = L.func("main", [], *body)

    return L.program("ghttpd", parse_method, find_path, path_length_fn,
                     log_request, serve_request, main)


def version_label(version: int) -> str:
    return {VERSION_VULNERABLE: "1.4", VERSION_FIXED: "fixed"}.get(
        version, str(version))


def make_concrete_test(version: int = VERSION_VULNERABLE,
                       path: bytes = b"/") -> SymbolicTest:
    """A single concrete request (the regression-suite baseline).

    The default path fits in the log buffer, so it passes on both versions;
    longer concrete paths overflow the vulnerable version just as the
    symbolic test discovers.
    """
    return SymbolicTest(
        name="ghttpd-%s-concrete" % version_label(version),
        program=build_program(version, symbolic_path=False, concrete_path=path),
    )


def make_symbolic_test(version: int = VERSION_VULNERABLE,
                       path_length: int = DEFAULT_PATH_LENGTH,
                       max_instructions: int = 100_000) -> SymbolicTest:
    """The overflow hunt: a fully symbolic request path of ``path_length`` bytes."""
    return SymbolicTest(
        name="ghttpd-%s-symbolic-path" % version_label(version),
        program=build_program(version, path_length=path_length,
                              symbolic_path=True),
        engine_config=EngineConfig(max_instructions_per_path=max_instructions),
    )
